# Container image for the sweep server (`python -m repro.serve`).
#
# Build:  docker build -t repro-serve .
# Run:    docker run --rm -p 8732:8732 -v repro-cache:/cache repro-serve
#
# The server binds 0.0.0.0 inside the container — publish the port to
# choose the outside exposure — and keeps its result cache under
# /cache so a named volume survives image upgrades.  Extra flags (API
# keys, sweep workers, cache cap) go after the image name:
#
#   docker run --rm -p 8732:8732 repro-serve --workers 4 --api-key s3cret
FROM python:3.12-slim

RUN pip install --no-cache-dir numpy

WORKDIR /app
COPY src/ /app/src/

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1 \
    REPRO_CACHE_DIR=/cache

EXPOSE 8732

# /v1/health is the unauthenticated liveness route
HEALTHCHECK --interval=30s --timeout=3s --start-period=5s CMD \
    python -c "import urllib.request as u; \
u.urlopen('http://127.0.0.1:8732/v1/health', timeout=2)"

ENTRYPOINT ["python", "-m", "repro.serve", "--host", "0.0.0.0", \
            "--port", "8732"]
