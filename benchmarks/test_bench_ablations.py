"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper's tables, but quantifying its design decisions:

1. **PMIN masking** — with a minimum PMOS ON time at or above the
   synchronous latency scale, every controller's current overshoot is
   floored by PMIN x slew and the latency benefit disappears (this drove
   our PMIN calibration, see EXPERIMENTS.md).
2. **PEXT** — the extended first charging cycle of a UV episode deepens
   the initial current ramp and shortens the high-load dip.
3. **A2A metastability containment** — with noisy comparators the A2A
   elements absorb marginal pulses (counted, contained) and the gate
   drives stay clean; the system never short-circuits.
4. **Token dwell** — the async ring's dwell mirrors the sync design's
   phase clock; shorter dwell spreads charging across phases faster.

All four studies run through the batched scenario engine
(:func:`repro.scenarios.run_sweep`): each ablation is a
:class:`~repro.scenarios.Sweep` grid executed by the vectorized backend
(noisy comparator study included — per-lane seeded NumPy jitter).
"""

import pytest

from repro import Session, session_from_env
from repro.experiments.report import format_table
from repro.scenarios import Sweep
from repro.sim import NS, US

pytestmark = pytest.mark.bench

#: one env-configured session (REPRO_SWEEP_WORKERS / REPRO_CACHE) shared
#: by the ablation sweeps; the keep=True PEXT study uses its own inline
#: session — live handles cannot cross the pool
SESSION = session_from_env()

#: sync-vs-async controller axis used by the ablation grids
ASYNC_100MHZ = [
    ("ASYNC", {"controller": "async"}),
    ("100MHz", {"controller": "sync", "fsm_frequency": 100e6}),
]


def _base(l_uh=1.0, sim_time=8 * US, **extra):
    base = {"n_phases": 4, "l_uh": l_uh, "r_load": 6.0,
            "sim_time": sim_time, "seed": 0}
    base.update(extra)
    return base


@pytest.mark.benchmark(group="ablation")
def test_ablation_pmin_masks_latency_benefit(benchmark):
    def study():
        sweep = (Sweep(base=_base(nmin=3 * NS), name="pmin")
                 .grid(pmin=[2 * NS, 20 * NS], ctrl=ASYNC_100MHZ))
        points = SESSION.sweep(sweep, track_energy=False)
        rows = {}
        for i, pmin_ns in enumerate((2, 20)):
            rows[pmin_ns] = {
                "ASYNC": points[2 * i].result.peak_coil_current * 1e3,
                "100MHz": points[2 * i + 1].result.peak_coil_current * 1e3,
            }
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    table = [[f"PMIN={k}ns", f"{v['ASYNC']:.0f}", f"{v['100MHz']:.0f}",
              f"{v['100MHz'] - v['ASYNC']:.0f}"] for k, v in rows.items()]
    print()
    print(format_table("Ablation 1: PMIN vs the latency advantage (peak mA, 1uH)",
                       ["", "ASYNC", "100MHz", "spread"], table))
    spread_small_pmin = rows[2]["100MHz"] - rows[2]["ASYNC"]
    spread_big_pmin = rows[20]["100MHz"] - rows[20]["ASYNC"]
    assert spread_small_pmin > 1.5 * spread_big_pmin, \
        "large PMIN must compress the controller spread"


@pytest.mark.benchmark(group="ablation")
def test_ablation_pext_first_cycle(benchmark):
    def study():
        sweep = (Sweep(base=_base(l_uh=4.7, sim_time=4 * US,
                                  controller="async"), name="pext")
                 .grid(pext=[0 * NS, 40 * NS]))
        points = Session().sweep(sweep, settle=0.0, trace=True, keep=True,
                                 track_energy=False)
        out = {}
        for pext_ns, point in zip((0, 40), points):
            hl_edges = point.handle.sensors.hl.output.edges("fall")
            out[pext_ns] = {
                "hl_clear_us": (hl_edges[0] * 1e6 if hl_edges else float("inf")),
                "peak_ma": point.result.peak_coil_current * 1e3,
            }
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation 2: PEXT at startup (async, 4.7uH)",
        ["PEXT", "HL cleared (us)", "peak (mA)"],
        [[f"{k}ns", f"{v['hl_clear_us']:.3f}", f"{v['peak_ma']:.0f}"]
         for k, v in out.items()]))
    # the extended first cycle must not delay clearing the high-load dip
    assert out[40]["hl_clear_us"] <= out[0]["hl_clear_us"] + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_a2a_contains_noise(benchmark):
    def study():
        sweep = (Sweep(base=_base(l_uh=4.7, sensor_noise=0.004, seed=5),
                       name="noise")
                 .grid(ctrl=[("async", {"controller": "async"}),
                             ("sync", {"controller": "sync",
                                       "fsm_frequency": 333e6})]))
        # raises ShortCircuitError on violation
        points = SESSION.sweep(sweep)
        return {
            point.config.controller: {
                "metastable": point.result.metastable_events,
                "v_final": point.result.v_final,
            }
            for point in points
        }

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation 3: noisy comparators (sigma=4mV/4mA)",
        ["controller", "contained metastability events", "V_final"],
        [[c, str(v["metastable"]), f"{v['v_final']:.3f}"]
         for c, v in out.items()]))
    # both survive; regulation continues despite sensor chatter
    for c, v in out.items():
        assert abs(v["v_final"] - 3.3) < 0.6, c


@pytest.mark.benchmark(group="ablation")
def test_ablation_token_dwell(benchmark):
    def study():
        sweep = (Sweep(base=_base(l_uh=4.7, controller="async"), name="dwell")
                 .grid(phase_dwell=[75 * NS, 150 * NS, 300 * NS]))
        points = SESSION.sweep(sweep, track_energy=False)
        out = {}
        for dwell_ns, point in zip((75, 150, 300), points):
            result = point.result
            spread = max(result.cycles) - min(result.cycles)
            out[dwell_ns] = {"ripple_mv": result.ripple * 1e3,
                             "cycle_spread": spread,
                             "cycles": sum(result.cycles)}
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation 4: token dwell (async, 4.7uH)",
        ["dwell", "ripple (mV)", "phase cycle spread", "total cycles"],
        [[f"{k}ns", f"{v['ripple_mv']:.0f}", str(v["cycle_spread"]),
          str(v["cycles"])] for k, v in out.items()]))
    # the ring must distribute work at every dwell setting
    for k, v in out.items():
        assert v["cycles"] > 20
