"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper's tables, but quantifying its design decisions:

1. **PMIN masking** — with a minimum PMOS ON time at or above the
   synchronous latency scale, every controller's current overshoot is
   floored by PMIN x slew and the latency benefit disappears (this drove
   our PMIN calibration, see EXPERIMENTS.md).
2. **PEXT** — the extended first charging cycle of a UV episode deepens
   the initial current ramp and shortens the high-load dip.
3. **A2A metastability containment** — with noisy comparators the A2A
   elements absorb marginal pulses (counted, contained) and the gate
   drives stay clean; the system never short-circuits.
4. **Token dwell** — the async ring's dwell mirrors the sync design's
   phase clock; shorter dwell spreads charging across phases faster.
"""

import pytest

from repro.analog import LoadProfile, make_coil
from repro.control import BuckControlParams
from repro.experiments.report import format_table
from repro.sim import NS, UH, US
from repro.system import BuckSystem, SystemConfig


def _run(controller, freq, params, l_uh=1.0, noise=0.0, seed=0,
         sim_time=8 * US, load=None):
    cfg = SystemConfig(
        controller=controller, fsm_frequency=freq, n_phases=4,
        coil=make_coil(l_uh * UH),
        load=load or LoadProfile.constant(6.0),
        sim_time=sim_time, seed=seed, trace=False, params=params,
        sensor_noise=noise)
    return BuckSystem(cfg), None


def _peak(controller, freq, params, **kw):
    system, _ = _run(controller, freq, params, **kw)
    return system.run().peak_coil_current * 1e3


@pytest.mark.benchmark(group="ablation")
def test_ablation_pmin_masks_latency_benefit(benchmark):
    def study():
        rows = {}
        for pmin_ns in (2, 20):
            params = BuckControlParams(pmin=pmin_ns * NS, nmin=3 * NS)
            rows[pmin_ns] = {
                "ASYNC": _peak("async", 333e6, params),
                "100MHz": _peak("sync", 100e6, params),
            }
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    table = [[f"PMIN={k}ns", f"{v['ASYNC']:.0f}", f"{v['100MHz']:.0f}",
              f"{v['100MHz'] - v['ASYNC']:.0f}"] for k, v in rows.items()]
    print()
    print(format_table("Ablation 1: PMIN vs the latency advantage (peak mA, 1uH)",
                       ["", "ASYNC", "100MHz", "spread"], table))
    spread_small_pmin = rows[2]["100MHz"] - rows[2]["ASYNC"]
    spread_big_pmin = rows[20]["100MHz"] - rows[20]["ASYNC"]
    assert spread_small_pmin > 1.5 * spread_big_pmin, \
        "large PMIN must compress the controller spread"


@pytest.mark.benchmark(group="ablation")
def test_ablation_pext_first_cycle(benchmark):
    def study():
        out = {}
        for pext_ns in (0, 40):
            params = BuckControlParams(pext=pext_ns * NS)
            system, _ = _run("async", None, params, l_uh=4.7,
                             sim_time=4 * US)
            result = system.run(settle=0.0)
            hl_edges = system.sensors.hl.output.edges("fall")
            out[pext_ns] = {
                "hl_clear_us": (hl_edges[0] * 1e6 if hl_edges else float("inf")),
                "peak_ma": result.peak_coil_current * 1e3,
            }
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation 2: PEXT at startup (async, 4.7uH)",
        ["PEXT", "HL cleared (us)", "peak (mA)"],
        [[f"{k}ns", f"{v['hl_clear_us']:.3f}", f"{v['peak_ma']:.0f}"]
         for k, v in out.items()]))
    # the extended first cycle must not delay clearing the high-load dip
    assert out[40]["hl_clear_us"] <= out[0]["hl_clear_us"] + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_a2a_contains_noise(benchmark):
    def study():
        out = {}
        for controller in ("async", "sync"):
            system, _ = _run(controller, 333e6, BuckControlParams(),
                             l_uh=4.7, noise=0.004, seed=5)
            result = system.run()   # raises ShortCircuitError on violation
            out[controller] = {
                "metastable": result.metastable_events,
                "v_final": result.v_final,
            }
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation 3: noisy comparators (sigma=4mV/4mA)",
        ["controller", "contained metastability events", "V_final"],
        [[c, str(v["metastable"]), f"{v['v_final']:.3f}"]
         for c, v in out.items()]))
    # both survive; regulation continues despite sensor chatter
    for c, v in out.items():
        assert abs(v["v_final"] - 3.3) < 0.6, c


@pytest.mark.benchmark(group="ablation")
def test_ablation_token_dwell(benchmark):
    def study():
        out = {}
        for dwell_ns in (75, 150, 300):
            params = BuckControlParams(phase_dwell=dwell_ns * NS)
            system, _ = _run("async", None, params, l_uh=4.7,
                             sim_time=8 * US)
            result = system.run()
            spread = max(result.cycles) - min(result.cycles)
            out[dwell_ns] = {"ripple_mv": result.ripple * 1e3,
                             "cycle_spread": spread,
                             "cycles": sum(result.cycles)}
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(format_table(
        "Ablation 4: token dwell (async, 4.7uH)",
        ["dwell", "ripple (mV)", "phase cycle spread", "total cycles"],
        [[f"{k}ns", f"{v['ripple_mv']:.0f}", str(v["cycle_spread"]),
          str(v["cycles"])] for k, v in out.items()]))
    # the ring must distribute work at every dwell setting
    for k, v in out.items():
        assert v["cycles"] > 20
