"""Bench: error-controlled adaptive stepping vs the fixed micro-step.

The ISSUE-4 acceptance benchmark: the Fig. 7a quick grid (five
controllers x four coils, 10 us runs at 1 ns base step, 6 Ohm load) is
executed twice through the session front door — once on the fixed grid
and once with ``stepping="adaptive"`` — and compared on

- **solver tick counts** (committed micro-steps, summed over the grid):
  adaptive must cut them at least :data:`TICK_FLOOR` x.  Tick counts are
  a deterministic function of the scenarios, so this floor gates
  unconditionally;
- **wall clock**: machine-dependent, so the :data:`SPEEDUP_FLOOR` only
  gates under ``REPRO_REQUIRE_SPEEDUP=1`` (the non-blocking CI bench
  job), matching the PR 2 convention;
- **drift**: per-lane peak currents stay within the cross-validation
  bound (the per-scenario drift suite lives in
  ``tests/scenarios/test_adaptive.py``).

The measurements land in a ``BENCH_adaptive.json`` artifact (cwd) with
per-lane tick counts, peaks, and the aggregate ratios, so CI runs leave
a comparable record.
"""

import json
import os
import time

import pytest

from repro import Session
from repro.experiments.fig7 import controller_axis, default_l_values
from repro.scenarios import Sweep
from repro.sim import NS, UH, US

pytestmark = pytest.mark.bench

#: aggregate committed-micro-step reduction the adaptive grid must reach
TICK_FLOOR = 5.0
#: wall-clock speedup floor (only gates under REPRO_REQUIRE_SPEEDUP=1)
SPEEDUP_FLOOR = 2.0
#: per-lane peak-current drift bound (A) — 3x headroom over observed
PEAK_TOL_A = 0.006

REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1"

ARTIFACT = "BENCH_adaptive.json"


def _quick_grid(stepping):
    axis = [(f"{l / UH:g}uH", {"l_uh": l / UH})
            for l in default_l_values(quick=True)]
    return (Sweep(base={"n_phases": 4, "r_load": 6.0, "sim_time": 10 * US,
                        "dt": 1 * NS, "seed": 0, "stepping": stepping},
                  name=f"fig7a-quick-{stepping}")
            .grid(ctrl=controller_axis(), pt=axis))


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_tick_and_wallclock_reduction(benchmark):
    session = Session(backend="vector", cache="off")
    fixed_specs = _quick_grid("fixed").specs()
    adaptive_specs = _quick_grid("adaptive").specs()
    assert len(fixed_specs) == len(adaptive_specs) == 20

    def run_both():
        t0 = time.perf_counter()
        fixed = session.sweep(fixed_specs, track_energy=False)
        t_fixed = time.perf_counter() - t0
        t0 = time.perf_counter()
        adaptive = session.sweep(adaptive_specs, track_energy=False)
        t_adaptive = time.perf_counter() - t0
        return fixed, t_fixed, adaptive, t_adaptive

    fixed, t_fixed, adaptive, t_adaptive = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    ticks_fixed = sum(p.result.solver_ticks for p in fixed)
    ticks_adaptive = sum(p.result.solver_ticks for p in adaptive)
    tick_ratio = ticks_fixed / ticks_adaptive
    speedup = t_fixed / t_adaptive
    worst_drift = max(abs(f.result.peak_coil_current
                          - a.result.peak_coil_current)
                      for f, a in zip(fixed, adaptive))

    lanes = [{
        "spec": f.spec.name.replace("fig7a-quick-fixed", "lane"),
        "ticks_fixed": f.result.solver_ticks,
        "ticks_adaptive": a.result.solver_ticks,
        "tick_ratio": f.result.solver_ticks / a.result.solver_ticks,
        "peak_fixed_a": f.result.peak_coil_current,
        "peak_adaptive_a": a.result.peak_coil_current,
    } for f, a in zip(fixed, adaptive)]
    payload = {
        "grid": "fig7a-quick (5 controllers x 4 coils, 10 us, dt=1 ns)",
        "ticks_fixed": ticks_fixed,
        "ticks_adaptive": ticks_adaptive,
        "tick_ratio": tick_ratio,
        "wall_clock_fixed_s": t_fixed,
        "wall_clock_adaptive_s": t_adaptive,
        "wall_clock_speedup": speedup,
        "worst_peak_drift_a": worst_drift,
        "tick_floor": TICK_FLOOR,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_gated": REQUIRE_SPEEDUP,
        "lanes": lanes,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)

    print()
    print(f"fig7a quick grid: {ticks_fixed} fixed ticks -> "
          f"{ticks_adaptive} adaptive ({tick_ratio:.2f}x fewer); "
          f"wall clock {t_fixed:.2f} s -> {t_adaptive:.2f} s "
          f"({speedup:.2f}x); worst peak drift "
          f"{worst_drift * 1e3:.2f} mA; artifact: {ARTIFACT}")

    assert worst_drift < PEAK_TOL_A, (
        f"adaptive peak currents drifted {worst_drift * 1e3:.2f} mA "
        f"from the fixed grid")
    assert tick_ratio >= TICK_FLOOR, (
        f"adaptive stepping only cut solver ticks {tick_ratio:.2f}x on "
        f"the fig7a quick grid (required {TICK_FLOOR}x)")
    if REQUIRE_SPEEDUP:
        assert speedup >= SPEEDUP_FLOOR, (
            f"adaptive stepping only {speedup:.2f}x faster in wall clock "
            f"(required {SPEEDUP_FLOOR}x)")
