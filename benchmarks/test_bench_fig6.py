"""Bench: regenerate Fig. 6 (simulation waveforms, sync vs async).

Prints the waveform-comparison table and ASCII V_load waveforms; checks
the paper's qualitative claims: smaller ripple, smaller peak current and
no extra OV episodes for the asynchronous controller.
"""

import pytest

from repro.experiments import PAPER_FIG6, run_fig6
from repro.experiments.fig6 import render_waveforms


pytestmark = pytest.mark.bench

@pytest.mark.benchmark(group="fig6")
def test_fig6_waveforms(benchmark):
    result = benchmark.pedantic(run_fig6, kwargs={"keep_systems": True},
                                rounds=1, iterations=1)
    print()
    print(result.format())
    for run in result.runs:
        print()
        print(render_waveforms(run, width=90))
    print(f"paper: ripple {PAPER_FIG6['sync']['ripple_v']}V (sync) vs "
          f"{PAPER_FIG6['async']['ripple_v']}V (async); peak "
          f"{PAPER_FIG6['sync']['peak_a']}A vs {PAPER_FIG6['async']['peak_a']}A")

    sync = result.run("sync")
    async_ = result.run("async")
    assert async_.ripple_v < sync.ripple_v, "async must show smaller ripple"
    assert async_.peak_a <= sync.peak_a, "async must show lower peak current"
    assert (async_.ov_events_startup + async_.ov_events_after_startup
            <= sync.ov_events_startup + sync.ov_events_after_startup)
    # both reach regulation and both traverse the HL region
    for run in result.runs:
        assert run.hl_events >= 1
        assert run.v_min_high_load < 3.0
