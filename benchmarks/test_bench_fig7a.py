"""Bench: regenerate Fig. 7a (peak current vs coil inductance, 6 Ohm).

Prints the five series over the full 1-10 uH catalogue plus the coil-size
trade-off query; checks: peak decreases with L, slower clocks sit higher,
async is the lowest curve, and the minimum workable coil shrinks with
controller speed (paper: async 1.8 uH vs 333 MHz 6.8 uH vs 100 MHz 10 uH
at the 300 mA budget).
"""

import pytest

from repro.experiments import (
    PAPER_FIG7A_TRADEOFF_UH,
    coil_tradeoff,
    format_tradeoff,
    run_fig7a,
)
from repro import session_from_env

pytestmark = pytest.mark.bench

#: env-configured session (REPRO_SWEEP_WORKERS / REPRO_CACHE)
SESSION = session_from_env()

LIMIT_MA = 330.0


@pytest.mark.benchmark(group="fig7")
def test_fig7a_peak_vs_inductance(benchmark):
    result = benchmark.pedantic(run_fig7a, kwargs={"session": SESSION},
                                rounds=1, iterations=1)
    print()
    print(result.format())
    print(result.chart())
    tradeoff = coil_tradeoff(result, LIMIT_MA)
    print(format_tradeoff(tradeoff, LIMIT_MA))
    print("paper trade-off (300 mA):", PAPER_FIG7A_TRADEOFF_UH)

    for label, pts in result.series.items():
        ys = [y for _, y in sorted(pts)]
        assert ys[0] > ys[-1], f"{label}: peak must fall with L"
    for x, y in result.series["ASYNC"]:
        assert y <= result.value("100MHz", x) + 1.0
        assert y <= result.value("333MHz", x) + 1.0
    # trade-off monotone in controller speed, as in the paper
    assert (tradeoff["ASYNC"] <= tradeoff["333MHz"] <= tradeoff["100MHz"])
