"""Bench: regenerate Fig. 7b (peak current vs load resistance, 4.7 uH).

"This trend persists for a wide range of load resistance that covers the
typical computational load of mobile microprocessors" — the async curve
stays the lowest across 3-15 Ohm.
"""

import pytest

from repro.experiments import run_fig7b
from repro import session_from_env


pytestmark = pytest.mark.bench

#: env-configured session (REPRO_SWEEP_WORKERS / REPRO_CACHE)
SESSION = session_from_env()

@pytest.mark.benchmark(group="fig7")
def test_fig7b_peak_vs_load(benchmark):
    result = benchmark.pedantic(run_fig7b, kwargs={"session": SESSION},
                                rounds=1, iterations=1)
    print()
    print(result.format())
    print(result.chart())

    for x, y in result.series["ASYNC"]:
        assert y <= result.value("100MHz", x) + 1.0
        assert y <= result.value("333MHz", x) + 1.0
    # heavier load (smaller R) must not lower the peak
    for label, pts in result.series.items():
        ordered = sorted(pts)
        assert ordered[0][1] >= ordered[-1][1] - 5.0, label
