"""Bench: regenerate Fig. 7c (inductor losses vs coil inductance, 6 Ohm).

"The smaller coil inductance also translates into fewer losses" — DCR
grows with L, so conduction losses grow with coil size; choosing the
smallest coil the controller can afford (Fig. 7a) minimises losses, and
the async controller affords the smallest coil.
"""

import pytest

from repro.experiments import coil_tradeoff, run_fig7a, run_fig7c
from repro import session_from_env


pytestmark = pytest.mark.bench

#: env-configured session (REPRO_SWEEP_WORKERS / REPRO_CACHE)
SESSION = session_from_env()

@pytest.mark.benchmark(group="fig7")
def test_fig7c_losses_vs_inductance(benchmark):
    result = benchmark.pedantic(run_fig7c, kwargs={"quick": False, "session": SESSION},
                                rounds=1, iterations=1)
    print()
    print(result.format(y_format="{:.0f}"))
    print(result.chart())

    # losses grow strongly with inductance for every controller
    for label, pts in result.series.items():
        ordered = sorted(pts)
        assert ordered[-1][1] > 3 * ordered[0][1], label

    # the paper's system-level conclusion: the async controller can run
    # the smallest coil (Fig. 7a trade-off), and the smallest coil has
    # the smallest losses — quantify the combined benefit
    fig7a = run_fig7a(quick=True, session=SESSION)
    tradeoff = coil_tradeoff(fig7a, 330.0)
    loss_at = {label: dict(pts) for label, pts in result.series.items()}
    async_loss = loss_at["ASYNC"][tradeoff["ASYNC"]]
    sync_loss = loss_at["100MHz"][tradeoff["100MHz"]]
    print(f"loss at each controller's smallest workable coil: "
          f"async {async_loss:.0f} uW vs 100MHz {sync_loss:.0f} uW")
    assert async_loss < sync_loss
