"""Bench: clock-gated event fast-forward vs the always-on clocks.

The ISSUE-6 acceptance benchmark: the Fig. 7a quick grid (five
controllers x four coils, 10 us runs at 1 ns step, 6 Ohm load) is
executed twice through the session front door — once with
``gating="off"`` (the PR 5 baseline behaviour) and once with
``gating="auto"`` — and compared on

- **simulated clock edges** (summed over the grid): gating must cut
  them at least :data:`EDGE_FLOOR` x.  Edge counts are a deterministic
  function of the scenarios (and are golden-locked per lane in
  ``tests/golden/test_golden_events.py``), so this floor gates
  unconditionally;
- **wall clock**: machine-dependent, so the :data:`SPEEDUP_FLOOR` only
  gates under ``REPRO_REQUIRE_SPEEDUP=1`` (the non-blocking CI bench
  job), matching the PR 2 convention;
- **bit-exactness**: gating promises *identical* observable results —
  any drift at all fails the bench (the broad differential matrix lives
  in ``tests/scenarios/test_differential.py``).

The measurements land in a ``BENCH_gating.json`` artifact (cwd) with
per-lane edge/event counters and the aggregate ratios, so CI runs leave
a comparable record next to ``BENCH_adaptive.json``.
"""

import json
import os
import time

import pytest

from repro import Session
from repro.experiments.fig7 import controller_axis, default_l_values
from repro.scenarios import Sweep
from repro.sim import NS, UH, US

pytestmark = pytest.mark.bench

#: aggregate simulated-clock-edge reduction the gated grid must reach
EDGE_FLOOR = 5.0
#: wall-clock speedup floor (only gates under REPRO_REQUIRE_SPEEDUP=1)
SPEEDUP_FLOOR = 2.0

REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1"

ARTIFACT = "BENCH_gating.json"


def _quick_grid(gating):
    axis = [(f"{l / UH:g}uH", {"l_uh": l / UH})
            for l in default_l_values(quick=True)]
    return (Sweep(base={"n_phases": 4, "r_load": 6.0, "sim_time": 10 * US,
                        "dt": 1 * NS, "seed": 0, "gating": gating},
                  name=f"fig7a-quick-{gating}")
            .grid(ctrl=controller_axis(), pt=axis))


def _fingerprint(p):
    r = p.result
    return (r.v_final, r.peak_coil_current, r.ripple, r.coil_loss_w,
            r.efficiency, r.ov_events, tuple(r.cycles),
            r.metastable_events, r.solver_ticks)


@pytest.mark.benchmark(group="gating")
def test_gating_edge_and_wallclock_reduction(benchmark):
    session = Session(backend="vector", cache="off")
    off_specs = _quick_grid("off").specs()
    auto_specs = _quick_grid("auto").specs()
    assert len(off_specs) == len(auto_specs) == 20

    def run_both():
        t0 = time.perf_counter()
        off = session.sweep(off_specs, track_energy=False)
        t_off = time.perf_counter() - t0
        t0 = time.perf_counter()
        auto = session.sweep(auto_specs, track_energy=False)
        t_auto = time.perf_counter() - t0
        return off, t_off, auto, t_auto

    off, t_off, auto, t_auto = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    edges_off = sum(p.result.clock_edges_simulated for p in off)
    edges_auto = sum(p.result.clock_edges_simulated for p in auto)
    skipped = sum(p.result.clock_edges_skipped for p in auto)
    events_off = sum(p.result.events_delivered for p in off)
    events_auto = sum(p.result.events_delivered for p in auto)
    edge_ratio = edges_off / edges_auto
    speedup = t_off / t_auto
    drifted = [o.spec.name for o, a in zip(off, auto)
               if _fingerprint(o) != _fingerprint(a)]

    lanes = [{
        "spec": o.spec.name.replace("fig7a-quick-off", "lane"),
        "edges_off": o.result.clock_edges_simulated,
        "edges_auto": a.result.clock_edges_simulated,
        "edges_skipped": a.result.clock_edges_skipped,
        "events_off": o.result.events_delivered,
        "events_auto": a.result.events_delivered,
    } for o, a in zip(off, auto)]
    payload = {
        "grid": "fig7a-quick (5 controllers x 4 coils, 10 us, dt=1 ns)",
        "edges_off": edges_off,
        "edges_auto": edges_auto,
        "edges_skipped": skipped,
        "edge_ratio": edge_ratio,
        "events_off": events_off,
        "events_auto": events_auto,
        "wall_clock_off_s": t_off,
        "wall_clock_auto_s": t_auto,
        "wall_clock_speedup": speedup,
        "edge_floor": EDGE_FLOOR,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_gated": REQUIRE_SPEEDUP,
        "lanes": lanes,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)

    print()
    print(f"fig7a quick grid: {edges_off} simulated clock edges -> "
          f"{edges_auto} ({edge_ratio:.2f}x fewer, {skipped} skipped); "
          f"events {events_off} -> {events_auto}; wall clock "
          f"{t_off:.2f} s -> {t_auto:.2f} s ({speedup:.2f}x); "
          f"artifact: {ARTIFACT}")

    assert not drifted, (
        f"gating changed observable results on lanes {drifted} — "
        f"it promises bit-exactness")
    assert edge_ratio >= EDGE_FLOOR, (
        f"gating only cut simulated clock edges {edge_ratio:.2f}x on "
        f"the fig7a quick grid (required {EDGE_FLOOR}x)")
    if REQUIRE_SPEEDUP:
        assert speedup >= SPEEDUP_FLOOR, (
            f"gating only {speedup:.2f}x faster in wall clock "
            f"(required {SPEEDUP_FLOOR}x)")
