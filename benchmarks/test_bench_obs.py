"""Bench: instrumentation overhead of the ``repro.obs`` layer.

The ISSUE-10 cost bound: spans, metrics, and receipts ride every sweep,
so they must be close to free.  The fig7a quick grid (5 controllers x
4 coils = 20 lanes, cache off so every lane computes) runs twice with
``REPRO_OBS`` disabled and enabled in interleaved rounds, best-of-three
each way so a transient load spike cannot sink the ratio, and the
enabled pass must cost <= 2% extra wall clock.

Results must also stay bit-identical across the switch — that part is
unconditional (and re-locked by ``tests/obs/test_inertness.py`` on the
sharded path).  The wall-clock bound is machine-dependent, so it only
*gates* under ``REPRO_REQUIRE_SPEEDUP=1`` (the non-blocking CI bench
job); otherwise the measured overhead is recorded but never fails.

The measurements land in a ``BENCH_obs.json`` artifact (cwd) so CI runs
leave a comparable record of the overhead trajectory.
"""

import json
import os
import time

import pytest

from repro import Session, obs
from repro.experiments import run_fig7a

pytestmark = pytest.mark.bench

#: maximum tolerated instrumentation overhead (fraction of wall clock)
OVERHEAD_CEILING = 0.02

REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1"

ARTIFACT = "BENCH_obs.json"


def _timed_pass(enabled: bool):
    obs.set_enabled(enabled)
    try:
        session = Session(cache="off")
        t0 = time.perf_counter()
        result = run_fig7a(quick=True, session=session)
        return time.perf_counter() - t0, result
    finally:
        obs.set_enabled(None)


@pytest.mark.benchmark(group="obs")
def test_obs_overhead_within_two_percent(benchmark):
    def run_both():
        # interleaved rounds: machine drift hits both sides equally
        t_off, t_on = [], []
        for _ in range(3):
            elapsed, result_off = _timed_pass(False)
            t_off.append(elapsed)
            elapsed, result_on = _timed_pass(True)
            t_on.append(elapsed)
        return min(t_off), min(t_on), result_off, result_on

    t_off, t_on, result_off, result_on = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    overhead = (t_on - t_off) / t_off

    if REQUIRE_SPEEDUP and overhead > OVERHEAD_CEILING:
        # one retry: short passes on shared machines are noisy
        t_off, t_on, result_off, result_on = run_both()
        overhead = (t_on - t_off) / t_off

    payload = {
        "grid": "fig7a-quick",
        "lanes": 20,
        "obs_off_s": round(t_off, 3),
        "obs_on_s": round(t_on, 3),
        "overhead_frac": round(overhead, 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "overhead_gated": REQUIRE_SPEEDUP,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)

    print()
    print(f"fig7a quick grid: obs off {t_off:.2f} s, on {t_on:.2f} s "
          f"-> {overhead:+.1%} overhead")

    # inertness is unconditional: same numbers with the switch flipped
    assert result_on.series == result_off.series
    if REQUIRE_SPEEDUP:
        assert overhead <= OVERHEAD_CEILING, (
            f"obs layer costs {overhead:.1%} wall clock "
            f"(ceiling {OVERHEAD_CEILING:.0%})")
