"""Bench: process-sharded ``run_sweep`` vs the inline vectorized path.

A 64-scenario async sweep (coil x load x PMIN grid over the Fig. 7
ranges) executed twice through the vectorized backend — once inline
(one process, one batch) and once sharded across a worker pool — and
the two wall-clock times are recorded side by side.

The sharded results must be bit-identical to the inline run (that part
asserts unconditionally).  The speedup itself is informational: it
scales with the host's core count (a single-core runner pays the fork
and re-batching overhead for no gain), so no wall-clock floor gates
here even under ``REPRO_REQUIRE_SPEEDUP``.
"""

import os
import time

import pytest

from repro import Session
from repro.scenarios import Sweep
from repro.sim import NS, US

pytestmark = pytest.mark.bench

#: worker count for the sharded pass (at least 2 so sharding is real)
WORKERS = max(2, min(8, os.cpu_count() or 1))


def _sweep64() -> Sweep:
    return (Sweep(base={"controller": "async", "n_phases": 4,
                        "sim_time": 4 * US, "dt": 1 * NS, "seed": 0},
                  name="par64")
            .grid(l_uh=[1.0, 2.25, 3.1, 4.7, 5.7, 6.8, 8.2, 10.0],
                  r_load=[3.0, 6.0, 9.0, 15.0],
                  pmin=[2 * NS, 20 * NS]))


@pytest.mark.benchmark(group="parallel")
def test_sharded_sweep_records_speedup(benchmark):
    specs = _sweep64().specs()
    assert len(specs) == 64

    inline_session = Session(cache="off")
    sharded_session = Session(workers=WORKERS, cache="off")

    def run_both():
        t0 = time.perf_counter()
        inline_points = inline_session.sweep(specs, track_energy=False)
        t_inline = time.perf_counter() - t0
        t0 = time.perf_counter()
        sharded_points = sharded_session.sweep(specs, track_energy=False)
        t_sharded = time.perf_counter() - t0
        return t_inline, t_sharded, inline_points, sharded_points

    t_inline, t_sharded, inline_points, sharded_points = \
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"64-scenario sweep: inline {t_inline:.2f} s, "
          f"sharded ({WORKERS} workers) {t_sharded:.2f} s "
          f"-> {t_inline / t_sharded:.2f}x "
          f"({os.cpu_count()} cores available)")

    # sharding must never change a single number
    assert [p.spec.name for p in sharded_points] == \
        [p.spec.name for p in inline_points]
    for inline, sharded in zip(inline_points, sharded_points):
        assert sharded.result == inline.result, inline.spec.name
