"""Bench: the Sec. IV formal-verification pipeline over the model zoo.

Reproduces the paper's verification claims: every controller-module STG is
consistent, deadlock-free and output-persistent; the buck specs cannot
short-circuit the power transistors; synthesised gate-level netlists are
conformant and hazard-free.
"""

import pytest

from repro.experiments import run_stg_verification


pytestmark = pytest.mark.bench

@pytest.mark.benchmark(group="stg")
def test_stg_verification_pipeline(benchmark):
    result = benchmark.pedantic(run_stg_verification, rounds=1, iterations=1)
    print()
    print(result.format())

    assert result.all_ok
    by_name = {r.name: r for r in result.reports}
    # the paper's named safety property
    assert "short-circuit safe" in by_name["basic_buck"].notes
    assert "short-circuit safe" in by_name["charge_ctrl"].notes
    # gate-level closure for every synthesisable module
    for r in result.reports:
        if r.synthesised:
            assert r.gate_level_ok, r.name
