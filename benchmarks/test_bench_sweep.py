"""Bench: batched scenario engine vs sequential scalar-solver runs.

The ISSUE-1 acceptance benchmark: a 32-scenario Fig. 7-style ablation
sweep (async controller; coil x load grid from the Fig. 7a/7b ranges,
crossed with the PMIN and token-dwell ablation axes of the ablation
benches) executed twice —

- through the batched engine's vectorized backend (one lock-step batch,
  Fig. 6-grade 0.5 ns resolution, energy bookkeeping off as this is a
  peak-current study), and
- as 32 sequential scalar-solver runs of the same specs,

and asserts the batch is at least 5x faster while producing *identical*
peak-current numbers (the vectorized path is arithmetically bit-matched
to the scalar solver with noiseless sensors).

Both backends are timed in the same process, back to back, and the
vectorized side is timed best-of-two so a transient load spike on the CI
machine cannot sink the ratio.

The vector/scalar exact-peak-equality assertion is unconditional.  The
>=5x wall-clock assertion is machine-dependent, so it only *gates* when
``REPRO_REQUIRE_SPEEDUP=1`` is set (the non-blocking CI bench job);
otherwise the measured ratio is recorded but never fails the run.
"""

import os
import time

import pytest

from repro import Session
from repro.scenarios import Sweep
from repro.sim import NS, US

pytestmark = pytest.mark.bench

SPEEDUP_FLOOR = 5.0

#: wall-clock assertions gate only where the environment opts in
REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1"


def _ablation_sweep() -> Sweep:
    return (Sweep(base={"controller": "async", "n_phases": 4,
                        "sim_time": 10 * US, "dt": 0.5 * NS, "seed": 0},
                  name="ablation32")
            .grid(l_uh=[4.7, 6.8, 8.2, 10.0],
                  r_load=[9.0, 15.0],
                  pmin=[2 * NS, 20 * NS],
                  phase_dwell=[150 * NS, 300 * NS]))


@pytest.mark.benchmark(group="sweep")
def test_batched_sweep_speedup(benchmark):
    specs = _ablation_sweep().specs()
    assert len(specs) == 32

    vector_session = Session(backend="vector", cache="off")
    scalar_session = Session(backend="scalar", cache="off")

    def run_both():
        vector_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            vector_points = vector_session.sweep(specs, track_energy=False)
            vector_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        scalar_points = scalar_session.sweep(specs)
        scalar_time = time.perf_counter() - t0
        return min(vector_times), scalar_time, vector_points, scalar_points

    t_vector, t_scalar, vector_points, scalar_points = \
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = t_scalar / t_vector
    print()
    print(f"32-scenario ablation sweep: vectorized {t_vector:.2f} s, "
          f"sequential scalar {t_scalar:.2f} s -> {speedup:.2f}x")
    if REQUIRE_SPEEDUP and speedup < SPEEDUP_FLOOR:
        # one retry: a transient load spike on a shared machine hits the
        # short vectorized runs much harder than the long scalar pass
        t_vector, t_scalar, vector_points, scalar_points = run_both()
        speedup = t_scalar / t_vector
        print(f"retry after noisy measurement: vectorized {t_vector:.2f} s, "
              f"scalar {t_scalar:.2f} s -> {speedup:.2f}x")

    # the batched engine must reproduce the scalar peaks exactly
    worst = max(abs(v.result.peak_coil_current - s.result.peak_coil_current)
                for v, s in zip(vector_points, scalar_points))
    assert worst == 0.0, f"vector/scalar peak mismatch: {worst}"
    if REQUIRE_SPEEDUP:
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched engine only {speedup:.2f}x faster than sequential "
            f"scalar runs (required {SPEEDUP_FLOOR}x)")
