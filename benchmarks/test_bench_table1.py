"""Bench: regenerate Table I (reaction-time comparison).

Prints the paper-style table (run with ``-s`` to see it) and checks the
claims: synchronous latency = 2.5 clock periods across all conditions;
asynchronous latency is path-dependent and 4-24x faster than 333 MHz.
"""

import pytest

from repro.experiments import PAPER_TABLE1, run_table1
from repro.metrics.reaction import CONDITIONS
from repro import session_from_env


pytestmark = pytest.mark.bench

#: env-configured session (REPRO_SWEEP_WORKERS / REPRO_CACHE)
SESSION = session_from_env()

@pytest.mark.benchmark(group="table1")
def test_table1_reaction_times(benchmark):
    result = benchmark.pedantic(run_table1, kwargs={"n_offsets": 6, "session": SESSION},
                                rounds=1, iterations=1)
    print()
    print(result.format())
    print("paper ASYNC row:", PAPER_TABLE1["ASYNC"])

    # Shape assertions (paper-vs-measured):
    imp = result.improvement_over_333
    assert imp["ZC"] > imp["OC"] > imp["UV"], "path-dependence ordering"
    for c in CONDITIONS:
        # async row calibrated to the paper within 0.1 ns
        assert abs(result.rows["ASYNC"][c] - PAPER_TABLE1["ASYNC"][c]) < 0.1
        # sync rows scale as 2.5 periods
        assert result.rows["100MHz"][c] > result.rows["1GHz"][c]
    assert imp["HL"] >= 3 and imp["ZC"] >= 20
