"""Bench: the waveform subsystem — trace memory compaction + sharding.

Two measurements on the Fig. 7a quick grid (five controllers x four
coils, 10 us runs, 6 Ohm load), both recorded in ``BENCH_trace.json``:

1. **Traced-adaptive memory.**  An adaptive vector batch records one
   row per solver iteration for *every* lane, so lanes that idle
   (zero-width steps) while batch stragglers finish keep duplicate
   rows.  :meth:`TraceSet.compacted` (applied by default when per-lane
   traces are extracted) drops them; the raw-over-compacted byte ratio
   must reach :data:`COMPACTION_FLOOR`.  Byte counts are a deterministic
   function of the scenarios, so this floor gates unconditionally.

2. **Sharded-trace wall clock.**  ``Session.sweep(trace=True,
   workers=N)`` — waveforms come back through the process pool — timed
   against the inline traced sweep.  Bit-identity of every TraceSet
   asserts unconditionally; the wall-clock floor
   (:data:`SPEEDUP_FLOOR`) is machine-dependent and only gates under
   ``REPRO_REQUIRE_SPEEDUP=1`` (the non-blocking CI bench job) *and*
   with at least two cores available — a single-core host cannot speed
   anything up by sharding — matching the PR 2 convention.
"""

import json
import os
import time

import pytest

from repro import Session
from repro.experiments.fig7 import controller_axis, default_l_values
from repro.scenarios import Sweep
from repro.scenarios.engine import VectorBatch
from repro.sim import NS, UH, US

pytestmark = pytest.mark.bench

#: raw-over-compacted trace byte ratio the adaptive grid must reach
COMPACTION_FLOOR = 2.0
#: sharded-vs-inline traced sweep speedup (gates under REPRO_REQUIRE_SPEEDUP)
SPEEDUP_FLOOR = 1.2

REQUIRE_SPEEDUP = os.environ.get("REPRO_REQUIRE_SPEEDUP") == "1"

ARTIFACT = "BENCH_trace.json"

WORKERS = max(2, min(4, os.cpu_count() or 1))


def _quick_grid(stepping):
    axis = [(f"{l / UH:g}uH", {"l_uh": l / UH})
            for l in default_l_values(quick=True)]
    return (Sweep(base={"n_phases": 4, "r_load": 6.0, "sim_time": 10 * US,
                        "dt": 1 * NS, "seed": 0, "stepping": stepping},
                  name=f"fig7a-quick-trace-{stepping}")
            .grid(ctrl=controller_axis(), pt=axis))


def _write_artifact(payload):
    existing = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as fh:
            existing = json.load(fh)
    existing.update(payload)
    with open(ARTIFACT, "w") as fh:
        json.dump(existing, fh, indent=1, sort_keys=True)


@pytest.mark.benchmark(group="trace")
def test_adaptive_trace_compaction_memory(benchmark):
    """Idle-lane row compaction must shrink traced-adaptive memory >= 2x."""
    specs = _quick_grid("adaptive").specs()
    configs = [spec.to_config(trace=True) for spec in specs]
    assert len(specs) == 20

    def run():
        batch = VectorBatch(specs, configs, track_energy=False)
        batch.run()
        return batch

    batch = benchmark.pedantic(run, rounds=1, iterations=1)
    solver = batch.solver
    raw = sum(solver.trace_set(i, compact=False).nbytes
              for i in range(len(specs)))
    compacted = sum(solver.trace_set(i, compact=True).nbytes
                    for i in range(len(specs)))
    ratio = raw / compacted
    print()
    print(f"traced-adaptive fig7a quick grid: raw {raw / 1e6:.2f} MB, "
          f"compacted {compacted / 1e6:.2f} MB -> {ratio:.2f}x smaller")
    _write_artifact({"compaction": {
        "raw_bytes": raw, "compacted_bytes": compacted,
        "ratio": ratio, "floor": COMPACTION_FLOOR, "lanes": len(specs),
    }})
    assert ratio >= COMPACTION_FLOOR, (
        f"adaptive idle-lane compaction only saved {ratio:.2f}x "
        f"(need >= {COMPACTION_FLOOR}x)")


@pytest.mark.benchmark(group="trace")
def test_sharded_traced_sweep_wall_clock(benchmark):
    """trace=True sweeps shard bit-identically; record (and, in the CI
    bench job, gate) the wall-clock win."""
    specs = _quick_grid("fixed").specs()
    inline_session = Session(cache="off")
    sharded_session = Session(workers=WORKERS, cache="off")

    def run_both():
        t0 = time.perf_counter()
        inline = inline_session.sweep(specs, trace=True, track_energy=False)
        t_inline = time.perf_counter() - t0
        t0 = time.perf_counter()
        sharded = sharded_session.sweep(specs, trace=True,
                                        track_energy=False)
        t_sharded = time.perf_counter() - t0
        return inline, t_inline, sharded, t_sharded

    inline, t_inline, sharded, t_sharded = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    speedup = t_inline / t_sharded
    print()
    print(f"traced fig7a quick grid: inline {t_inline:.2f} s, "
          f"sharded ({WORKERS} workers) {t_sharded:.2f} s "
          f"-> {speedup:.2f}x ({os.cpu_count()} cores available)")

    # sharding must never change a sample: every waveform bit-identical
    for a, b in zip(inline, sharded):
        assert b.result.trace is not None
        assert b.result.trace == a.result.trace, a.spec.name
        assert b.result == a.result, a.spec.name

    gate = REQUIRE_SPEEDUP and (os.cpu_count() or 1) >= 2
    _write_artifact({"sharded_wall_clock": {
        "t_inline_s": t_inline, "t_sharded_s": t_sharded,
        "speedup": speedup, "floor": SPEEDUP_FLOOR,
        "workers": WORKERS, "cores": os.cpu_count(), "gated": gate,
    }})
    if gate:
        assert speedup >= SPEEDUP_FLOOR, (
            f"sharded traced sweep only reached {speedup:.2f}x "
            f"(need >= {SPEEDUP_FLOOR}x under REPRO_REQUIRE_SPEEDUP=1)")
