#!/usr/bin/env python
"""The A4A design flow, end to end, on one controller module.

Walks the paper's Fig. 3 pipeline for the CHARGE_CTRL module:

1. formal specification as a signal transition graph;
2. sanity checks (consistency, deadlock-freeness, output persistence)
   plus the design-specific short-circuit invariant;
3. speed-independent logic synthesis (complex gates, with the state graph
   and Quine-McCluskey under the hood);
4. gate-level re-verification: conformance and hazard-freeness against
   the original STG;
5. export of the spec in the petrify/Workcraft ``.g`` format.

Run:  python examples/a4a_flow.py
"""

from repro.stg import (
    GateLevelCircuit,
    StateGraph,
    synthesize,
    verify,
    verify_circuit,
    write_g,
)
from repro.stg.models import charge_ctrl_stg


def main() -> None:
    # 1. formal specification
    stg = charge_ctrl_stg()
    sg = StateGraph(stg)
    print(f"specification: {stg!r}")
    print(f"state graph: {len(sg)} reachable states\n")

    # 2. verification with the short-circuit safety property
    report = verify(stg, mutex_pairs=[("gp", "gn")])
    print(report.summary())

    # 3. synthesis
    synth = synthesize(stg)
    print()
    print(synth.netlist_summary())
    gc = synthesize(stg, style="gc")
    print()
    print(gc.netlist_summary())

    # 4. gate-level closure
    circuit = GateLevelCircuit.from_synthesis(stg, synth)
    gate_report = verify_circuit(stg, circuit)
    print()
    print(gate_report.summary())

    # 5. .g export (open in Workcraft!)
    print("\n--- charge_ctrl.g " + "-" * 40)
    print(write_g(stg))


if __name__ == "__main__":
    main()
