#!/usr/bin/env python
"""Content-addressed result caching: the Fig. 7a quick grid, cold vs hot.

Runs the Fig. 7a quick grid (5 controllers x 4 coils = 20 scenarios)
twice through two independent :class:`repro.Session` objects sharing one
cache directory:

- the **cold** pass simulates every lane and writes each result back to
  the cache, keyed by a canonical hash of (resolved config, measurement
  knobs, code-version fingerprint);
- the **hot** pass is served entirely from disk — bit-identical numbers,
  near-zero wall clock, at any worker count.

Doubles as the CI cache-smoke step: ``--require-hot`` exits non-zero
unless the hot pass hits >= 90% and reproduces the cold pass exactly.

With the observability layer enabled (the default), ``--receipt-out``
writes the hot pass's sweep receipt (config hashes, code fingerprint,
hit ratio, phase wall times) and ``--trace-out`` its Chrome trace-event
timeline (load in ``chrome://tracing`` / Perfetto).

Run:  python examples/cached_sweep.py [--cache-dir D] [--workers N]
                                      [--require-hot] [--receipt-out F]
                                      [--trace-out F]
"""

import argparse
import json
import sys
import time

from repro import Session
from repro.experiments import run_fig7a

HOT_HIT_FLOOR = 0.90


def run_pass(label: str, cache_dir: str, workers):
    session = Session(workers=workers, cache="readwrite",
                      cache_dir=cache_dir)
    t0 = time.perf_counter()
    result = run_fig7a(quick=True, session=session)
    elapsed = time.perf_counter() - t0
    stats = session.cache_stats()
    total = stats["hits"] + stats["misses"]
    print(f"{label} pass: {elapsed:6.2f} s  "
          f"{stats['hits']}/{total} served from cache")
    return result, stats, session


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=".repro_cache",
                        help="cache root shared by both passes")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the grid across N worker processes")
    parser.add_argument("--require-hot", action="store_true",
                        help="fail unless the second pass hits >= 90%% "
                             "and matches the first bit-for-bit")
    parser.add_argument("--receipt-out", default=None,
                        help="write the hot pass's sweep receipt here")
    parser.add_argument("--trace-out", default=None,
                        help="write the hot pass's Chrome trace JSON here")
    args = parser.parse_args()

    cold, _, _ = run_pass("cold", args.cache_dir, args.workers)
    hot, stats, session = run_pass("hot ", args.cache_dir, args.workers)

    identical = cold.series == hot.series
    total = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / total if total else 0.0
    print(f"hot pass hit rate: {hit_rate:.0%}; "
          f"series bit-identical: {identical}")

    if args.receipt_out:
        with open(args.receipt_out, "w", encoding="utf-8") as fh:
            json.dump(session.last_receipt(), fh, indent=1, sort_keys=True)
        print(f"wrote {args.receipt_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(session.last_trace_events(), fh)
        print(f"wrote {args.trace_out}")

    if args.require_hot and (hit_rate < HOT_HIT_FLOOR or not identical):
        print(f"FAIL: expected >= {HOT_HIT_FLOOR:.0%} hits and identical "
              f"series", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
