#!/usr/bin/env python
"""Coil-size trade-off study (the paper's Fig. 7 design question).

Power inductors are the bulkiest parts of a converter.  A faster
controller overshoots the current limit less, so it can run a smaller
coil — which also has a smaller winding resistance and therefore lower
conduction losses.  This example sweeps the Coilcraft-style catalogue and
answers: *what is the smallest coil each controller can afford, and what
does that choice cost in losses?*

Run:  python examples/coil_selection.py [--full]
"""

import sys

from repro import Session
from repro.experiments import (
    coil_tradeoff,
    format_tradeoff,
    run_fig7a,
    run_fig7c,
)

PEAK_BUDGET_MA = 330.0


def main() -> None:
    quick = "--full" not in sys.argv
    # one cached session for both figures: re-running this study (or any
    # other fig7 grid over the same points) is served from .repro_cache/
    session = Session(cache="readwrite")
    print(f"sweeping the coil catalogue ({'quick' if quick else 'full'})...")
    fig7a = run_fig7a(quick=quick, session=session)
    print()
    print(fig7a.format())
    print()
    tradeoff = coil_tradeoff(fig7a, PEAK_BUDGET_MA)
    print(format_tradeoff(tradeoff, PEAK_BUDGET_MA))

    print("\n...and what those coils cost in conduction losses:")
    fig7c = run_fig7c(quick=quick, session=session)
    loss_at = {label: dict(pts) for label, pts in fig7c.series.items()}
    for label in ("ASYNC", "333MHz", "100MHz"):
        coil_uh = tradeoff[label]
        if coil_uh == float("inf"):
            print(f"  {label:>7}: no catalogue coil meets the budget")
            continue
        loss = loss_at[label].get(coil_uh)
        extra = "" if loss is None else f" -> {loss:.0f} uW coil loss"
        print(f"  {label:>7}: {coil_uh:.3g} uH{extra}")
    print("\nconclusion: the faster the control reacts, the smaller (and "
          "cheaper, and more efficient) the coil it can safely drive — "
          "the paper's system-level argument for asynchronous control.")


if __name__ == "__main__":
    main()
