#!/usr/bin/env python
"""Demo: every repro.lint rule firing on a miniature broken tree.

Writes a tiny package into a temp directory with one of each violation
the analyzer knows about — an unkeyed config field, a one-sided parity
edit, an unseeded RNG draw, a wall-clock read, unordered iteration,
id()-ordering, an RNG draw on a clock-gating path, an unguarded write
to a `guarded_by` attribute, a lock-order inversion, a blocking call
under a lock, a set flowing (through variables) into a wire encoding,
and a one-sided wire-field addition — runs the analyzer over it, and
prints the findings grouped by rule family.

Nothing here touches the real tree (which is lint-clean; that is a
tier-1 test).  Use this to see what each finding looks like before you
meet one in CI, or `python -m repro.lint --explain <RULE>` for the
catalog entry.

Run:  python examples/lint_demo.py
"""

import tempfile
from pathlib import Path

from repro.lint import FAMILIES, LintConfig, RULES, run_lint, update_locks

#: the miniature broken tree, mirroring the real module layout
BROKEN_TREE = {
    "system.py": '''\
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SystemConfig:
    dt: float = 1e-9
    n_phases: int = 4
    stepping: str = "fixed"
    seed: int = 0            # never keyed -> K01 + K02
    drift_ppm: float = 0.0   # never keyed -> K01 + K02


@dataclass
class RunResult:
    v_final: float = 0.0
    ripple: float = 0.0      # not in _FLOAT_FIELDS -> K04
    cycles: List[int] = None

    def to_dict(self):
        return {"v_final": self.v_final, "ripple": self.ripple}
''',
    "analog/stepping.py": '''\
from dataclasses import dataclass


@dataclass(frozen=True)
class SteppingPolicy:
    mode: str = "fixed"
    dt: float = 1e-9
    secret_gain: float = 2.0   # no SystemConfig counterpart -> K05
''',
    "session/cache.py": '''\
FORMAT_VERSION = 1

_FLOAT_FIELDS = ("v_final",)
_INT_FIELDS = ()


def cache_key(config):
    return (config.dt, config.n_phases, config.stepping)
''',
    "scenarios/parallel.py": '''\
import json
import random
import time


def lockstep_key(config):
    # lint: nokey(ghost: names a field that does not exist)
    # lint: nokey(seed)
    return (config.dt, config.n_phases, config.stepping)


def shard(specs, pool_dir):
    t0 = time.perf_counter()            # wall clock -> D02
    jitter = random.random()            # global RNG -> D01
    for path in pool_dir.glob("*.json"):   # fs order -> D03
        specs.append(path)
    for name in {"uv", "ov"}:           # set order -> D03
        specs.append(name)
    specs.sort(key=id)                  # address order -> D04
    return t0, jitter


def manifest(specs):
    names = set(s.name for s in specs)
    payload = {"names": list(names)}    # taint survives the literal
    return json.dumps(payload)          # set order on the wire -> D05
''',
    "session/telemetry.py": '''\
import threading
import time


class Telemetry:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        # lint: guarded_by(self._lock: bumped from worker threads)
        self.count = 0

    def bump(self):
        self.count += 1                 # lock not held -> L01

    def flush(self):
        with self._lock:
            time.sleep(0.1)             # blocking under a lock -> L03
            with self._cond:
                self._cond.notify_all()

    def drain(self):
        with self._cond:
            with self._lock:            # reverse nesting -> L02
                return self.count
''',
    "serve/jobs.py": '''\
def snapshot(job):
    return {"event": "state", "id": job.id, "state": job.state}
''',
    "serve/client.py": '''\
def follow(events):
    for event in events:
        print(event["id"], event["state"])
''',
    "serve/protocol.py": '''\
def job_request(specs):
    payload = {}
    payload["specs"] = [s.name for s in specs]
    return payload


def decode_job(payload):
    return payload["specs"]
''',
    "analog/solver.py": '''\
class AnalogSolver:
    def crossing_bound(self, level, slope):
        if slope == 0.0:
            return float("inf")
        return level / slope + 1e-12    # edited; vector twin was not
''',
    "scenarios/vector_solver.py": '''\
class VectorizedSolver:
    def lane_crossing_bound(self, lane, level, slope):
        if slope == 0.0:
            return float("inf")
        return level / slope
''',
    "digital/clock.py": '''\
class Clock:
    def suspend(self):
        self._jitter()
        self.gate_sig.set(False)        # dispatching write -> G02

    def _jitter(self):
        return self.sim.rng.random()    # RNG on gating path -> G01
''',
}


def build_tree(root: Path) -> LintConfig:
    for relpath, source in BROKEN_TREE.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return LintConfig(
        root=root,
        scan_paths=tuple(BROKEN_TREE),
        parity_pairs=(
            ("crossing-bound",
             ("analog/solver.py", "AnalogSolver.crossing_bound"),
             ("scenarios/vector_solver.py",
              "VectorizedSolver.lane_crossing_bound")),
        ),
        gating_roots=(("digital/clock.py", "Clock.suspend"),),
        # the miniature serve layer emits via module-level dict
        # literals only — no Job.snapshot method here
        wire_emit_functions=(),
        locks_dir=root / "locks",
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="lint_demo_") as tmp:
        config = build_tree(Path(tmp))
        # lock the current state, then make the post-lock edits the
        # lockfiles exist to catch: a one-sided parity change (P01), a
        # RunResult layout change without a FORMAT_VERSION bump (K03),
        # and a wire field the server emits but no reader consumes (W01)
        update_locks(config)
        solver = Path(tmp) / "analog/solver.py"
        solver.write_text(solver.read_text(encoding="utf-8").replace(
            "+ 1e-12", "+ 2e-12"), encoding="utf-8")
        system = Path(tmp) / "system.py"
        system.write_text(system.read_text(encoding="utf-8").replace(
            "    cycles: List[int] = None",
            "    cycles: List[int] = None\n    note: str = \"\""),
            encoding="utf-8")
        jobs = Path(tmp) / "serve/jobs.py"
        jobs.write_text(jobs.read_text(encoding="utf-8").replace(
            '"state": job.state}', '"state": job.state, "eta": 0}'),
            encoding="utf-8")

        report = run_lint(config)

        print("repro.lint demo — one miniature tree, every rule family")
        print(f"  modules scanned : {report.modules_scanned}")
        print(f"  findings        : {len(report.findings)}")
        print()
        for family in FAMILIES:
            members = [f for f in report.findings
                       if RULES[f.rule].family == family]
            if not members:
                continue
            print(f"--- {family} ({len(members)}) ---")
            for finding in members:
                print(finding.render())
            print()
        fired = sorted({f.rule for f in report.findings})
        print(f"rules fired: {', '.join(fired)}")
        print("explain any of them with: "
              "python -m repro.lint --explain <RULE>")


if __name__ == "__main__":
    main()
