#!/usr/bin/env python
"""Observability smoke: receipts, traces, and provable inertness.

Runs the Fig. 7a quick grid (5 controllers x 4 coils = 20 scenarios)
twice — once with the ``repro.obs`` layer disabled (``REPRO_OBS=off``
semantics) and once enabled — against separate cache directories, and
checks the ISSUE-10 inertness contract:

- the two passes are **bit-identical**: same series, same cache keys
  (instrumentation must never leak into results or content hashes);
- the enabled pass yields a **receipt** whose phase wall times sum to
  the sweep total, plus a Chrome-trace timeline with worker-side spans
  re-parented under the coordinator's sweep span.

Doubles as the CI obs-smoke step: ``--receipt-out``/``--trace-out``
write the artifacts CI uploads, and ``--bench-json`` records the
instrumentation overhead (enabled vs disabled wall clock) as
``BENCH_obs.json``.  The overhead number is informational here — the
<= 2% gate lives in ``benchmarks/test_bench_obs.py`` under
``REPRO_REQUIRE_SPEEDUP=1``, where timing assertions belong.

Run:  python examples/obs_smoke.py [--workers N] [--receipt-out F]
                                   [--trace-out F] [--bench-json F]
"""

import argparse
import json
import sys
import tempfile
import time

from repro import Session, obs
from repro.experiments import run_fig7a


def run_pass(enabled: bool, cache_dir: str, workers):
    obs.set_enabled(enabled)
    try:
        session = Session(workers=workers, cache="readwrite",
                          cache_dir=cache_dir)
        t0 = time.perf_counter()
        result = run_fig7a(quick=True, session=session)
        elapsed = time.perf_counter() - t0
    finally:
        obs.set_enabled(None)
    label = "obs on " if enabled else "obs off"
    print(f"{label} pass: {elapsed:6.2f} s")
    return result, session, elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the grid across N worker processes")
    parser.add_argument("--receipt-out", default=None,
                        help="write the enabled pass's sweep receipt here")
    parser.add_argument("--trace-out", default=None,
                        help="write Chrome trace-event JSON here "
                             "(load in chrome://tracing or Perfetto)")
    parser.add_argument("--bench-json", default=None,
                        help="write the overhead summary here")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro_obs_") as tmp:
        off, off_session, off_s = run_pass(False, f"{tmp}/off", args.workers)
        on, on_session, on_s = run_pass(True, f"{tmp}/on", args.workers)
        off_keys = sorted(off_session.cache.keys())
        on_keys = sorted(on_session.cache.keys())
        receipt = on_session.last_receipt()
        events = on_session.last_trace_events()
        spans = on_session.last_trace_spans()

    identical = on.series == off.series and on_keys == off_keys
    phase_sum = sum(receipt["phases"].values())
    phases_ok = abs(phase_sum - receipt["wall_s"]) <= 0.10 * receipt["wall_s"]
    shard_spans = [s for s in spans if s.name == "shard.run"]
    root = next(s for s in spans if s.name == "session.sweep")
    reparented = all(s.parent_id == root.span_id for s in shard_spans)
    overhead = (on_s - off_s) / off_s if off_s else 0.0

    print(f"bit-identical on/off: {identical} "
          f"({len(on_keys)} cache keys)")
    print(f"receipt: {receipt['n_lanes']} lanes, "
          f"hit ratio {receipt['cache']['hit_ratio']:.0%}, "
          f"phases sum {phase_sum:.2f} s of {receipt['wall_s']:.2f} s wall")
    print(f"timeline: {len(spans)} spans, {len(shard_spans)} worker shards "
          f"re-parented under the sweep root: {reparented}")
    print(f"instrumentation overhead: {overhead:+.1%} wall")

    if args.receipt_out:
        with open(args.receipt_out, "w", encoding="utf-8") as fh:
            json.dump(receipt, fh, indent=1, sort_keys=True)
        print(f"wrote {args.receipt_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(events, fh)
        print(f"wrote {args.trace_out}")
    if args.bench_json:
        summary = {
            "lanes": receipt["n_lanes"],
            "obs_off_s": round(off_s, 3),
            "obs_on_s": round(on_s, 3),
            "overhead_frac": round(overhead, 4),
            "bit_identical": identical,
            "phases_partition_wall": phases_ok,
            "spans": len(spans),
            "worker_shards": len(shard_spans),
        }
        with open(args.bench_json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
        print(f"wrote {args.bench_json}")

    ok = identical and phases_ok and reparented
    if args.workers:
        ok = ok and bool(shard_spans)
    if not ok:
        print("FAIL: observability inertness contract violated",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
