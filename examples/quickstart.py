#!/usr/bin/env python
"""Quickstart: simulate an asynchronously-controlled 4-phase buck.

Builds the paper's system with default parameters (5 V -> 3.3 V, 6 Ohm
load with a high-load step) through the :class:`repro.Session` front
door, runs 10 us of co-simulation, and prints the headline measurements
plus an ASCII view of the output voltage.

Run:  python examples/quickstart.py
"""

from repro import ScenarioSpec, Session
from repro.metrics import ascii_waveform
from repro.sim import US, fmt_si


def main() -> None:
    # scalar backend + keep=True: one live BuckSystem handle for the
    # waveform view (swap to the default vector backend for sweeps)
    session = Session(backend="scalar")
    spec = ScenarioSpec("quickstart", overrides={"controller": "async",
                                                 "sim_time": 10 * US})
    [point] = session.sweep([spec], trace=True, keep=True)
    result, system = point.result, point.handle

    print("asynchronous 4-phase buck, 10 us run")
    print(f"  final output voltage : {result.v_final:.3f} V")
    print(f"  voltage ripple       : {fmt_si(result.ripple, 'V')}")
    print(f"  peak coil current    : {fmt_si(result.peak_coil_current, 'A')}")
    print(f"  coil conduction loss : {fmt_si(result.coil_loss_w, 'W')}")
    print(f"  efficiency           : {result.efficiency * 100:.1f} %")
    print(f"  charge cycles/phase  : {result.cycles}")
    print(f"  OV episodes          : {result.ov_events}")
    print()
    print(ascii_waveform(system.solver.v_probe, 0.0, 10 * US,
                         width=90, title="V_load (V) over 10 us"))


if __name__ == "__main__":
    main()
