#!/usr/bin/env python
"""Reaction-latency measurement (the paper's Table I), interactively.

Measures, in simulation, how long each controller takes from a sensor
condition edge (HL, UV, OV, OC, ZC) to the corresponding power-transistor
drive change, sweeping the stimulus phase against the synchronous clock
to capture the worst case.

Run:  python examples/reaction_latency.py
"""

from repro import session_from_env
from repro.experiments import PAPER_TABLE1, run_table1
from repro.metrics.reaction import CONDITIONS


def main() -> None:
    print("measuring reaction latencies (stimulus swept against clock)...")
    # REPRO_SWEEP_WORKERS shards the (row, condition, offset) grid
    result = run_table1(n_offsets=8, session=session_from_env())
    print()
    print(result.format())

    print("\npaper vs measured (ASYNC row, ns):")
    for c in CONDITIONS:
        paper = PAPER_TABLE1["ASYNC"][c]
        ours = result.rows["ASYNC"][c]
        print(f"  {c}: paper {paper:5.2f}  measured {ours:5.2f}")

    imp = result.improvement_over_333
    print("\nimprovement over 333 MHz (paper: HL 4x, UV 7x, OV 6x, "
          "OC 10x, ZC 24x):")
    print("  " + "  ".join(f"{c} {imp[c]:.0f}x" for c in CONDITIONS))
    print("\nto match the async response a synchronous controller would "
          "need a ~3 GHz clock — the paper's headline argument.")


if __name__ == "__main__":
    main()
