#!/usr/bin/env python
"""Sweep-as-a-service smoke: a real server process, driven over HTTP.

Launches ``python -m repro.serve`` on an ephemeral port (API-key
protected), builds the Fig. 7a quick-grid job payload (5 controllers x
4 coils = 20 lanes) and submits it twice through the client CLI
(``python -m repro.serve.client submit --follow``):

- the **cold** job simulates every lane, streaming one SSE lane event
  per scenario as it lands;
- the **hot** job must be served entirely from the server's shared
  result cache — every lane ``cached: true``, every number
  bit-identical to the cold pass, zero recompute.

The obs smoke rides along: ``GET /v1/metrics`` must answer with a
parseable Prometheus text exposition carrying >= 10 named series, and
the hot job's ``done`` event must embed its sweep receipt.

Doubles as the CI serve-smoke step: ``--require-hot`` exits non-zero
unless the hot job is 100% cache-hot and bit-identical, and
``--bench-json`` writes the timing/counter summary the CI job uploads
as ``BENCH_serve.json``.

Run:  python examples/serve_sweep.py [--cache-dir D] [--workers N]
                                     [--bench-json F] [--require-hot]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.analog.coil import make_coil
from repro.obs import parse_prometheus_text
from repro.experiments.fig7 import controller_axis, default_l_values
from repro.scenarios import Sweep
from repro.serve import job_request
from repro.sim.units import NS, UH, US

#: the smoke server runs key-protected so the auth path is exercised too
API_KEY = "ci-serve-smoke"


def fig7a_quick_job() -> dict:
    """The same grid ``run_fig7a(quick=True)`` sweeps, as a job payload."""
    sweep = Sweep(base={"n_phases": 4, "r_load": 6.0, "sim_time": 10 * US,
                        "dt": 1 * NS, "seed": 0}, name="fig7a")
    coils = [(f"{l / UH:g}uH", {"coil": make_coil(l)})
             for l in default_l_values(quick=True)]
    sweep.grid(ctrl=controller_axis(), pt=coils)
    return job_request(sweep=sweep, track_energy=False)


def _env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p)
    return env


def start_server(cache_dir: str, workers):
    cmd = [sys.executable, "-m", "repro.serve", "--port", "0",
           "--cache-dir", cache_dir]
    if workers:
        cmd += ["--workers", str(workers)]
    env = _env()
    env["REPRO_SERVE_API_KEY"] = API_KEY
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    banner = proc.stdout.readline().strip()
    try:
        url = banner.split()[3]
        assert url.startswith("http://")
    except (IndexError, AssertionError):
        proc.terminate()
        raise RuntimeError(f"unexpected server banner: {banner!r}")
    for _ in range(50):
        if client(url, "health", check=False).returncode == 0:
            return proc, url
        if proc.poll() is not None:
            raise RuntimeError("server exited during startup")
        time.sleep(0.2)
    proc.terminate()
    raise RuntimeError("server never became healthy")


def client(url: str, *args: str, api_key: str = API_KEY,
           check: bool = True) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro.serve.client", "--url", url,
           "--api-key", api_key, *args]
    result = subprocess.run(cmd, env=_env(), capture_output=True, text=True)
    if check and result.returncode != 0:
        raise RuntimeError(f"client {args[0]} failed: {result.stderr}")
    return result


def scrape_metrics(url: str) -> dict:
    """GET /v1/metrics and parse the Prometheus exposition."""
    request = urllib.request.Request(
        url + "/v1/metrics",
        headers={"Authorization": f"Bearer {API_KEY}"})
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return parse_prometheus_text(response.read().decode("utf-8"))


def submit(url: str, job_path: str, label: str):
    """Submit + follow through the CLI; returns ({index: lane}, seconds)."""
    t0 = time.perf_counter()
    result = client(url, "submit", "--job-json", job_path, "--follow")
    elapsed = time.perf_counter() - t0
    events = [json.loads(line) for line in result.stdout.splitlines()]
    if not events or events[-1].get("event") != "done":
        raise RuntimeError(f"{label} job did not finish: {events[-1:]}")
    lanes = {e["index"]: e for e in events if e.get("event") == "lane"}
    cached = sum(1 for e in lanes.values() if e["cached"])
    print(f"{label} job: {elapsed:6.2f} s  {len(lanes)} lanes, "
          f"{cached} from cache")
    return lanes, elapsed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None,
                        help="server cache root (default: a temp dir)")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation worker processes on the server")
    parser.add_argument("--bench-json", default=None,
                        help="write the timing/counter summary here")
    parser.add_argument("--require-hot", action="store_true",
                        help="fail unless the second job is 100%% "
                             "cache-hot and bit-identical")
    args = parser.parse_args()

    tmp = None
    if args.cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_serve_")
        args.cache_dir = tmp.name

    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        json.dump(fig7a_quick_job(), fh)
        job_path = fh.name

    proc, url = start_server(args.cache_dir, args.workers)
    print(f"server up at {url}")
    try:
        # the key gates everything but liveness
        assert client(url, "health", api_key="", check=False).returncode == 0
        assert client(url, "stats", api_key="", check=False).returncode == 1

        cold, cold_s = submit(url, job_path, "cold")
        hot, hot_s = submit(url, job_path, "hot ")

        stats = json.loads(client(url, "stats").stdout)
        identical = (sorted(cold) == sorted(hot) and all(
            cold[i]["result"] == hot[i]["result"] for i in cold))
        hot_cached = sum(1 for e in hot.values() if e["cached"])
        print(f"hot job: {hot_cached}/{len(hot)} lanes cache-hot; "
              f"bit-identical: {identical}; "
              f"server counters: {stats['hits']} hits / "
              f"{stats['misses']} misses")

        # obs smoke: the metrics exposition must parse with a healthy
        # series catalogue, and stats must carry the SSE drop totals
        samples = scrape_metrics(url)
        metric_names = {series.split("{")[0] for series in samples}
        assert len(metric_names) >= 10, sorted(metric_names)
        assert samples["repro_obs_enabled"] == 1
        print(f"/v1/metrics: {len(metric_names)} named series, "
              f"{stats['jobs']['dropped_events']} SSE events dropped")

        if args.bench_json:
            summary = {
                "lanes": len(cold), "cold_s": round(cold_s, 3),
                "hot_s": round(hot_s, 3),
                "speedup": round(cold_s / hot_s, 2) if hot_s else None,
                "hot_cached_lanes": hot_cached,
                "bit_identical": identical, "server_stats": stats,
                "metric_series": len(samples),
            }
            with open(args.bench_json, "w", encoding="utf-8") as out:
                json.dump(summary, out, indent=2, sort_keys=True)
            print(f"wrote {args.bench_json}")

        if args.require_hot and (hot_cached != len(hot) or not identical):
            print("FAIL: hot job must be fully cache-hot and identical",
                  file=sys.stderr)
            return 1
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=30)
        os.unlink(job_path)
        if tmp is not None:
            tmp.cleanup()


if __name__ == "__main__":
    sys.exit(main())
