#!/usr/bin/env python
"""Batched scenario sweeps: grids and random tolerance studies.

Two sweeps through the :class:`repro.Session` front door:

1. a controller-vs-coil *grid* (a miniature Fig. 7a) — every combination
   runs as one vectorized batch instead of sequential simulations;
2. a *random tolerance study* — coil inductance and load resistance drawn
   per lane from seeded distributions, answering "how bad can the peak
   current get across component spread?".

``--workers N`` shards the batches across worker processes and
``--cache`` turns on the content-addressed result cache (re-running this
script then serves every lane from ``.repro_cache/``, bit-identical) —
both are Session policies, not per-sweep knobs.

Run:  python examples/sweep.py [--workers N] [--cache]
"""

import argparse

from repro import Session
from repro.scenarios import Sweep, log_uniform, uniform
from repro.sim import NS, US, fmt_si


def grid_demo(session: Session) -> None:
    sweep = (Sweep(base={"n_phases": 4, "r_load": 6.0, "sim_time": 10 * US,
                         "dt": 1 * NS},
                   name="mini-fig7a")
             .grid(ctrl=[("ASYNC", {"controller": "async"}),
                         ("333MHz", {"controller": "sync",
                                     "fsm_frequency": 333e6})],
                   l_uh=[1.0, 4.7, 10.0]))
    points = session.sweep(sweep, track_energy=False)

    print("grid sweep: peak coil current (controller x inductance)")
    for point in points:
        peak = fmt_si(point.result.peak_coil_current, "A")
        print(f"  {point.spec.name:<40} peak = {peak}")
    print()


def random_demo(session: Session) -> None:
    sweep = (Sweep(base={"controller": "async", "n_phases": 4,
                         "sim_time": 10 * US, "dt": 1 * NS},
                   seed=2024, name="tolerance")
             .random(8,
                     l_uh=log_uniform(1.0, 10.0),
                     r_load=uniform(3.0, 15.0)))
    points = session.sweep(sweep, track_energy=False)

    print("random tolerance study (8 seeded draws, async controller)")
    worst = max(points, key=lambda p: p.result.peak_coil_current)
    for point in points:
        o = point.spec.overrides
        marker = "  <-- worst" if point is worst else ""
        print(f"  L={o['l_uh']:5.2f} uH  R={o['r_load']:5.2f} Ohm  "
              f"peak={point.result.peak_coil_current * 1e3:6.1f} mA  "
              f"v_final={point.result.v_final:.3f} V{marker}")
    print()
    print("re-running the same sweep spec reproduces these numbers exactly "
          "(per-lane seeds are derived from the sweep seed).")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="shard sweep batches across N worker processes")
    parser.add_argument("--cache", action="store_true",
                        help="serve repeats from the .repro_cache/ result "
                             "cache")
    args = parser.parse_args()
    session = Session(workers=args.workers,
                      cache="readwrite" if args.cache else "off")
    grid_demo(session)
    random_demo(session)
    if args.cache:
        stats = session.cache_stats()
        print(f"cache: {stats['hits']} hits / {stats['misses']} misses "
              f"under {stats['root']}")


if __name__ == "__main__":
    main()
