#!/usr/bin/env python
"""Batched scenario sweeps: grids and random tolerance studies.

Two sweeps through the :class:`repro.Session` front door:

1. a controller-vs-coil *grid* (a miniature Fig. 7a) — every combination
   runs as one vectorized batch instead of sequential simulations;
2. a *random tolerance study* — coil inductance and load resistance drawn
   per lane from seeded distributions, answering "how bad can the peak
   current get across component spread?".

``--workers N`` shards the batches across worker processes and
``--cache`` turns on the content-addressed result cache (re-running this
script then serves every lane from the cache, bit-identical) — both are
Session policies, not per-sweep knobs.  ``--trace`` attaches each lane's
waveform :class:`~repro.trace.TraceSet` to its result; traced lanes
shard and cache exactly like untraced ones.  ``--require-hot`` exits
non-zero unless *every* lane was served from cache (the CI traced-smoke
step runs the script twice and requires the second pass to be hot).

``--progress`` streams one line per lane as it lands (the
``Session.sweep(on_result=...)`` hook — the same mechanism behind the
sweep server's live SSE events): cache hits land first, fresh lanes in
completion order when sharded.

Run:  python examples/sweep.py [--workers N] [--cache] [--cache-dir D]
                               [--trace] [--require-hot] [--progress]
"""

import argparse
import sys

from repro import Session
from repro.scenarios import Sweep, log_uniform, uniform
from repro.sim import NS, US, fmt_si


def progress_hook(total: int):
    """A ``Session.sweep(on_result=...)`` hook printing one line per lane
    as it lands (completion order under ``--workers N``, spec order
    inline); cache hits land first and are marked."""
    landed = [0]

    def hook(index, point):
        landed[0] += 1
        source = "cache" if point.cached else "fresh"
        print(f"  [{landed[0]:>2}/{total}] lane {index:<2} {source}  "
              f"{point.spec.name}", flush=True)

    return hook


def grid_demo(session: Session, trace: bool, progress: bool) -> None:
    sweep = (Sweep(base={"n_phases": 4, "r_load": 6.0, "sim_time": 10 * US,
                         "dt": 1 * NS},
                   name="mini-fig7a")
             .grid(ctrl=[("ASYNC", {"controller": "async"}),
                         ("333MHz", {"controller": "sync",
                                     "fsm_frequency": 333e6})],
                   l_uh=[1.0, 4.7, 10.0]))
    if progress:
        print(f"grid sweep: {len(sweep)} lanes")
    points = session.sweep(sweep, track_energy=False, trace=trace,
                           on_result=progress_hook(len(sweep))
                           if progress else None)

    print("grid sweep: peak coil current (controller x inductance)")
    for point in points:
        peak = fmt_si(point.result.peak_coil_current, "A")
        extra = ""
        if trace:
            ts = point.result.trace
            extra = (f"  trace: {len(ts.channels)} ch x "
                     f"{ts.n_samples('v_load')} rows")
        print(f"  {point.spec.name:<40} peak = {peak}{extra}")
    print()


def random_demo(session: Session, trace: bool, progress: bool) -> None:
    sweep = (Sweep(base={"controller": "async", "n_phases": 4,
                         "sim_time": 10 * US, "dt": 1 * NS},
                   seed=2024, name="tolerance")
             .random(8,
                     l_uh=log_uniform(1.0, 10.0),
                     r_load=uniform(3.0, 15.0)))
    if progress:
        print(f"random sweep: {len(sweep)} lanes")
    points = session.sweep(sweep, track_energy=False, trace=trace,
                           on_result=progress_hook(len(sweep))
                           if progress else None)

    print("random tolerance study (8 seeded draws, async controller)")
    worst = max(points, key=lambda p: p.result.peak_coil_current)
    for point in points:
        o = point.spec.overrides
        marker = "  <-- worst" if point is worst else ""
        print(f"  L={o['l_uh']:5.2f} uH  R={o['r_load']:5.2f} Ohm  "
              f"peak={point.result.peak_coil_current * 1e3:6.1f} mA  "
              f"v_final={point.result.v_final:.3f} V{marker}")
    print()
    print("re-running the same sweep spec reproduces these numbers exactly "
          "(per-lane seeds are derived from the sweep seed).")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="shard sweep batches across N worker processes")
    parser.add_argument("--cache", action="store_true",
                        help="serve repeats from the content-addressed "
                             "result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default .repro_cache/)")
    parser.add_argument("--trace", action="store_true",
                        help="attach each lane's waveform TraceSet "
                             "(sharded and cached like scalar results)")
    parser.add_argument("--require-hot", action="store_true",
                        help="fail unless every lane was served from cache "
                             "(implies --cache; for the CI smoke re-run)")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per lane as it lands "
                             "(completion order with --workers N)")
    args = parser.parse_args()
    use_cache = args.cache or args.require_hot
    session = Session(workers=args.workers,
                      cache="readwrite" if use_cache else "off",
                      cache_dir=args.cache_dir)
    grid_demo(session, args.trace, args.progress)
    random_demo(session, args.trace, args.progress)
    if use_cache:
        stats = session.cache_stats()
        print(f"cache: {stats['hits']} hits / {stats['misses']} misses "
              f"under {stats['root']}")
        if args.require_hot and stats["misses"] > 0:
            print(f"FAIL: expected a fully cache-hot run, "
                  f"got {stats['misses']} misses", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
