#!/usr/bin/env python
"""Head-to-head: synchronous vs asynchronous control of the same buck.

Reproduces the paper's Fig. 6 experiment interactively: both controllers
drive an identical 4-phase power stage through startup, normal load, a
high-load step and recovery.  Prints the comparison table, per-controller
waveforms, and exports VCD files viewable in GTKWave.

Run:  python examples/sync_vs_async.py [--vcd]
"""

import sys

from repro import Session
from repro.experiments import run_fig6
from repro.experiments.fig6 import export_vcd, render_waveforms


def main() -> None:
    print("running the Fig. 6 scenario for both controllers...")
    result = run_fig6(keep_systems=True, session=Session(backend="scalar"))
    print()
    print(result.format())
    for run in result.runs:
        print()
        print(render_waveforms(run, width=90))

    sync = result.run("sync")
    async_ = result.run("async")
    better = (1 - async_.ripple_v / sync.ripple_v) * 100
    print(f"\nasync ripple is {better:.0f}% smaller "
          f"({async_.ripple_v:.3f} V vs {sync.ripple_v:.3f} V); the paper "
          f"reports 0.36 V vs 0.43 V on its 90 nm testbed")

    if "--vcd" in sys.argv:
        for run in result.runs:
            path = f"fig6_{run.label.replace('@', '_')}.vcd"
            export_vcd(run, path)
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
