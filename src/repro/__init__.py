"""Reproduction of Sokolov et al., "Benefits of Asynchronous Control for
Analog Electronics: Multiphase Buck Case Study" (DATE 2017).

Layers (see DESIGN.md):

- :mod:`repro.sim` — discrete-event kernel (signals, processes, VCD);
- :mod:`repro.analog` — buck power stage ODE, coils, sensors, gate drivers;
- :mod:`repro.digital` — gates, C-elements, mutex, synchronizers, clocks;
- :mod:`repro.a2a` — the WAIT-family analog-to-asynchronous interfaces;
- :mod:`repro.stg` — STGs, verification, synthesis (the A4A flow backend);
- :mod:`repro.control` — the synchronous and asynchronous controllers;
- :mod:`repro.trace` — columnar :class:`TraceSet` waveform subsystem
  (windowing, compaction, npz/VCD export, cacheable traced results);
- :mod:`repro.metrics` — waveform and reaction-time measurements;
- :mod:`repro.experiments` — Table I / Fig. 6 / Fig. 7 reproduction;
- :mod:`repro.system` — :class:`BuckSystem`, the assembled co-simulation;
- :mod:`repro.session` — :class:`Session`, the unified front door
  (backend selection, worker sharding, content-addressed result cache).
"""

from importlib import import_module

from .system import BuckSystem, RunResult, SystemConfig

__version__ = "1.1.0"

#: lazily re-exported names (PEP 562): keeps ``import repro`` free of the
#: NumPy-backed scenario/session machinery until it is actually used
_LAZY_EXPORTS = {
    "Session": ".session",
    "ResultCache": ".session",
    "default_session": ".session",
    "set_default_session": ".session",
    "session_from_env": ".session",
    "ScenarioSpec": ".scenarios",
    "Sweep": ".scenarios",
    "run_sweep": ".scenarios",
    "TraceSet": ".trace",
    "ChannelView": ".trace",
}

__all__ = ["BuckSystem", "SystemConfig", "RunResult", "__version__",
           *sorted(_LAZY_EXPORTS)]


def __getattr__(name):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module, __name__), name)
