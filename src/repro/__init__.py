"""Reproduction of Sokolov et al., "Benefits of Asynchronous Control for
Analog Electronics: Multiphase Buck Case Study" (DATE 2017).

Layers (see DESIGN.md):

- :mod:`repro.sim` — discrete-event kernel (signals, processes, VCD);
- :mod:`repro.analog` — buck power stage ODE, coils, sensors, gate drivers;
- :mod:`repro.digital` — gates, C-elements, mutex, synchronizers, clocks;
- :mod:`repro.a2a` — the WAIT-family analog-to-asynchronous interfaces;
- :mod:`repro.stg` — STGs, verification, synthesis (the A4A flow backend);
- :mod:`repro.control` — the synchronous and asynchronous controllers;
- :mod:`repro.metrics` — waveform and reaction-time measurements;
- :mod:`repro.experiments` — Table I / Fig. 6 / Fig. 7 reproduction;
- :mod:`repro.system` — :class:`BuckSystem`, the assembled co-simulation.
"""

from .system import BuckSystem, RunResult, SystemConfig

__version__ = "1.0.0"

__all__ = ["BuckSystem", "SystemConfig", "RunResult", "__version__"]
