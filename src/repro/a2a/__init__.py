"""A2A (analog-to-asynchronous) interface element library.

The paper's Sec. III component library: elements that sanitise
non-persistent comparator outputs into clean speed-independent handshakes,
fully containing metastability.

=========  ==============================================================
element    behaviour
=========  ==============================================================
WAIT       latch the input's high level until the handshake releases
WAIT0      symmetric: latch the low level
WAIT2      wait high, then low, on alternating handshakes (2-phase)
RWAIT      WAIT with persistent cancellation of the pending request
RWAIT0     cancellable WAIT0
WAIT01     wait for a rising edge (level-high is not enough)
WAIT10     wait for a falling edge
WAITX      arbitrate two inputs -> one-hot grant (mutex inside)
WAITX2     WAITX that releases only after the winning input goes low
=========  ==============================================================
"""

from .base import (
    DEFAULT_FORWARD_DELAY,
    DEFAULT_LATCH_WINDOW,
    DEFAULT_TAU,
    A2AElement,
)
from .merge import OpportunisticMerge
from .wait import RWait, RWait0, Wait, Wait0, Wait01, Wait10, Wait2
from .waitx import WaitX, WaitX2

__all__ = [
    "A2AElement",
    "Wait", "Wait0", "Wait2", "RWait", "RWait0", "Wait01", "Wait10",
    "WaitX", "WaitX2",
    "OpportunisticMerge",
    "DEFAULT_LATCH_WINDOW", "DEFAULT_FORWARD_DELAY", "DEFAULT_TAU",
]
