"""Common machinery for analog-to-asynchronous (A2A) interface elements.

Every A2A element bridges a **non-persistent** analog comparator output to
a clean, speed-independent handshake.  The shared mechanics live here:

- a request/acknowledge (return-to-zero) controller-side interface;
- a *latch window*: the element needs the input condition to hold for
  ``t_latch`` to capture it.  A marginal pulse (shorter than the window)
  makes the internal latch metastable; the element **contains** this —
  the latch resolves to a random but *clean* outcome after an
  exponentially-distributed resolution time, and the handshake output
  never glitches.  ``metastable_events`` counts these episodes.

This is the behavioural contract of the WAIT-family elements of [16]
(Sokolov et al., ASYNC 2015) that the paper's Sec. III summarises.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Event, Simulator
from ..sim.signal import Signal
from ..sim.units import NS

#: default input-capture window
DEFAULT_LATCH_WINDOW = 0.2 * NS
#: default request-to-acknowledge forward latency once the condition holds
DEFAULT_FORWARD_DELAY = 0.15 * NS
#: default metastability resolution time constant
DEFAULT_TAU = 0.1 * NS


class A2AElement:
    """Base class: req/ack handshake + contained-metastability capture."""

    def __init__(self, sim: Simulator, name: str,
                 t_latch: float = DEFAULT_LATCH_WINDOW,
                 delay: float = DEFAULT_FORWARD_DELAY,
                 tau: float = DEFAULT_TAU, trace: bool = True):
        if t_latch < 0 or delay < 0 or tau < 0:
            raise ValueError("timing parameters cannot be negative")
        self.sim = sim
        self.name = name
        self.t_latch = t_latch
        self.delay = delay
        self.tau = tau
        self.req = Signal(sim, f"{name}.req", trace=trace)
        self.ack = Signal(sim, f"{name}.ack", trace=trace)
        self.metastable_events = 0
        self._armed = False
        self._capture: Optional[Event] = None
        self.req.subscribe(self._on_req)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def _condition(self) -> bool:
        """The analog condition being awaited (subclass-specific)."""
        raise NotImplementedError

    def _on_armed(self) -> None:
        """Called when the element becomes armed (req rose)."""
        if self._condition():
            self._begin_capture()

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def _on_req(self, _sig: Signal, value: bool) -> None:
        if value:
            self._armed = True
            self._on_armed()
        else:
            self._armed = False
            self._cancel_capture()
            if self.ack.value:
                self.sim.schedule(self.delay, lambda: self.ack._apply(False))

    def _cancel_capture(self) -> None:
        if self._capture is not None:
            self._capture.cancel()
            self._capture = None

    # ------------------------------------------------------------------
    # Capture with contained metastability
    # ------------------------------------------------------------------
    def _begin_capture(self) -> None:
        """Start the latch window; fires the ack if the condition survives."""
        if not self._armed or self._capture is not None or self.ack.value:
            return
        self._capture = self.sim.schedule(self.t_latch, self._end_capture)

    def _end_capture(self) -> None:
        self._capture = None
        if not self._armed:
            return
        if self._condition():
            self._fire(self.delay)
            return
        # Marginal pulse: the latch went metastable.  Contained: resolve
        # randomly after an exponential tail, output stays clean.
        self.metastable_events += 1
        if self.sim.rng.random() < 0.5:
            resolution = (self.sim.rng.expovariate(1.0 / self.tau)
                          if self.tau > 0 else 0.0)
            self._fire(self.delay + resolution)
        # else: the pulse was missed; keep waiting for the next one.

    def _fire(self, delay: float) -> None:
        self.sim.schedule(delay, self._commit)

    def _commit(self) -> None:
        if self._armed and not self.ack.value:
            self.ack._apply(True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self._armed else "idle"
        return f"{type(self).__name__}({self.name!r}, {state})"
