"""Opportunistic merge element (Mokhov et al., ASYNC 2015 — ref [17]).

The multiphase controller's MERGE handles OR-causality between the two
activation scenarios (ring token vs. HL condition, Sec. IV): the stage
must activate when *either* request arrives, and if the second request
shows up while the first is being served, it is *merged* into the same
service — one output handshake acknowledges both.

Interface (RTZ):

- ``r1``, ``r2`` — request inputs;
- ``ro`` / ``ai`` — the merged output channel (ro request out, ai ack in);
- ``a1``, ``a2`` — per-requester acknowledgements, raised when the
  service that covered that requester completes.
"""

from __future__ import annotations

from typing import Optional, Set

from ..sim.core import Simulator
from ..sim.signal import FALL, RISE, Signal
from ..sim.units import NS


class OpportunisticMerge:
    """Two-input opportunistic merge with RTZ handshakes."""

    def __init__(self, sim: Simulator, name: str, r1: Signal, r2: Signal,
                 ai: Signal, delay: float = 0.25 * NS, trace: bool = True):
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.sim = sim
        self.name = name
        self.r1 = r1
        self.r2 = r2
        self.ai = ai
        self.delay = delay
        self.ro = Signal(sim, f"{name}.ro", trace=trace)
        self.a1 = Signal(sim, f"{name}.a1", trace=trace)
        self.a2 = Signal(sim, f"{name}.a2", trace=trace)
        #: requesters covered by the service currently in flight
        self._covered: Set[int] = set()
        self._serving = False
        #: number of requests absorbed into an already-running service
        self.merged_count = 0
        r1.subscribe(lambda s, v: self._on_request(1, v))
        r2.subscribe(lambda s, v: self._on_request(2, v))
        ai.subscribe(self._on_ack_rise, RISE)
        ai.subscribe(self._on_ack_fall, FALL)

    # ------------------------------------------------------------------
    def _on_request(self, side: int, value: bool) -> None:
        if not value:
            # request released after its ack: drop the per-side ack
            ack = self.a1 if side == 1 else self.a2
            if ack.value:
                self.sim.schedule(self.delay, lambda: ack._apply(False))
            return
        if self._serving:
            if not self.ai.value:
                # opportunistic window: service requested but not yet
                # acknowledged — absorb this requester into it
                self._covered.add(side)
                self.merged_count += 1
            # else: too late, waits for the next service round
            return
        self._covered = {side}
        self._serving = True
        self.sim.schedule(self.delay, lambda: self.ro._apply(True))

    def _on_ack_rise(self, _sig: Signal, _value: bool) -> None:
        # service complete: acknowledge everyone covered, release ro
        for side in sorted(self._covered):
            ack = self.a1 if side == 1 else self.a2
            self.sim.schedule(self.delay, lambda a=ack: a._apply(True))
        self.sim.schedule(self.delay, lambda: self.ro._apply(False))

    def _on_ack_fall(self, _sig: Signal, _value: bool) -> None:
        self._serving = False
        self._covered = set()
        # a requester that missed the window retries now
        pending = []
        if self.r1.value and not self.a1.value:
            pending.append(1)
        if self.r2.value and not self.a2.value:
            pending.append(2)
        if pending:
            self._covered = set(pending)
            self._serving = True
            self.sim.schedule(self.delay, lambda: self.ro._apply(True))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "serving" if self._serving else "idle"
        return f"OpportunisticMerge({self.name!r}, {state})"
