"""WAIT-family A2A elements: WAIT, WAIT0, WAIT01, WAIT10, RWAIT, RWAIT0, WAIT2.

Protocol note.  The original elements expose 2-phase (transition-signalling)
handshakes for WAIT2/WAITX2 and 4-phase for the rest.  This library models
*all* elements with 4-phase (return-to-zero) req/ack interfaces; a 2-phase
element is rendered as alternating RTZ handshakes with internal phase state
(first handshake awaits the high level, the next the low level).  The
observable event ordering — which is what the controller logic depends on —
is identical, and one uniform protocol keeps the controller processes and
verification models simple (documented substitution, DESIGN.md Sec. 5).
"""

from __future__ import annotations

from ..sim.core import Simulator
from ..sim.signal import FALL, RISE, Signal
from .base import (
    DEFAULT_FORWARD_DELAY,
    DEFAULT_LATCH_WINDOW,
    DEFAULT_TAU,
    A2AElement,
)


class Wait(A2AElement):
    """WAIT: latch a non-persistent input's *high level*.

    Arm with ``req``; once the input is (or becomes) high for the latch
    window, ``ack`` rises and stays latched until ``req`` is released —
    even if the input glitches low again meanwhile.
    """

    def __init__(self, sim: Simulator, name: str, inp: Signal, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.inp = inp
        inp.subscribe(self._on_input_edge, RISE)

    def _condition(self) -> bool:
        return self.inp.value

    def _on_input_edge(self, _sig: Signal, _value: bool) -> None:
        if self._armed and not self.ack.value:
            self._begin_capture()


class Wait0(A2AElement):
    """WAIT0: the symmetric element — latches the input's *low level*."""

    def __init__(self, sim: Simulator, name: str, inp: Signal, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.inp = inp
        inp.subscribe(self._on_input_edge, FALL)

    def _condition(self) -> bool:
        return not self.inp.value

    def _on_input_edge(self, _sig: Signal, _value: bool) -> None:
        if self._armed and not self.ack.value:
            self._begin_capture()


class Wait01(A2AElement):
    """WAIT01: wait for a rising *edge* (not merely a high level).

    A signal that is already high when armed does **not** satisfy the
    element; it must first go low and then rise (paper Sec. III: "a signal
    can be initially low, and to generate a falling edge event it must
    first go high" — the dual applies here).
    """

    def __init__(self, sim: Simulator, name: str, inp: Signal, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.inp = inp
        self._edge_seen = False
        inp.subscribe(self._on_input_edge, RISE)

    def _condition(self) -> bool:
        return self._edge_seen and self.inp.value

    def _on_armed(self) -> None:
        self._edge_seen = False  # only edges after arming count

    def _on_input_edge(self, _sig: Signal, _value: bool) -> None:
        if self._armed and not self.ack.value:
            self._edge_seen = True
            self._begin_capture()


class Wait10(A2AElement):
    """WAIT10: wait for a falling *edge* of the input."""

    def __init__(self, sim: Simulator, name: str, inp: Signal, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.inp = inp
        self._edge_seen = False
        inp.subscribe(self._on_input_edge, FALL)

    def _condition(self) -> bool:
        return self._edge_seen and not self.inp.value

    def _on_armed(self) -> None:
        self._edge_seen = False

    def _on_input_edge(self, _sig: Signal, _value: bool) -> None:
        if self._armed and not self.ack.value:
            self._edge_seen = True
            self._begin_capture()


class RWait(Wait):
    """RWAIT: a WAIT whose pending request can be *cancelled*.

    Raising ``cancel`` while armed releases the output handshake without
    the condition: ``ack`` rises (so the requesting control loop always
    completes) but ``fired_by_condition`` reads False.  Used for the
    zero-crossing wait, which a timeout may abandon (paper Sec. IV).
    """

    def __init__(self, sim: Simulator, name: str, inp: Signal, trace: bool = True,
                 **kwargs):
        super().__init__(sim, name, inp, trace=trace, **kwargs)
        self.cancel = Signal(sim, f"{name}.cancel", trace=trace)
        self.fired_by_condition = False
        self._cancelled = False
        self.cancel.subscribe(self._on_cancel, RISE)

    def _on_armed(self) -> None:
        self._cancelled = False
        self.fired_by_condition = False
        super()._on_armed()

    def _on_cancel(self, _sig: Signal, _value: bool) -> None:
        if self._armed and not self.ack.value:
            self._cancelled = True
            self._cancel_capture()
            self._fire(self.delay)

    def _commit(self) -> None:
        if self._armed and not self.ack.value:
            self.fired_by_condition = not self._cancelled
            self.ack._apply(True)

    def _end_capture(self) -> None:
        if self._cancelled:
            return
        super()._end_capture()


class RWait0(RWait):
    """RWAIT0: cancellable wait for the *low* level."""

    def __init__(self, sim: Simulator, name: str, inp: Signal, **kwargs):
        super().__init__(sim, name, inp, **kwargs)
        # Re-wire the trigger edge: low level, falling edge.
        inp.subscribe(self._on_fall, FALL)

    def _condition(self) -> bool:
        return not self.inp.value

    def _on_fall(self, _sig: Signal, _value: bool) -> None:
        if self._armed and not self.ack.value:
            self._begin_capture()

    def _on_input_edge(self, _sig: Signal, _value: bool) -> None:
        pass  # rising edges are irrelevant for the low-level wait


class Wait2(A2AElement):
    """WAIT2: WAIT then WAIT0, alternating on successive handshakes.

    Odd-numbered requests complete when the input is high, even-numbered
    when it is low — the RTZ rendering of the original 2-phase element.
    The phase only advances when a handshake completes, so a cancelled
    (withdrawn) request retries the same phase.
    """

    def __init__(self, sim: Simulator, name: str, inp: Signal, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.inp = inp
        self._want_high = True
        inp.subscribe(self._on_input_edge)

    def _condition(self) -> bool:
        return self.inp.value == self._want_high

    def _on_input_edge(self, _sig: Signal, value: bool) -> None:
        if self._armed and not self.ack.value and value == self._want_high:
            self._begin_capture()

    def _commit(self) -> None:
        if self._armed and not self.ack.value:
            self._want_high = not self._want_high  # phase advances on completion
            self.ack._apply(True)

    @property
    def awaiting(self) -> str:
        """Which input level the *next* handshake will wait for."""
        return "high" if self._want_high else "low"
