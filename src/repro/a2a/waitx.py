"""WAITX / WAITX2: arbitrating A2A elements with dual-rail outputs.

WAITX watches *two* non-persistent inputs and tells the controller which
went high first, containing both kinds of metastability (marginal input
pulses and the which-came-first decision) behind a clean dual-rail grant.
The multiphase controller uses a WAITX2 to distinguish the mutually
exclusive — but possibly fast-switching — UV and OV conditions (Sec. IV).
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Event, Simulator
from ..sim.signal import FALL, RISE, Signal
from .base import (
    DEFAULT_FORWARD_DELAY,
    DEFAULT_LATCH_WINDOW,
    DEFAULT_TAU,
)


class WaitX:
    """Arbitrate two non-persistent inputs into one-hot grants.

    Protocol: raise ``req``; when input ``a`` or ``b`` is captured high,
    exactly one of ``grant_a`` / ``grant_b`` rises.  Release ``req`` to
    drop the grant.  Near-simultaneous inputs make the internal mutex
    metastable; the winner is then random, the decision takes an extra
    exponential resolution time, and the grants never glitch.
    """

    def __init__(self, sim: Simulator, name: str, a: Signal, b: Signal,
                 t_latch: float = DEFAULT_LATCH_WINDOW,
                 delay: float = DEFAULT_FORWARD_DELAY,
                 tau: float = DEFAULT_TAU, trace: bool = True):
        if t_latch < 0 or delay < 0 or tau < 0:
            raise ValueError("timing parameters cannot be negative")
        self.sim = sim
        self.name = name
        self.a = a
        self.b = b
        self.t_latch = t_latch
        self.delay = delay
        self.tau = tau
        self.req = Signal(sim, f"{name}.req", trace=trace)
        self.grant_a = Signal(sim, f"{name}.grant_a", trace=trace)
        self.grant_b = Signal(sim, f"{name}.grant_b", trace=trace)
        self.metastable_events = 0
        #: 'a', 'b', or None — which grant is currently held
        self.winner: Optional[str] = None
        self._armed = False
        self._decision: Optional[Event] = None
        self._rise_time = {"a": -1.0, "b": -1.0}
        self.req.subscribe(self._on_req)
        a.subscribe(lambda s, v: self._on_input("a"), RISE)
        b.subscribe(lambda s, v: self._on_input("b"), RISE)

    # ------------------------------------------------------------------
    def _on_req(self, _sig: Signal, value: bool) -> None:
        if value:
            self._armed = True
            if self.a.value or self.b.value:
                self._schedule_decision()
        else:
            self._armed = False
            if self._decision is not None:
                self._decision.cancel()
                self._decision = None
            self._release()

    def _release(self) -> None:
        if self.winner is not None:
            grant = self.grant_a if self.winner == "a" else self.grant_b
            self.winner = None
            self.sim.schedule(self.delay, lambda: grant._apply(False))

    def _on_input(self, tag: str) -> None:
        self._rise_time[tag] = self.sim.now
        if self._armed and self.winner is None:
            self._schedule_decision()

    def _schedule_decision(self) -> None:
        if self._decision is not None or self.winner is not None:
            return
        self._decision = self.sim.schedule(self.t_latch, self._decide)

    def _decide(self) -> None:
        self._decision = None
        if not self._armed or self.winner is not None:
            return
        va, vb = self.a.value, self.b.value
        if not va and not vb:
            # Both pulses vanished inside the capture window: marginal.
            self.metastable_events += 1
            return  # stay armed; wait for the next pulse
        if va and vb:
            gap = abs(self._rise_time["a"] - self._rise_time["b"])
            if gap < self.t_latch:
                self.metastable_events += 1
                tag = "a" if self.sim.rng.random() < 0.5 else "b"
                resolution = (self.sim.rng.expovariate(1.0 / self.tau)
                              if self.tau > 0 else 0.0)
            else:
                tag = "a" if self._rise_time["a"] < self._rise_time["b"] else "b"
                resolution = 0.0
        else:
            tag = "a" if va else "b"
            resolution = 0.0
        self.sim.schedule(self.delay + resolution, lambda t=tag: self._grant(t))

    def _grant(self, tag: str) -> None:
        if not self._armed or self.winner is not None:
            return
        self.winner = tag
        (self.grant_a if tag == "a" else self.grant_b)._apply(True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, winner={self.winner})"


class WaitX2(WaitX):
    """WAITX in the rising phase, WAIT0 in the falling phase.

    The grant is not released until the *winning input has gone low*, even
    if the controller has already dropped ``req`` — the RTZ rendering of
    the original 2-phase element.  MODE_CTRL relies on this to hold the
    UV/OV mode decision for the whole charging cycle.
    """

    def __init__(self, sim: Simulator, name: str, a: Signal, b: Signal, **kwargs):
        super().__init__(sim, name, a, b, **kwargs)
        a.subscribe(lambda s, v: self._on_input_fall("a"), FALL)
        b.subscribe(lambda s, v: self._on_input_fall("b"), FALL)

    def _on_req(self, _sig: Signal, value: bool) -> None:
        if value:
            self._armed = True
            if self.winner is None and (self.a.value or self.b.value):
                self._schedule_decision()
        else:
            self._armed = False
            if self._decision is not None:
                self._decision.cancel()
                self._decision = None
            self._maybe_release()

    def _on_input_fall(self, tag: str) -> None:
        if self.winner == tag:
            self._maybe_release()

    def _maybe_release(self) -> None:
        """Release only once the handshake is done (req low) *and* the
        winning input has gone low — the element otherwise keeps the mode
        decision latched across repeated handshakes while the condition
        persists."""
        if self.winner is None or self.req.value:
            return
        win_sig = self.a if self.winner == "a" else self.b
        if not win_sig.value:
            self._release()
