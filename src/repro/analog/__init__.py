"""Analog substrate: buck power stage ODE, coils, sensors, gate drivers.

Replaces the paper's Verilog-A + Cadence Incisive AMS setup with a
pure-Python piecewise-linear model co-simulated by the discrete-event
kernel (see DESIGN.md, substitution table).
"""

from .buck import BuckPhase, MultiphasePowerStage, ShortCircuitError, make_power_stage
from .coil import (
    COIL_LIBRARY,
    Coil,
    dcr_model,
    i_sat_model,
    library_values,
    make_coil,
    nearest_coil,
    smallest_coil_for_peak,
)
from .gate_driver import GateDriver, GateDriverBank
from .load import LoadProfile
from .sensors import ABOVE, BELOW, BuckReferences, Comparator, SensorBank
from .solver import AnalogSolver
from .stepping import STEPPING_MODES, SteppingPolicy

__all__ = [
    "BuckPhase", "MultiphasePowerStage", "ShortCircuitError", "make_power_stage",
    "Coil", "COIL_LIBRARY", "make_coil", "nearest_coil", "dcr_model",
    "i_sat_model", "library_values", "smallest_coil_for_peak",
    "GateDriver", "GateDriverBank",
    "LoadProfile",
    "Comparator", "SensorBank", "BuckReferences", "ABOVE", "BELOW",
    "AnalogSolver", "SteppingPolicy", "STEPPING_MODES",
]
