"""Piecewise-linear ODE model of the multiphase buck power stage.

The paper modelled the analog buck in Verilog-A and simulated it with an
AMS testbench (Sec. V).  Here the same network is a piecewise-linear ODE:

- each phase: coil current ``di/dt = (v_sw - v_out - i*R_series) / L(i)``
  where the switch-node voltage ``v_sw`` depends on which power transistor
  conducts (PMOS -> V_in, NMOS -> 0, both off -> body diode or open);
- output: ``C dv/dt = sum(i_k) - v_out / R_load(t)``.

The model enforces the paper's cardinal safety rule — *the PMOS and NMOS
transistors of a phase must never be ON at the same time* — by raising
:class:`ShortCircuitError` the moment a controller violates it.

Energy bookkeeping (input energy, delivered energy, per-coil conduction
loss) accumulates during integration so that Fig. 7c (inductor losses) and
the efficiency claims can be evaluated without post-processing waveforms.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .coil import Coil
from .load import LoadProfile


class ShortCircuitError(RuntimeError):
    """Both power transistors of one phase were commanded ON simultaneously."""


class BuckPhase:
    """One phase: PMOS/NMOS half-bridge driving a coil.

    The ``pmos_on`` / ``nmos_on`` flags are the *conduction* states (after
    gate-driver delay), not the controller's request signals.
    """

    __slots__ = ("index", "coil", "r_pmos", "r_nmos", "v_diode",
                 "current", "pmos_on", "nmos_on", "coil_loss_j",
                 "switch_count")

    def __init__(self, index: int, coil: Coil, r_pmos: float = 0.05,
                 r_nmos: float = 0.04, v_diode: float = 0.7):
        self.index = index
        self.coil = coil
        self.r_pmos = r_pmos
        self.r_nmos = r_nmos
        self.v_diode = v_diode
        self.current = 0.0
        self.pmos_on = False
        self.nmos_on = False
        #: accumulated coil conduction loss (joule)
        self.coil_loss_j = 0.0
        #: number of transistor state changes (for switching-loss estimates)
        self.switch_count = 0

    # ------------------------------------------------------------------
    # Switch control (called by the gate driver)
    # ------------------------------------------------------------------
    def set_pmos(self, on: bool) -> None:
        if on and self.nmos_on:
            raise ShortCircuitError(
                f"phase {self.index}: PMOS turned ON while NMOS conducts"
            )
        if on != self.pmos_on:
            self.switch_count += 1
        self.pmos_on = on

    def set_nmos(self, on: bool) -> None:
        if on and self.pmos_on:
            raise ShortCircuitError(
                f"phase {self.index}: NMOS turned ON while PMOS conducts"
            )
        if on != self.nmos_on:
            self.switch_count += 1
        self.nmos_on = on

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def didt(self, current: float, v_out: float, v_in: float) -> float:
        """Coil current derivative for a hypothetical ``current`` value."""
        dcr = self.coil.dcr
        if self.pmos_on:
            v_drive = v_in - current * (dcr + self.r_pmos)
        elif self.nmos_on:
            v_drive = -current * (dcr + self.r_nmos)
        elif current > 0.0:
            # freewheeling through the NMOS body diode
            v_drive = -self.v_diode - current * dcr
        elif current < 0.0:
            # returning through the PMOS body diode
            v_drive = v_in + self.v_diode - current * dcr
        else:
            return 0.0  # discontinuous conduction: coil is open
        return (v_drive - v_out) / self.coil.effective_inductance(current)

    def conducting(self) -> bool:
        """True when the coil can carry current (switch on or diode path)."""
        return self.pmos_on or self.nmos_on or self.current != 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sw = "P" if self.pmos_on else ("N" if self.nmos_on else "-")
        return f"BuckPhase({self.index}, i={self.current:.4f}A, sw={sw})"


class MultiphasePowerStage:
    """N-phase buck power stage with shared output capacitor and load.

    Parameters
    ----------
    phases:
        The per-phase half-bridges (usually built by :func:`make_power_stage`).
    v_in:
        Input rail voltage.
    c_out:
        Output capacitance in farad.
    load:
        Load profile (piecewise-constant resistance over time).
    v_out0:
        Initial output voltage (0 models the paper's cold startup).
    """

    def __init__(self, phases: Sequence[BuckPhase], v_in: float = 5.0,
                 c_out: float = 0.47e-6, load: Optional[LoadProfile] = None,
                 v_out0: float = 0.0):
        if not phases:
            raise ValueError("power stage needs at least one phase")
        if v_in <= 0:
            raise ValueError("input voltage must be positive")
        if c_out <= 0:
            raise ValueError("output capacitance must be positive")
        self.phases: List[BuckPhase] = list(phases)
        self.v_in = v_in
        self.c_out = c_out
        self.load = load or LoadProfile.constant(6.0)
        self.v_out = v_out0
        #: energy delivered by the input rail (joule)
        self.energy_in_j = 0.0
        #: energy dissipated in the load (joule)
        self.energy_out_j = 0.0

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def total_current(self) -> float:
        """Sum of all coil currents feeding the output node."""
        return sum(p.current for p in self.phases)

    def load_current(self, t: float) -> float:
        return self.v_out / self.load.resistance(t)

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def _derivatives(self, t: float, currents: Sequence[float],
                     v_out: float) -> Tuple[List[float], float]:
        didt = [p.didt(i, v_out, self.v_in)
                for p, i in zip(self.phases, currents)]
        r_load = self.load.resistance(t)
        dvdt = (sum(currents) - v_out / r_load) / self.c_out
        return didt, dvdt

    def step(self, t: float, dt: float) -> Tuple[float, float]:
        """Advance the state by ``dt`` using an explicit midpoint (RK2) step.

        Switch states are held constant across the step (the solver keeps
        ``dt`` below the gate-driver delay — or, in adaptive mode, snaps
        step ends onto commutation instants — so commutation lands on
        step boundaries).  Discontinuous conduction is handled by
        clamping: a phase with both transistors off whose current crosses
        zero inside the step ends the step at exactly zero.

        Returns the embedded RK2(1) local-error estimates
        ``(err_i, err_v)``: the worst per-phase ``|dt * (k2 - k1)|`` and
        the ``|dt * (k2 - k1)|`` of the output voltage — the difference
        between the committed midpoint step and its embedded Euler step.
        The fixed-step solver ignores them; the adaptive stepper uses
        them to size the next step.
        """
        currents0 = [p.current for p in self.phases]
        v0 = self.v_out

        k1_i, k1_v = self._derivatives(t, currents0, v0)
        mid_i = [i + 0.5 * dt * d for i, d in zip(currents0, k1_i)]
        mid_v = v0 + 0.5 * dt * k1_v
        k2_i, k2_v = self._derivatives(t + 0.5 * dt, mid_i, mid_v)

        new_v = v0 + dt * k2_v
        for phase, i0, d in zip(self.phases, currents0, k2_i):
            i1 = i0 + dt * d
            if not phase.pmos_on and not phase.nmos_on:
                # Body-diode conduction can only decay the current; a sign
                # flip or magnitude growth means the diode stopped (or the
                # RK2 midpoint straddled the zero-current discontinuity):
                # the coil opens at exactly zero.
                if i0 * i1 <= 0.0 or abs(i1) > abs(i0):
                    i1 = 0.0
            phase.current = i1
            # Trapezoidal energy bookkeeping on the accepted step.
            i_mid_sq = 0.5 * (i0 * i0 + i1 * i1)
            phase.coil_loss_j += i_mid_sq * phase.coil.dcr * dt
            if phase.pmos_on:
                self.energy_in_j += self.v_in * 0.5 * (i0 + i1) * dt

        r_load = self.load.resistance(t)
        v_mid_sq = 0.5 * (v0 * v0 + new_v * new_v)
        self.energy_out_j += v_mid_sq / r_load * dt
        self.v_out = new_v
        err_i = max(abs(b - a) for a, b in zip(k1_i, k2_i)) * dt
        err_v = abs(k2_v - k1_v) * dt
        return err_i, err_v

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def coil_losses_j(self) -> float:
        """Total coil conduction energy loss so far (joule)."""
        return sum(p.coil_loss_j for p in self.phases)

    def efficiency(self) -> float:
        """Delivered-to-drawn energy ratio so far."""
        if self.energy_in_j <= 0:
            return 0.0
        return self.energy_out_j / self.energy_in_j

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MultiphasePowerStage(n={self.n_phases}, "
                f"v_out={self.v_out:.3f}V)")


def make_power_stage(n_phases: int, coil: Coil, v_in: float = 5.0,
                     c_out: float = 0.47e-6,
                     load: Optional[LoadProfile] = None,
                     v_out0: float = 0.0) -> MultiphasePowerStage:
    """Build an N-phase power stage with identical coils in every phase."""
    if n_phases < 1:
        raise ValueError("need at least one phase")
    phases = [BuckPhase(index=k, coil=coil) for k in range(n_phases)]
    return MultiphasePowerStage(phases, v_in=v_in, c_out=c_out, load=load,
                                v_out0=v_out0)
