"""Power inductor (coil) models.

The paper sweeps Coilcraft RF inductors from 1 uH to 10 uH (Sec. V, Fig. 7)
and exploits the fact that physically larger inductance comes with a larger
winding resistance (DCR), so that *smaller* coils both shrink the gadget and
reduce I^2*R losses — provided the controller reacts fast enough to keep the
peak current in check.

:class:`Coil` is a simple L + DCR series model.  :data:`COIL_LIBRARY` holds a
catalogue in the spirit of the Coilcraft RF range referenced by the paper
([18]): monotone DCR(L) with a small saturation-current derating.  The values
annotated on Fig. 7a (1.8, 2.25, 3.1, 4.7, 5.7, 6.8, 8.2 uH) all appear as
catalogue entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.units import UH


@dataclass(frozen=True)
class Coil:
    """Series L + DCR inductor model.

    Attributes
    ----------
    name:
        Catalogue part name.
    inductance:
        Inductance in henry.
    dcr:
        DC winding resistance in ohm; the loss model is ``I_rms^2 * dcr``.
    i_sat:
        Saturation current in ampere.  The power-stage model derates the
        incremental inductance above this current (soft saturation), which
        makes peak-current violations *worse* for slow controllers — the
        effect the paper's coil-size trade-off is about.
    """

    name: str
    inductance: float
    dcr: float
    i_sat: float = 1.0

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise ValueError(f"inductance must be positive ({self.name})")
        if self.dcr < 0:
            raise ValueError(f"DCR cannot be negative ({self.name})")
        if self.i_sat <= 0:
            raise ValueError(f"saturation current must be positive ({self.name})")

    def effective_inductance(self, current: float) -> float:
        """Incremental inductance at ``current`` (soft-saturation derating).

        Below ``i_sat`` the coil is ideal.  Above, inductance rolls off
        smoothly towards 40% of nominal, a typical ferrite soft-saturation
        curve shape.
        """
        overdrive = abs(current) / self.i_sat
        if overdrive <= 1.0:
            return self.inductance
        # Roll off asymptotically to 40% of nominal.
        factor = 0.4 + 0.6 / overdrive
        return self.inductance * factor

    def conduction_loss(self, i_rms: float) -> float:
        """Ohmic winding loss in watt for a given RMS current."""
        return i_rms * i_rms * self.dcr

    def stored_energy(self, current: float) -> float:
        """Magnetic energy at ``current``: the flux-linkage integral
        ``int L(i) i di`` of the soft-saturation model, which is below the
        naive ``L i^2 / 2`` once the coil saturates."""
        i = abs(current)
        l_nom, i_sat = self.inductance, self.i_sat
        if i <= i_sat:
            return 0.5 * l_nom * i * i
        # beyond saturation: L(x) = l_nom * (0.4 + 0.6 * i_sat / x)
        linear = 0.5 * l_nom * i_sat * i_sat
        tail = l_nom * (0.2 * (i * i - i_sat * i_sat)
                        + 0.6 * i_sat * (i - i_sat))
        return linear + tail


def dcr_model(inductance: float) -> float:
    """Coilcraft-style DCR(L) fit used for non-catalogue inductances.

    Fitted so DCR grows sub-linearly with L (longer winding, same wire
    family): ``DCR = 0.095 * (L/1uH)^0.8`` ohm.  This preserves the paper's
    Fig. 7c conclusion (losses grow with coil size).
    """
    if inductance <= 0:
        raise ValueError("inductance must be positive")
    return 0.095 * (inductance / UH) ** 0.8


def i_sat_model(inductance: float) -> float:
    """Saturation-current fit: larger coils in the same family saturate
    slightly later; clamped to a realistic RF-inductor range."""
    if inductance <= 0:
        raise ValueError("inductance must be positive")
    return min(1.6, 0.9 + 0.07 * (inductance / UH))


def make_coil(inductance: float, name: str = "") -> Coil:
    """Build a :class:`Coil` for an arbitrary inductance using the fits."""
    label = name or f"L{inductance / UH:.3g}uH"
    return Coil(
        name=label,
        inductance=inductance,
        dcr=dcr_model(inductance),
        i_sat=i_sat_model(inductance),
    )


def _catalogue() -> Dict[str, Coil]:
    values_uh = [1.0, 1.2, 1.5, 1.8, 2.25, 2.7, 3.1, 3.9, 4.7,
                 5.7, 6.8, 8.2, 10.0]
    coils = {}
    for value in values_uh:
        coil = make_coil(value * UH, name=f"RF-{value:.4g}uH")
        coils[coil.name] = coil
    return coils


#: Catalogue of Coilcraft-style RF inductors (1-10 uH range of Fig. 7).
COIL_LIBRARY: Dict[str, Coil] = _catalogue()


def library_values() -> List[float]:
    """Catalogue inductances in henry, ascending."""
    return sorted(c.inductance for c in COIL_LIBRARY.values())


def nearest_coil(inductance: float) -> Coil:
    """Catalogue coil closest (ratio-wise) to the requested inductance."""
    if inductance <= 0:
        raise ValueError("inductance must be positive")
    best = min(
        COIL_LIBRARY.values(),
        key=lambda c: abs(c.inductance - inductance) / inductance,
    )
    return best


def smallest_coil_for_peak(peak_by_inductance: Dict[float, float],
                           limit: float) -> float:
    """Given measured ``{inductance: peak_current}``, return the smallest
    inductance whose peak stays at or below ``limit``.

    This is the paper's coil-size trade-off query (Sec. V: async holds
    300 mA with a 1.8 uH coil where 333 MHz sync needs 6.8 uH).  Raises
    ``ValueError`` if no inductance satisfies the limit.
    """
    feasible = [l for l, peak in peak_by_inductance.items() if peak <= limit]
    if not feasible:
        raise ValueError(f"no coil meets the {limit} A peak-current limit")
    return min(feasible)
