"""Gate drivers: the gp/gn -> power transistor -> ack path.

The controller requests transistor states on its ``gp`` / ``gn`` outputs.
Real power FETs take time to traverse their gate threshold (V_pmos /
V_nmos in Fig. 2a), and the controller is *explicitly notified* via
``gp_ack`` / ``gn_ack`` when the crossing happens — this is how both
controllers guarantee non-overlap without analog knowledge.

:class:`GateDriver` models that path with a configurable gate delay and
asserts the non-overlap rule at the conduction level (via
:meth:`BuckPhase.set_pmos` raising :class:`ShortCircuitError`).
"""

from __future__ import annotations

from typing import List

from ..sim.core import Simulator
from ..sim.signal import Signal
from ..sim.units import NS
from .buck import BuckPhase, MultiphasePowerStage


class GateDriver:
    """Drive one phase's power transistors from gp/gn request signals.

    Parameters
    ----------
    t_gate:
        Delay from a gate request edge to the transistor actually changing
        conduction state (and the ack following).
    """

    def __init__(self, sim: Simulator, phase: BuckPhase,
                 gp: Signal, gn: Signal, t_gate: float = 1.0 * NS,
                 trace: bool = True):
        self.sim = sim
        self.phase = phase
        self.gp = gp
        self.gn = gn
        self.t_gate = t_gate
        #: optional ``callback(commutation_time)`` fired whenever a
        #: transistor flip gets scheduled — the adaptive analog stepper
        #: subscribes so it can snap its step end onto the flip instant.
        self.on_commute = None
        k = phase.index
        self.gp_ack = Signal(sim, f"gp_ack{k}", init=False, trace=trace)
        self.gn_ack = Signal(sim, f"gn_ack{k}", init=False, trace=trace)
        gp.subscribe(self._on_gp)
        gn.subscribe(self._on_gn)

    def _on_gp(self, _sig: Signal, value: bool) -> None:
        self.sim.schedule(self.t_gate, lambda: self._apply_pmos(value))
        if self.on_commute is not None:
            self.on_commute(self.sim.now + self.t_gate)

    def _on_gn(self, _sig: Signal, value: bool) -> None:
        self.sim.schedule(self.t_gate, lambda: self._apply_nmos(value))
        if self.on_commute is not None:
            self.on_commute(self.sim.now + self.t_gate)

    def _apply_pmos(self, on: bool) -> None:
        self.phase.set_pmos(on)       # raises ShortCircuitError on overlap
        self.gp_ack._apply(on)

    def _apply_nmos(self, on: bool) -> None:
        self.phase.set_nmos(on)
        self.gn_ack._apply(on)


class GateDriverBank:
    """One :class:`GateDriver` per phase of a power stage.

    Creates the gp/gn request signals too, so a controller just drives
    ``bank.gp[k]`` / ``bank.gn[k]`` and listens to the acks.
    """

    def __init__(self, sim: Simulator, stage: MultiphasePowerStage,
                 t_gate: float = 1.0 * NS, trace: bool = True):
        self.gp: List[Signal] = []
        self.gn: List[Signal] = []
        self.drivers: List[GateDriver] = []
        for phase in stage.phases:
            k = phase.index
            gp = Signal(sim, f"gp{k}", init=False, trace=trace)
            gn = Signal(sim, f"gn{k}", init=False, trace=trace)
            self.gp.append(gp)
            self.gn.append(gn)
            self.drivers.append(GateDriver(sim, phase, gp, gn, t_gate, trace))

    @property
    def gp_ack(self) -> List[Signal]:
        return [d.gp_ack for d in self.drivers]

    @property
    def gn_ack(self) -> List[Signal]:
        return [d.gn_ack for d in self.drivers]
