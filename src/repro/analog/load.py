"""Load profiles for the buck output.

The paper's Fig. 6 scenario is: startup -> normal load -> high load ->
normal load over 10 us.  :class:`LoadProfile` models the load as a
piecewise-constant resistance over time (mobile-SoC load steps), which is
how the high-load (HL) condition is provoked.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple


class LoadProfile:
    """Piecewise-constant load resistance R(t).

    Parameters
    ----------
    steps:
        Sequence of ``(start_time, resistance)`` pairs.  The first entry
        must start at t=0.  Resistance values are in ohm.

    Examples
    --------
    >>> load = LoadProfile([(0.0, 6.0), (6e-6, 2.0), (8e-6, 6.0)])
    >>> load.resistance(7e-6)
    2.0
    """

    def __init__(self, steps: Sequence[Tuple[float, float]]):
        if not steps:
            raise ValueError("load profile needs at least one step")
        times = [t for t, _ in steps]
        if times[0] != 0.0:
            raise ValueError("first load step must start at t=0")
        if sorted(times) != times or len(set(times)) != len(times):
            raise ValueError("load steps must have strictly increasing times")
        for t, r in steps:
            if r <= 0:
                raise ValueError(f"load resistance must be positive (got {r} at t={t})")
        self._times: List[float] = list(times)
        self._values: List[float] = [r for _, r in steps]

    @classmethod
    def constant(cls, resistance: float) -> "LoadProfile":
        """A load that never changes."""
        return cls([(0.0, resistance)])

    @classmethod
    def fig6_scenario(cls, normal: float = 6.0, heavy: float = 2.0,
                      step_at: float = 6e-6, recover_at: float = 8e-6) -> "LoadProfile":
        """The paper's Fig. 6 load sequence (startup happens at t=0 because
        the output capacitor starts discharged; the explicit step provokes
        the high-load region)."""
        return cls([(0.0, normal), (step_at, heavy), (recover_at, normal)])

    def steps(self) -> List[Tuple[float, float]]:
        """The ``(start_time, resistance)`` pairs this profile was built
        from (enough to reconstruct it, e.g. across a process boundary)."""
        return list(zip(self._times, self._values))

    def resistance(self, t: float) -> float:
        """Load resistance at time ``t``; clamped before t=0."""
        if t <= 0:
            return self._values[0]
        idx = bisect_right(self._times, t) - 1
        return self._values[max(idx, 0)]

    def change_times(self) -> List[float]:
        """Times at which the load steps (excluding t=0)."""
        return self._times[1:]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pairs = ", ".join(f"({t:g}, {r:g})" for t, r in zip(self._times, self._values))
        return f"LoadProfile([{pairs}])"
