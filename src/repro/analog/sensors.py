"""Analog sensors: threshold comparators with delay, hysteresis and noise.

The buck's operating conditions (Fig. 2a) are detected by comparators:

========  =========================  ==========================
signal    condition                  threshold (normal / OV mode)
========  =========================  ==========================
``hl``    high load                  v_out < V_min
``uv``    under-voltage              v_out < V_ref
``ov``    over-voltage               v_out > V_max
``oc_k``  over-current, phase k      i_k > I_max  /  i_k > I_0
``zc_k``  zero-crossing, phase k     i_k < I_0    /  i_k < I_neg
========  =========================  ==========================

Comparator outputs are **non-persistent**: they track the analog quantity
and may pulse or chatter near the threshold (enable ``noise`` to exercise
this).  Containing that non-persistence is exactly what the paper's A2A
elements are for; the synchronous design needs 2-flop synchronisers instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.core import Simulator
from ..sim.signal import Signal
from ..sim.units import NS

#: comparator polarity: output high while quantity is above the threshold
ABOVE = "above"
#: comparator polarity: output high while quantity is below the threshold
BELOW = "below"


class Comparator:
    """Analog comparator with propagation delay and hysteresis.

    The solver calls :meth:`sample` once per integration step; the
    comparator linearly interpolates the crossing instant inside the step
    and schedules the output edge at ``crossing + delay``.

    Parameters
    ----------
    quantity:
        Zero-argument callable returning the monitored analog value.
    threshold:
        Trip level; a plain attribute so mode controllers can re-reference
        the comparator on the fly (the paper's OV mode swaps I_max->I_0 and
        I_0->I_neg).
    direction:
        :data:`ABOVE` or :data:`BELOW`.
    hysteresis:
        Width of the release band (always widens the high region).
    noise:
        RMS of Gaussian jitter added to the threshold at every sample;
        models real comparator input noise and produces the non-persistent
        chatter the A2A elements must tolerate.
    """

    def __init__(self, sim: Simulator, name: str,
                 quantity: Callable[[], float], threshold: float,
                 direction: str = ABOVE, delay: float = 1.0 * NS,
                 hysteresis: float = 0.0, noise: float = 0.0,
                 trace: bool = True):
        if direction not in (ABOVE, BELOW):
            raise ValueError(f"direction must be 'above' or 'below', got {direction!r}")
        if hysteresis < 0:
            raise ValueError("hysteresis cannot be negative")
        self.sim = sim
        self.name = name
        self.quantity = quantity
        self.threshold = threshold
        self.direction = direction
        self.delay = delay
        self.hysteresis = hysteresis
        self.noise = noise
        self.output = Signal(sim, name, init=False, trace=trace)
        self._prev_t: Optional[float] = None
        self._prev_x: Optional[float] = None
        self._state = False  # comparator decision before propagation delay

    # ------------------------------------------------------------------
    def _trip_level(self, state: bool) -> float:
        """Current trip level given the internal state (hysteresis band)."""
        th = self.threshold
        if self.noise:
            th += self.sim.rng.gauss(0.0, self.noise)
        if self.direction == ABOVE:
            return th - self.hysteresis if state else th
        return th + self.hysteresis if state else th

    def armed_level(self) -> float:
        """The noise-free level the next trip decision compares against
        (threshold, widened by the hysteresis band while tripped).  The
        adaptive stepper predicts time-to-crossing against this level."""
        th = self.threshold
        if not self._state:
            return th
        return th - self.hysteresis if self.direction == ABOVE \
            else th + self.hysteresis

    def _decide(self, x: float, state: bool) -> bool:
        level = self._trip_level(state)
        if self.direction == ABOVE:
            return x > level if not state else x >= level
        return x < level if not state else x <= level

    def sample(self, t: float) -> None:
        """Evaluate the comparator at time ``t`` (one solver step)."""
        x = self.quantity()
        prev_t, prev_x = self._prev_t, self._prev_x
        self._prev_t, self._prev_x = t, x

        new_state = self._decide(x, self._state)
        if new_state == self._state:
            return
        self._state = new_state

        # Interpolate the crossing instant inside the elapsed step.
        cross_t = t
        if prev_t is not None and prev_x is not None and prev_x != x:
            level = self.threshold
            frac = (level - prev_x) / (x - prev_x)
            if 0.0 <= frac <= 1.0:
                cross_t = prev_t + frac * (t - prev_t)
        fire_at = max(t, cross_t + self.delay)
        self.sim.schedule_at(fire_at, lambda v=new_state: self.output._apply(v))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Comparator({self.name!r}, {self.direction} "
                f"{self.threshold:g}, out={int(self.output.value)})")


@dataclass
class BuckReferences:
    """Reference levels of Fig. 2a, with defaults sized for the Fig. 6 run
    (5 V rail bucked to 3.3 V, per-phase current budget ~150 mA)."""

    v_ref: float = 3.3     #: UV threshold — regulation target
    v_min: float = 3.0     #: HL threshold (V_min < V_ref, so HL implies UV)
    v_max: float = 3.55    #: OV threshold
    i_max: float = 0.30    #: OC threshold, normal mode
    i_0: float = 0.005     #: ZC threshold normal mode / OC threshold OV mode
    i_neg: float = -0.08   #: ZC threshold, OV mode
    v_hyst: float = 0.01   #: voltage comparator hysteresis
    i_hyst: float = 0.002  #: current comparator hysteresis

    def __post_init__(self) -> None:
        if not self.v_min < self.v_ref:
            raise ValueError("V_min must be below V_ref (HL implies UV)")
        if not self.v_ref < self.v_max:
            raise ValueError("V_max must be above V_ref")
        if not self.i_neg < self.i_0 < self.i_max:
            raise ValueError("need I_neg < I_0 < I_max")


class SensorBank:
    """All comparators of an N-phase buck, wired to a power stage.

    Per-phase OC/ZC comparators are mode-aware: :meth:`set_ov_mode` swaps
    their references the way the paper describes (OV mode: PMOS off as soon
    as current is positive, NMOS on until the negative limit).
    """

    def __init__(self, sim: Simulator, stage, refs: Optional[BuckReferences] = None,
                 delay: float = 1.0 * NS, noise: float = 0.0,
                 trace: bool = True):
        self.sim = sim
        self.stage = stage
        self.refs = refs or BuckReferences()
        r = self.refs

        def vout() -> float:
            return stage.v_out

        self.hl = Comparator(sim, "hl", vout, r.v_min, BELOW, delay,
                             r.v_hyst, noise, trace)
        self.uv = Comparator(sim, "uv", vout, r.v_ref, BELOW, delay,
                             r.v_hyst, noise, trace)
        self.ov = Comparator(sim, "ov", vout, r.v_max, ABOVE, delay,
                             r.v_hyst, noise, trace)
        self.oc: List[Comparator] = []
        self.zc: List[Comparator] = []
        self._ov_mode: List[bool] = []
        for k, phase in enumerate(stage.phases):
            def current(p=phase) -> float:
                return p.current
            self.oc.append(Comparator(sim, f"oc{k}", current, r.i_max,
                                      ABOVE, delay, r.i_hyst, noise, trace))
            self.zc.append(Comparator(sim, f"zc{k}", current, r.i_0,
                                      BELOW, delay, r.i_hyst, noise, trace))
            self._ov_mode.append(False)

    def all_comparators(self) -> List[Comparator]:
        return [self.hl, self.uv, self.ov] + self.oc + self.zc

    def sample_all(self, t: float) -> None:
        for comp in self.all_comparators():
            comp.sample(t)

    # ------------------------------------------------------------------
    def set_ov_mode(self, phase_index: int, on: bool) -> None:
        """Swap phase ``phase_index``'s OC/ZC references for OV operation."""
        if self._ov_mode[phase_index] == on:
            return
        self._ov_mode[phase_index] = on
        r = self.refs
        self.oc[phase_index].threshold = r.i_0 if on else r.i_max
        self.zc[phase_index].threshold = r.i_neg if on else r.i_0

    def ov_mode(self, phase_index: int) -> bool:
        return self._ov_mode[phase_index]
