"""Analog solver driven by the discrete-event kernel.

The solver is a recurring kernel event: every micro-step it advances the
power stage ODE, records the probes, and samples the comparators (which
schedule their own output edges with sub-step crossing interpolation).
Digital events — gate-driver commutations — fall between ticks and take
effect on the next tick, mirroring the analog/digital handshake of an
AMS simulator.

Two stepping modes (see :mod:`repro.analog.stepping`):

``fixed``
    One step every ``dt`` (default 1 ns; the Fig. 6 waveform runs use
    0.5 ns so that the sub-nanosecond reaction-latency differences of
    Table I resolve cleanly in the peak-current results).  Bit-for-bit
    the historical behaviour.

``adaptive``
    The embedded RK2(1) error estimate sizes each step within
    ``[dt_min, dt_max]``, and the step end *snaps* onto gate-driver
    commutations, load-profile breakpoints, and predicted comparator
    crossings, so the events that set the paper's reaction-latency
    semantics never fall mid-step.  Each step is planned by a separate
    kernel event at priority +1 — after every same-instant digital event
    has fired — so the ODE slopes it extrapolates always reflect the
    post-commutation conduction state; the step commit itself runs at
    priority -1, before same-instant events, so a step snapped onto a
    commutation integrates up to it with the pre-flip state.

    Crossing prediction targets the step end half a *guard* past the
    predicted crossing, where the guard is ``min(dt, sensor delay)``:
    the crossing then falls inside a step no larger than the sensor
    delay, which keeps the comparator's interpolated edge time exact
    (``crossing + delay >= sample time``, so the edge is never clamped
    to the sample instant).
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from typing import List, Optional

from ..sim.core import Simulator
from ..sim.signal import AnalogProbe
from ..sim.units import NS
from .buck import MultiphasePowerStage
from .sensors import SensorBank
from .stepping import GROWTH, SAFETY, SteppingPolicy


class AnalogSolver:
    """Co-simulation driver for a power stage plus its sensor bank."""

    def __init__(self, sim: Simulator, stage: MultiphasePowerStage,
                 sensors: Optional[SensorBank] = None, dt: float = 1.0 * NS,
                 trace: bool = True, policy: Optional[SteppingPolicy] = None):
        if dt <= 0:
            raise ValueError("solver step must be positive")
        self.sim = sim
        self.stage = stage
        self.sensors = sensors
        self.dt = dt
        self.trace = trace
        self.policy = policy if policy is not None else SteppingPolicy.fixed(dt)
        self.adaptive = self.policy.adaptive
        self.v_probe = AnalogProbe("v_load", trace=trace)
        self.i_probes: List[AnalogProbe] = [
            AnalogProbe(f"i_coil{k}", trace=trace)
            for k in range(stage.n_phases)
        ]
        self.i_total_probe = AnalogProbe("i_total", trace=trace)
        self._started = False
        #: committed micro-steps so far (fixed mode: one per dt)
        self.tick_count = 0
        if self.adaptive:
            p = self.policy
            self._t_last = 0.0
            self._proposal = min(max(dt, p.dt_min), p.dt_max)
            self._commutes: List[float] = []   # heap of pending flip times
            self._pending = None               # the scheduled next tick
            self._breaks = list(stage.load.change_times())
            delay = sensors.hl.delay if sensors is not None else dt
            self._guard = min(dt, delay) if delay > 0 else dt

    def start(self) -> None:
        """Begin integration at the current simulation time."""
        if self._started:
            raise RuntimeError("solver already started")
        self._started = True
        self._record(self.sim.now)
        if self.sensors is not None:
            self.sensors.sample_all(self.sim.now)
        if not self.adaptive:
            self.sim.schedule(self.dt, self._tick)
            return
        self._t_last = self.sim.now
        # plan the first step only after the t=0 initialisation events
        # (clocks, activators, initial comparator edges) have fired
        self.sim.schedule_at(self.sim.now, self._plan, priority=1)

    # ------------------------------------------------------------------
    # Fixed-step tick (the historical hot path, bit-for-bit unchanged)
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        self.stage.step(now - self.dt, self.dt)
        self.tick_count += 1
        self._record(now)
        if self.sensors is not None:
            self.sensors.sample_all(now)
        self.sim.schedule(self.dt, self._tick)

    # ------------------------------------------------------------------
    # Adaptive stepping
    # ------------------------------------------------------------------
    def _tick_adaptive(self) -> None:
        """Commit the step ending now (priority -1: ahead of same-instant
        digital events) and defer planning the next one to priority +1
        (after they have all fired)."""
        self._pending = None
        now = self.sim.now
        h = now - self._t_last
        if h > 0.0:
            self._commit(now, h)
        self.sim.schedule_at(now, self._plan, priority=1)

    def _commit(self, now: float, h: float) -> None:
        """Integrate ``[t_last, now]``, record, sample, and update the
        error-controlled step-size proposal."""
        stage, policy = self.stage, self.policy
        err_i, err_v = stage.step(self._t_last, h)
        self._t_last = now
        self.tick_count += 1
        self._record(now)
        if self.sensors is not None:
            self.sensors.sample_all(now)
        # tolerance-scaled error -> next proposal (order-2 controller)
        i_mag = max(abs(p.current) for p in stage.phases)
        scale_i = policy.atol_i + policy.rtol * i_mag
        scale_v = policy.atol_v + policy.rtol * abs(stage.v_out)
        en = max(err_i / scale_i, err_v / scale_v)
        raw = SAFETY * h / math.sqrt(en) if en > 0.0 else policy.dt_max
        self._proposal = max(min(raw, GROWTH * self._proposal, policy.dt_max),
                             policy.dt_min)

    def _plan(self) -> None:
        """Choose and schedule the next step end (priority +1: every
        same-instant event has fired, so the slopes are post-flip)."""
        now = self.sim.now
        h = self._proposal
        cap = self._crossing_cap(now)
        guard = self._guard
        if cap < h:
            # land the step end half a guard past the predicted crossing:
            # the crossing falls inside this one delay-sized step and the
            # comparator's interpolated edge time stays exact
            h = cap + 0.5 * guard if cap > 0.5 * guard else guard
        t_next = now + h
        # load-profile breakpoints land on step boundaries
        idx = bisect_right(self._breaks, now)
        if idx < len(self._breaks) and self._breaks[idx] < t_next:
            t_next = self._breaks[idx]
        # Pending gate-driver commutations snap the step end.  A flip more
        # than a guard away ends the step exactly on its instant (the
        # commit runs first, at priority -1, so the step integrates the
        # pre-flip state).  Flips *within* a guard of the boundary stay
        # mid-step and apply retroactively over at most one guard — the
        # same commutation granularity the fixed ``dt`` step has — which
        # coalesces the dense flip bursts of a switching cycle into one
        # tick instead of several sub-nanosecond ones.
        commutes = self._commutes
        while commutes and commutes[0] <= now:
            heapq.heappop(commutes)
        if commutes and commutes[0] < t_next:
            if commutes[0] - now >= guard:
                t_next = commutes[0]
            elif now + guard < t_next:
                t_next = now + guard
        self._pending = self.sim.schedule_at(t_next, self._tick_adaptive,
                                             priority=-1)

    def crossing_bound(self) -> float:
        """Public bound for the clock-gating heuristic: seconds from now
        until the earliest predicted comparator flip (inf when nothing is
        in sight).  Valid in both stepping modes; consumers treat it as a
        profitability hint, not a correctness guarantee.

        Unlike the step-planning cap this excludes the body-diode clamp:
        the clamp is not a comparator, produces no controller-visible
        edge, and would otherwise spuriously veto gating during every
        freewheeling decay."""
        return self._crossing_cap(self.sim.now, clamp=False)

    def _crossing_cap(self, now: float, clamp: bool = True) -> float:
        """Earliest predicted comparator crossing (or, when ``clamp``,
        body-diode clamp), in seconds from now, from the analytic ODE
        slopes at the current state; inf when nothing is in sight."""
        cap = math.inf
        sensors = self.sensors
        if sensors is None:
            return cap
        stage = self.stage
        currents = [p.current for p in stage.phases]
        didt, dvdt = stage._derivatives(now, currents, stage.v_out)
        v = stage.v_out
        for comp in (sensors.hl, sensors.uv, sensors.ov):
            cap = _hit(cap, comp.armed_level(), v, dvdt)
        for k, phase in enumerate(stage.phases):
            i = currents[k]
            si = didt[k]
            cap = _hit(cap, sensors.oc[k].armed_level(), i, si)
            cap = _hit(cap, sensors.zc[k].armed_level(), i, si)
            if clamp and not phase.pmos_on and not phase.nmos_on \
                    and i != 0.0:
                # freewheeling decay: the body-diode clamp at exactly zero
                cap = _hit(cap, 0.0, i, si)
        return cap

    def note_commutation(self, when: float) -> None:
        """Gate-driver hook: a transistor flip was scheduled for ``when``.

        Future flips snap the step end; a flip at (or before) the current
        instant needs no action — it lands on the running step's start.
        """
        if when <= self.sim.now:
            return
        heapq.heappush(self._commutes, when)
        pending = self._pending
        if pending is None:
            return
        # same window rule as _plan: snap exactly when the flip is at
        # least a guard past the running step's start, otherwise bound
        # the step at start + guard (fixed-grade retroactivity)
        target = when if when - self._t_last >= self._guard \
            else self._t_last + self._guard
        if self.sim.now < target < pending.time:
            pending.cancel()
            self._pending = self.sim.schedule_at(target, self._tick_adaptive,
                                                 priority=-1)

    def sync(self) -> None:
        """Commit the integration up to the current kernel time.

        Adaptive runs land ticks on event-driven boundaries, so a
        ``run_until`` horizon (the settle boundary, the end of the run)
        usually falls between ticks; measurements taken there must see
        state integrated all the way to it.  No-op in fixed mode and when
        a tick already landed exactly on the horizon.
        """
        if not self.adaptive or not self._started:
            return
        now = self.sim.now
        if now - self._t_last > 0.0:
            self._commit(now, now - self._t_last)
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._plan()

    def _record(self, t: float) -> None:
        self.v_probe.record(t, self.stage.v_out)
        total = 0.0
        for probe, phase in zip(self.i_probes, self.stage.phases):
            probe.record(t, phase.current)
            total += phase.current
        self.i_total_probe.record(t, total)

    # ------------------------------------------------------------------
    # Traced waveforms
    # ------------------------------------------------------------------
    def trace_set(self):
        """The traced analog waveforms as a columnar
        :class:`~repro.trace.TraceSet` (``v_load``, ``i_coil{k}``,
        ``i_total`` on one shared time grid) — the canonical trace
        representation; the probes remain the live append buffers and
        the legacy access path."""
        from ..trace import probe_trace_set
        return probe_trace_set(self.v_probe, self.i_probes,
                               self.i_total_probe)

    # ------------------------------------------------------------------
    # Convenience measurements used by the experiments
    # ------------------------------------------------------------------
    def peak_coil_current(self) -> float:
        """Largest instantaneous |coil current| seen on any phase."""
        return max(p.peak_abs for p in self.i_probes)

    def reset_measurements(self) -> None:
        """Restart probe statistics (e.g. after the startup transient)."""
        self.v_probe.reset_stats()
        self.i_total_probe.reset_stats()
        for probe in self.i_probes:
            probe.reset_stats()


def _hit(cap: float, level: float, x: float, slope: float) -> float:
    """min(cap, time for ``x`` to reach ``level`` at ``slope``)."""
    if slope == 0.0:
        return cap
    t_hit = (level - x) / slope
    if 0.0 < t_hit < cap:
        return t_hit
    return cap
