"""Fixed-micro-step analog solver driven by the discrete-event kernel.

The solver is a recurring kernel event: every ``dt`` it advances the power
stage ODE, records the probes, and samples the comparators (which schedule
their own output edges with sub-step crossing interpolation).  Digital
events — gate-driver commutations — fall between ticks and take effect on
the next tick, mirroring the analog/digital handshake of an AMS simulator.

``dt`` defaults to 1 ns; the Fig. 6 waveform runs use 0.5 ns so that the
sub-nanosecond reaction-latency differences of Table I resolve cleanly in
the peak-current results.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.core import Simulator
from ..sim.signal import AnalogProbe
from ..sim.units import NS
from .buck import MultiphasePowerStage
from .sensors import SensorBank


class AnalogSolver:
    """Co-simulation driver for a power stage plus its sensor bank."""

    def __init__(self, sim: Simulator, stage: MultiphasePowerStage,
                 sensors: Optional[SensorBank] = None, dt: float = 1.0 * NS,
                 trace: bool = True):
        if dt <= 0:
            raise ValueError("solver step must be positive")
        self.sim = sim
        self.stage = stage
        self.sensors = sensors
        self.dt = dt
        self.trace = trace
        self.v_probe = AnalogProbe("v_load", trace=trace)
        self.i_probes: List[AnalogProbe] = [
            AnalogProbe(f"i_coil{k}", trace=trace)
            for k in range(stage.n_phases)
        ]
        self.i_total_probe = AnalogProbe("i_total", trace=trace)
        self._started = False

    def start(self) -> None:
        """Begin integration at the current simulation time."""
        if self._started:
            raise RuntimeError("solver already started")
        self._started = True
        self._record(self.sim.now)
        if self.sensors is not None:
            self.sensors.sample_all(self.sim.now)
        self.sim.schedule(self.dt, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        self.stage.step(now - self.dt, self.dt)
        self._record(now)
        if self.sensors is not None:
            self.sensors.sample_all(now)
        self.sim.schedule(self.dt, self._tick)

    def _record(self, t: float) -> None:
        self.v_probe.record(t, self.stage.v_out)
        total = 0.0
        for probe, phase in zip(self.i_probes, self.stage.phases):
            probe.record(t, phase.current)
            total += phase.current
        self.i_total_probe.record(t, total)

    # ------------------------------------------------------------------
    # Convenience measurements used by the experiments
    # ------------------------------------------------------------------
    def peak_coil_current(self) -> float:
        """Largest instantaneous |coil current| seen on any phase."""
        return max(p.peak_abs for p in self.i_probes)

    def reset_measurements(self) -> None:
        """Restart probe statistics (e.g. after the startup transient)."""
        self.v_probe.reset_stats()
        self.i_total_probe.reset_stats()
        for probe in self.i_probes:
            probe.reset_stats()
