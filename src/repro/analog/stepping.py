"""Shared error-controlled adaptive micro-stepping policy.

Both analog backends — the scalar event-driven
:class:`~repro.analog.solver.AnalogSolver` and the batched
:class:`~repro.scenarios.vector_solver.VectorizedSolver` — implement the
same stepping scheme, parameterised by one :class:`SteppingPolicy`:

``fixed``
    The historical behaviour: one RK2 micro-step every ``dt``, bit-for-bit
    unchanged (golden results are locked against it).

``adaptive``
    An embedded RK2(1) error estimate controls the step size.  The RK2
    midpoint step already evaluates the two slopes ``k1`` (Euler) and
    ``k2`` (midpoint); their difference is the classic first-order
    embedded estimate ``err = |dt * (k2 - k1)|`` of the local error.
    Every step is *accepted* (no rollback — between snapped events the
    buck ODE is piecewise linear, so the estimate varies smoothly) and
    the estimate sizes the **next** step through the standard order-2
    controller::

        dt_next = clamp(safety * dt / sqrt(err_norm),
                        dt_min, min(growth * dt_prev, dt_max))

    with ``err_norm`` the tolerance-scaled error
    ``max(err_i / (atol_i + rtol*|i|max), err_v / (atol_v + rtol*|v|))``.

    **Event-boundary snapping** preserves the fixed-step semantics that
    matter to the paper (sub-nanosecond reaction latencies, Fig. 6 peak
    currents): a step never straddles

    - a **gate-driver commutation** — the gate driver announces every
      scheduled transistor flip, and the solver ends the step exactly on
      that timestamp (integrating up to it with the pre-flip conduction
      state, priority-ordered ahead of the flip itself);
    - a **load-profile breakpoint** — piecewise-constant load changes
      land on step boundaries instead of mid-step;
    - a **predicted comparator crossing** — the monitored quantities'
      realized slopes bound the time-to-threshold of every armed
      comparator, and the step is capped just short of the earliest one,
      so crossings fall inside *small* steps where the existing
      sub-step linear interpolation pins the edge time.

    Purely digital events (FSM clocks, synchronizers, token timers) do
    **not** snap the step: they never read analog state directly, so the
    kernel delivers them mid-step at their exact timestamps, exactly as
    in fixed mode.

The per-step decisions are pure functions of one simulation's own state
(never of batch neighbours), which is what keeps a lane's adaptive
trajectory bit-identical across the inline, process-sharded, and
result-cached execution paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import NS

#: proposal shrink/growth guards of the step-size controller
SAFETY = 0.85
GROWTH = 2.0

#: default bounds/tolerances relative to the configured base micro-step
DT_MIN_FACTOR = 0.25
DT_MAX_FACTOR = 64.0
DEFAULT_RTOL = 1e-3
DEFAULT_ATOL_I = 1e-4   #: ampere — 0.1 mA on ~300 mA peaks
DEFAULT_ATOL_V = 5e-4   #: volt — 0.5 mV on a 3.3 V rail

STEPPING_MODES = ("fixed", "adaptive")

#: clock-gating fast-forward modes — 'auto' suspends the synchronous
#: controller's clocks across provably idle stretches (semantics
#: preserving; see README "Clock gating"), 'off' delivers every edge
GATING_MODES = ("auto", "off")


@dataclass(frozen=True)
class SteppingPolicy:
    """Resolved stepping parameters of one scenario (shared by backends)."""

    mode: str                 #: 'fixed' or 'adaptive'
    dt: float                 #: base micro-step (fixed step / initial proposal)
    dt_min: float             #: smallest error-controlled step
    dt_max: float             #: largest step between events
    rtol: float               #: relative tolerance on both state families
    atol_i: float             #: absolute current tolerance (A)
    atol_v: float             #: absolute voltage tolerance (V)
    gating: str = "auto"      #: 'auto' or 'off' — idle clock-edge fast-forward

    def __post_init__(self) -> None:
        if self.mode not in STEPPING_MODES:
            raise ValueError(
                f"stepping mode must be one of {STEPPING_MODES}, "
                f"got {self.mode!r}")
        if self.gating not in GATING_MODES:
            raise ValueError(
                f"gating mode must be one of {GATING_MODES}, "
                f"got {self.gating!r}")
        if self.dt <= 0:
            raise ValueError("solver step must be positive")
        if self.dt_min <= 0 or self.dt_max < self.dt_min:
            raise ValueError(
                f"need 0 < dt_min <= dt_max "
                f"(got dt_min={self.dt_min:g}, dt_max={self.dt_max:g})")
        if self.rtol < 0 or self.atol_i <= 0 or self.atol_v <= 0:
            raise ValueError("tolerances must be positive (rtol may be 0)")

    @property
    def adaptive(self) -> bool:
        return self.mode == "adaptive"

    @classmethod
    def from_config(cls, config) -> "SteppingPolicy":
        """Resolve a :class:`~repro.system.SystemConfig`'s stepping knobs.

        ``dt_min`` / ``dt_max`` default to fixed multiples of the config's
        ``dt`` (so the same relative bounds follow a 0.5 ns Fig. 6 run and
        a 1 ns sweep run); the tolerances carry their own defaults.
        """
        dt = config.dt
        return cls(
            mode=config.stepping,
            dt=dt,
            dt_min=config.dt_min if config.dt_min is not None
            else DT_MIN_FACTOR * dt,
            dt_max=config.dt_max if config.dt_max is not None
            else DT_MAX_FACTOR * dt,
            rtol=config.rtol,
            atol_i=config.atol_i,
            atol_v=config.atol_v,
            gating=config.gating,
        )

    @classmethod
    def fixed(cls, dt: float = 1.0 * NS) -> "SteppingPolicy":
        """A plain fixed-step policy (the solvers' default)."""
        return cls(mode="fixed", dt=dt, dt_min=dt, dt_max=dt,
                   rtol=DEFAULT_RTOL, atol_i=DEFAULT_ATOL_I,
                   atol_v=DEFAULT_ATOL_V)
