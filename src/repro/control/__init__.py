"""Buck controllers: the paper's synchronous and asynchronous designs."""

from .async_controller import (
    AsyncMultiphaseController,
    AsyncPhaseController,
    AsyncTimings,
)
from .params import BuckControlParams, StubComparator, StubGates, StubSensors
from .sync_controller import SyncMultiphaseController

__all__ = [
    "BuckControlParams",
    "SyncMultiphaseController",
    "AsyncMultiphaseController", "AsyncPhaseController", "AsyncTimings",
    "StubSensors", "StubGates", "StubComparator",
]
