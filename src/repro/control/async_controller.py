"""Asynchronous (token-ring) multiphase buck controller (paper Fig. 5b/5c).

Each phase stage is the Fig. 5c decomposition rendered as event-driven
behaviour on top of the A2A element library:

- **MERGE** — activation by the ring token *or* the HL condition (the
  OR-causality handled by the opportunistic merge element);
- **TOKEN_CTRL + TOKEN_TIMER** — dwell the token for at least the phase
  period, pass it on only after the mode controller's early ack;
- **MODE_CTRL** — a WAITX2 arbitrates the (theoretically exclusive but
  possibly fast-switching) UV and OV conditions and latches the decision
  while the condition persists;
- **CHARGE_CTRL** — one charging cycle per activation, with the OC and ZC
  conditions sanitised by a WAIT2 and an RWAIT (cancellable when a new
  activation supersedes the zero-crossing wait);
- **PMOS/NMOS/EXT_DELAY_CTRL** — minimum-ON-time enforcement (PMIN/NMIN)
  with the PEXT extension on the first cycle of a UV episode.

There is no clock anywhere: reaction latency is a handful of element
delays, path-dependent, calibrated against Table I's ASYNC row (see
:class:`AsyncTimings`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..a2a.wait import RWait, Wait, Wait2
from ..a2a.waitx import WaitX2
from ..sim.core import Simulator
from ..sim.process import (
    Process,
    delay,
    wait_any,
    wait_high,
    wait_low,
)
from ..sim.signal import RISE, Signal
from ..sim.units import NS
from .params import BuckControlParams


@dataclass
class AsyncTimings:
    """Element/hop delays of the asynchronous control paths.

    Defaults are calibrated so the end-to-end reaction latencies measured
    by the Table I bench land on the paper's ASYNC row:
    HL 1.87 ns, UV 1.02 ns, OV 1.18 ns, OC 0.75 ns, ZC 0.31 ns.
    """

    hl_latch: float = 0.30 * NS    #: WAIT(hl) capture window
    hl_fwd: float = 0.30 * NS      #: WAIT(hl) forward delay
    merge_hop: float = 0.25 * NS   #: MERGE element forward hop
    mode_latch: float = 0.25 * NS  #: WAITX2 capture window
    mode_fwd: float = 0.20 * NS    #: WAITX2 grant delay
    mode_to_charge: float = 0.20 * NS  #: MODE_CTRL -> CHARGE_CTRL hop
    charge_to_gate: float = 0.37 * NS  #: CHARGE_CTRL -> gp/gn drive
    ov_extra: float = 0.16 * NS    #: OV-mode reference swap overhead
    oc_latch: float = 0.15 * NS    #: WAIT2(oc) capture window
    oc_fwd: float = 0.10 * NS      #: WAIT2(oc) forward delay
    oc_to_gate: float = 0.50 * NS  #: OC ack -> gp- drive
    zc_latch: float = 0.08 * NS    #: RWAIT(zc) capture window
    zc_fwd: float = 0.05 * NS      #: RWAIT(zc) forward delay
    zc_to_gate: float = 0.18 * NS  #: ZC ack -> gn- drive
    gn_handoff: float = 0.10 * NS  #: gn-off request at cycle start
    token_hop: float = 0.20 * NS   #: DECOUPLER token hand-off


class AsyncPhaseController:
    """One stage of the ring (Fig. 5c).  Internal to the controller."""

    def __init__(self, ctrl: "AsyncMultiphaseController", k: int,
                 trace: bool = True):
        self.ctrl = ctrl
        self.k = k
        sim = ctrl.sim
        t = ctrl.timings
        sensors = ctrl.sensors
        self.hl_wait = Wait(sim, f"ph{k}.hl_wait", sensors.hl.output,
                            t_latch=t.hl_latch, delay=t.hl_fwd, trace=trace)
        self.mode = WaitX2(sim, f"ph{k}.mode", sensors.uv.output,
                           sensors.ov.output, t_latch=t.mode_latch,
                           delay=t.mode_fwd, trace=trace)
        self.oc_wait = Wait2(sim, f"ph{k}.oc_wait", sensors.oc[k].output,
                             t_latch=t.oc_latch, delay=t.oc_fwd, trace=trace)
        self.zc_wait = RWait(sim, f"ph{k}.zc_wait", sensors.zc[k].output,
                             t_latch=t.zc_latch, delay=t.zc_fwd, trace=trace)
        self.token = ctrl.token_at[k]
        self._pass_forked = False
        self.cycles_started = 0
        self._gn_on_time = -1e9
        ctrl.gates.gn[k].subscribe(self._on_gn_rise, RISE)
        Process(sim, self._main(), name=f"async_phase{k}")
        Process(sim, self._rectifier_monitor(), name=f"zc_monitor{k}")

    def _on_gn_rise(self, _sig: Signal, _value: bool) -> None:
        self._gn_on_time = self.ctrl.sim.now

    # ------------------------------------------------------------------
    @property
    def _gates(self):
        return self.ctrl.gates

    def _main(self):
        sim = self.ctrl.sim
        t = self.ctrl.timings
        while True:
            # ---- MERGE: token OR high-load -----------------------------
            if not self.token.value:
                self.hl_wait.req.set(True)
                yield wait_any(wait_high(self.token),
                               wait_high(self.hl_wait.ack))
                self.hl_wait.req.set(False)
            yield delay(t.merge_hop)

            if self.token.value and not self.ctrl.token_timer[self.k].req.value:
                # TOKEN_CTRL: dwell clock for this visit
                self.ctrl.token_timer[self.k].req.set(True)
                self._pass_forked = False

            # ---- MODE_CTRL: what does the buck need? -------------------
            self.mode.req.set(True)
            yield wait_any(wait_high(self.mode.grant_a),
                           wait_high(self.mode.grant_b))
            ov_mode = self.mode.grant_b.value

            # early ack to TOKEN_CTRL: the token may move on while we charge
            if self.token.value and not self._pass_forked:
                self._pass_forked = True
                Process(sim, self.ctrl._token_pass(self.k),
                        name=f"token_pass{self.k}")

            # ---- CHARGE_CTRL: one charging cycle ----------------------
            yield delay(t.mode_to_charge)
            yield from self._charge_cycle(ov_mode)
            self.mode.req.set(False)

    def _rectifier_monitor(self):
        """NMOS_DELAY_CTRL + RWAIT(zc): whenever the NMOS conducts, wait
        for the zero-crossing and switch it off (respecting NMIN) — unless
        a new charging cycle's break-before-make gets there first, in
        which case the pending wait is cancelled (the RWAIT's purpose)."""
        from ..sim.process import wait_fall, wait_rise
        sim = self.ctrl.sim
        t = self.ctrl.timings
        k = self.k
        gn = self._gates.gn[k]
        while True:
            if not gn.value:
                yield wait_rise(gn)
            self.zc_wait.req.set(True)
            yield wait_any(wait_high(self.zc_wait.ack), wait_fall(gn))
            if gn.value and self.zc_wait.ack.value and \
                    self.zc_wait.fired_by_condition:
                remaining = self._gn_on_time + self.ctrl.params.nmin - sim.now
                if remaining > 0:
                    yield delay(remaining)
                if gn.value:  # not preempted by a new cycle meanwhile
                    gn.set(False, t.zc_to_gate)
                    yield wait_low(gn)
            elif not self.zc_wait.ack.value:
                # superseded by a new cycle: release the RWAIT via cancel
                self.zc_wait.cancel.set(True)
                yield wait_high(self.zc_wait.ack)
                self.zc_wait.cancel.set(False)
            self.zc_wait.req.set(False)

    def _charge_cycle(self, ov_mode: bool):
        sim = self.ctrl.sim
        t = self.ctrl.timings
        k = self.k
        gates = self._gates
        params = self.ctrl.params
        sensors = self.ctrl.sensors

        if ov_mode:
            sensors.set_ov_mode(k, True)
            yield delay(t.ov_extra)

        # break-before-make: release the NMOS first if it conducts
        # (respecting its minimum ON time)
        if gates.gn[k].value:
            remaining = self._gn_on_time + params.nmin - sim.now
            if remaining > 0:
                yield delay(remaining)
            gates.gn[k].set(False, t.gn_handoff)
            yield wait_low(gates.gn_ack[k])

        hold = params.pmin
        if self.ctrl._uv_fresh and not ov_mode:
            hold += params.pext          # EXT_DELAY_CTRL / PEXT_TIMER
            self.ctrl._uv_fresh = False
        gates.gp[k].set(True, t.charge_to_gate)
        yield delay(t.charge_to_gate)
        t_gp_on = sim.now
        self.cycles_started += 1

        # wait for over-current (WAIT2, rising phase)
        self.oc_wait.req.set(True)
        yield wait_high(self.oc_wait.ack)
        self.oc_wait.req.set(False)
        # PMOS_DELAY_CTRL: enforce the minimum ON time
        remaining = t_gp_on + hold - sim.now
        if remaining > 0:
            yield delay(remaining)
        gates.gp[k].set(False, t.oc_to_gate)
        yield wait_low(gates.gp_ack[k])

        # rectify through the NMOS; the rectifier monitor owns the ZC wait
        gates.gn[k].set(True, t.gn_handoff)
        yield delay(t.gn_handoff)

        # WAIT2 falling phase: confirm the OC condition released
        self.oc_wait.req.set(True)
        yield wait_high(self.oc_wait.ack)
        self.oc_wait.req.set(False)

        if ov_mode:
            # hold the swapped references until the sink completes (the
            # rectifier monitor drops gn at the I_neg crossing)
            yield wait_low(gates.gn[k])
            sensors.set_ov_mode(k, False)


class AsyncMultiphaseController:
    """Token-ring asynchronous controller for an N-phase buck."""

    def __init__(self, sim: Simulator, sensors, gates, n_phases: int,
                 params: Optional[BuckControlParams] = None,
                 timings: Optional[AsyncTimings] = None, trace: bool = True):
        if n_phases < 1:
            raise ValueError("need at least one phase")
        self.sim = sim
        self.sensors = sensors
        self.gates = gates
        self.n_phases = n_phases
        self.params = params or BuckControlParams()
        self.timings = timings or AsyncTimings()
        self._uv_fresh = False
        sensors.uv.output.subscribe(self._on_uv_rise, RISE)

        from ..digital.timer import HandshakeTimer
        self.token_at: List[Signal] = [
            Signal(sim, f"token{k}", init=(k == 0), trace=trace)
            for k in range(n_phases)
        ]
        self.token_timer: List[HandshakeTimer] = [
            HandshakeTimer(sim, f"token_timer{k}", self.params.phase_dwell,
                           trace=trace)
            for k in range(n_phases)
        ]
        self.phases: List[AsyncPhaseController] = [
            AsyncPhaseController(self, k, trace=trace)
            for k in range(n_phases)
        ]

    # ------------------------------------------------------------------
    def _on_uv_rise(self, _sig: Signal, _value: bool) -> None:
        self._uv_fresh = True

    def _token_pass(self, k: int):
        """DECOUPLER: move the token after the dwell timer expires."""
        timer = self.token_timer[k]
        yield wait_high(timer.ack)
        timer.req.set(False)
        yield delay(self.timings.token_hop)
        nxt = (k + 1) % self.n_phases
        self.token_at[k].set(False)
        if nxt != k:
            self.token_at[nxt].set(True)
        else:
            # single-phase ring: re-inject the token after a fresh edge
            self.sim.schedule(0.0, lambda: self.token_at[k].set(True))

    @property
    def cycles_started(self) -> List[int]:
        return [p.cycles_started for p in self.phases]

    def metastable_events(self) -> int:
        """A2A-contained metastability episodes (never visible outside)."""
        total = 0
        for p in self.phases:
            total += p.hl_wait.metastable_events
            total += p.mode.metastable_events
            total += p.oc_wait.metastable_events
            total += p.zc_wait.metastable_events
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AsyncMultiphaseController(n={self.n_phases})"
