"""Shared controller parameters and the sensor-facing interface contract.

Both controllers consume the same sensor surface (Fig. 2a):

- ``sensors.hl/.uv/.ov`` — comparator objects with an ``.output`` Signal;
- ``sensors.oc[k]/.zc[k]`` — per-phase current comparators;
- ``sensors.set_ov_mode(k, on)`` — swap phase ``k``'s OC/ZC references
  for over-voltage operation.

:class:`repro.analog.sensors.SensorBank` implements this; tests use light
stubs (see ``tests/control/``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.core import Simulator
from ..sim.signal import Signal
from ..sim.units import NS


@dataclass
class BuckControlParams:
    """Regulation-policy timing constants shared by both controllers.

    The defaults suit the Fig. 6 operating point (3.3 V from 5 V, 4.7 uH
    coils, ~3 MHz effective switching).
    """

    # PMIN/NMIN below the synchronous latency scale: the paper does not
    # publish them, and a larger PMIN floors every controller's current
    # overshoot at pmin*slew, masking exactly the latency effect the
    # evaluation measures (see DESIGN.md).
    pmin: float = 2 * NS         #: minimum PMOS ON time
    nmin: float = 3 * NS         #: minimum NMOS ON time
    pext: float = 40 * NS        #: PMOS ON extension, first cycle of a UV episode
    phase_dwell: float = 150 * NS  #: token/activation dwell per phase

    def __post_init__(self) -> None:
        for name in ("pmin", "nmin", "pext", "phase_dwell"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


class StubComparator:
    """Sensor stand-in for controller unit tests and latency measurement:
    a bare drivable output signal."""

    def __init__(self, sim: Simulator, name: str, init: bool = False):
        self.output = Signal(sim, name, init=init)


class StubSensors:
    """A full sensor surface whose outputs the test drives directly."""

    def __init__(self, sim: Simulator, n_phases: int):
        self.hl = StubComparator(sim, "hl")
        self.uv = StubComparator(sim, "uv")
        self.ov = StubComparator(sim, "ov")
        self.oc = [StubComparator(sim, f"oc{k}") for k in range(n_phases)]
        self.zc = [StubComparator(sim, f"zc{k}") for k in range(n_phases)]
        self._ov_mode = [False] * n_phases
        self.mode_changes: List[tuple] = []

    def set_ov_mode(self, phase_index: int, on: bool) -> None:
        self._ov_mode[phase_index] = on
        self.mode_changes.append((phase_index, on))

    def ov_mode(self, phase_index: int) -> bool:
        return self._ov_mode[phase_index]


class StubGates:
    """Gate-driver stand-in: immediate acks after a fixed delay."""

    def __init__(self, sim: Simulator, n_phases: int, t_gate: float = 1 * NS):
        self.gp: List[Signal] = []
        self.gn: List[Signal] = []
        self.gp_ack: List[Signal] = []
        self.gn_ack: List[Signal] = []
        for k in range(n_phases):
            gp = Signal(sim, f"gp{k}")
            gn = Signal(sim, f"gn{k}")
            gpa = Signal(sim, f"gp_ack{k}")
            gna = Signal(sim, f"gn_ack{k}")
            gp.subscribe(lambda s, v, a=gpa: a.set(v, t_gate))
            gn.subscribe(lambda s, v, a=gna: a.set(v, t_gate))
            self.gp.append(gp)
            self.gn.append(gn)
            self.gp_ack.append(gpa)
            self.gn_ack.append(gna)
