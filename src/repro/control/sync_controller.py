"""Synchronous multiphase buck controller (paper Fig. 5a).

Architecture:

- ``fsm_clk`` — the fast clock (100 MHz … 1 GHz in Table I) clocking the
  per-phase FSMs;
- 2-flop synchronizers on every sensor input, clocked on the *opposite*
  clock phase so the FSM reads freshly-settled values — this is the
  paper's footnote trick that caps the reaction latency at 2.5 clock
  periods (2 for synchronisation + 0.5 for the FSM);
- a slow round-robin :class:`~repro.digital.clock.PhaseActivator`
  producing the non-overlapping phase activation pulses;
- high-load (HL) overrides the activator and enables all phases at once.

The reaction latency is *emergent*: sensors change asynchronously, the
synchronizers quantise them onto clock edges, and the Mealy-style FSM acts
on the next active edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..digital.clock import Clock, PhaseActivator
from ..digital.synchronizer import TwoFlopSynchronizer
from ..sim.core import Simulator
from ..sim.signal import ANY, RISE, Signal
from ..sim.units import NS, period_of
from .params import BuckControlParams

# FSM states
IDLE = "idle"
GN_OFF = "gn_off"      # waiting for NMOS to release before charging
CHARGE = "charge"      # PMOS on, waiting for OC (and PMIN)
GP_OFF = "gp_off"      # waiting for PMOS to release before rectifying
DISCHARGE = "discharge"  # NMOS on, waiting for ZC (and NMIN) or re-activation


@dataclass
class _PhaseState:
    phase: str = IDLE
    ov_mode: bool = False
    pmin_deadline: float = 0.0
    nmin_deadline: float = 0.0


class SyncMultiphaseController:
    """Clocked round-robin controller for an N-phase buck.

    Parameters
    ----------
    sensors:
        Sensor surface (see :mod:`repro.control.params`).
    gates:
        Gate-driver bank: ``gp``/``gn`` request signals, ``gp_ack``/
        ``gn_ack`` conduction acknowledgements.
    fsm_frequency:
        The fast clock frequency in Hz.
    gating:
        ``"auto"`` suspends both clocks across provably idle stretches
        (see :meth:`_maybe_gate` for the observability argument),
        ``"off"`` delivers every edge through the event loop.
    crossing_bound:
        Optional callable returning a lower bound, in seconds from now,
        on the earliest possible comparator flip (from armed levels and
        analytic ODE slopes).  Used only to decide whether gating is
        *worth entering* — raw sensor edges wake the controller
        regardless, so a stale bound cannot change results.
    """

    def __init__(self, sim: Simulator, sensors, gates, n_phases: int,
                 fsm_frequency: float,
                 params: Optional[BuckControlParams] = None,
                 t_clk_q: float = 0.3 * NS, trace: bool = True,
                 gating: str = "off",
                 crossing_bound: Optional[Callable[[], float]] = None):
        if n_phases < 1:
            raise ValueError("need at least one phase")
        self.sim = sim
        self.sensors = sensors
        self.gates = gates
        self.n_phases = n_phases
        self.params = params or BuckControlParams()
        self.period = period_of(fsm_frequency)
        self.t_clk_q = t_clk_q
        self.crossing_bound = crossing_bound

        self.fsm_clk = Clock(sim, "fsm_clk", self.period, trace=False)
        # Synchronizer clock on the opposite phase (the 0.5-cycle trick).
        self.sync_clk = Clock(sim, "sync_clk", self.period,
                              phase=self.period / 2, trace=False)
        self.activator = PhaseActivator(sim, "activator", n_phases,
                                        self.params.phase_dwell, trace=trace)

        sck = self.sync_clk.signal
        self._sync: Dict[str, TwoFlopSynchronizer] = {
            "hl": TwoFlopSynchronizer(sim, "sync_hl", sensors.hl.output, sck,
                                      trace=trace),
            "uv": TwoFlopSynchronizer(sim, "sync_uv", sensors.uv.output, sck,
                                      trace=trace),
            "ov": TwoFlopSynchronizer(sim, "sync_ov", sensors.ov.output, sck,
                                      trace=trace),
        }
        for k in range(n_phases):
            self._sync[f"oc{k}"] = TwoFlopSynchronizer(
                sim, f"sync_oc{k}", sensors.oc[k].output, sck, trace=trace)
            self._sync[f"zc{k}"] = TwoFlopSynchronizer(
                sim, f"sync_zc{k}", sensors.zc[k].output, sck, trace=trace)

        self._state = [_PhaseState() for _ in range(n_phases)]
        self._uv_fresh = False
        self._sync["uv"].output.subscribe(self._on_uv_rise, RISE)
        self.fsm_clk.signal.subscribe(self._on_clk, RISE)
        #: count of charging cycles started, per phase (observability)
        self.cycles_started = [0] * n_phases

        # --- clock gating (idle-edge fast-forward) --------------------
        self._gating = gating == "auto"
        self._gated = False
        self._acted = False
        self._act_wakes = False
        self._wake_ev = None
        #: gating entries (observability / tests)
        self.gate_count = 0
        # entering a gate must beat its own bookkeeping overhead, so the
        # provably idle horizon has to clear a couple of periods
        self._gate_horizon = 2.0 * self.period
        if self._gating:
            # Raw (pre-synchronizer) sensor edges are the only external
            # inputs that can change what the FSM observes; any edge on
            # them ends the gate.  Activation pulses only matter while a
            # demand flag (synced uv/ov) is high — see _maybe_gate.
            for comp in self._raw_comparators():
                comp.output.subscribe(self._on_wake_edge, ANY)
            for sig in self.activator.act:
                sig.subscribe(self._on_act_edge, RISE)

    def _raw_comparators(self):
        sensors = self.sensors
        comps = [sensors.hl, sensors.uv, sensors.ov]
        comps += list(sensors.oc) + list(sensors.zc)
        return comps

    # ------------------------------------------------------------------
    def _on_uv_rise(self, _sig: Signal, _value: bool) -> None:
        self._uv_fresh = True  # next charging cycle gets the PEXT extension

    def _sval(self, name: str) -> bool:
        return self._sync[name].output.value

    def _activated(self, k: int) -> bool:
        return self.activator.act[k].value or self._sval("hl")

    def _on_clk(self, _sig: Signal, _value: bool) -> None:
        self._acted = False
        for k in range(self.n_phases):
            self._step_phase(k)
        if not self._gating:
            return
        for sync in self._sync.values():
            if not sync.settled:
                return
        if not self._acted:
            self._maybe_gate()
        # Even while the FSM itself stays busy (deadline holds, ack
        # handshakes, cycle sequencing), a settled synchronizer bank is
        # re-sampling stable data: those sync-clock edges are no-ops
        # until the next raw comparator edge, which resumes the clock.
        if not self._gated and not self.sync_clk.suspended:
            self.sync_clk.suspend()

    # ------------------------------------------------------------------
    def _drive(self, sig: Signal, value: bool) -> None:
        self._acted = True
        sig.set(value, self.t_clk_q)

    def _step_phase(self, k: int) -> None:
        st = self._state[k]
        now = self.sim.now
        uv, ov = self._sval("uv"), self._sval("ov")
        oc, zc = self._sval(f"oc{k}"), self._sval(f"zc{k}")
        gates = self.gates

        if st.phase == IDLE:
            # never start a charge while the phase is still over-current
            if self._activated(k) and (uv or ov) and not oc:
                st.ov_mode = ov and not uv
                self.sensors.set_ov_mode(k, st.ov_mode)
                if not gates.gn_ack[k].value:
                    self._begin_charge(k, st)
                else:
                    self._drive(gates.gn[k], False)
                    st.phase = GN_OFF

        elif st.phase == GN_OFF:
            if not gates.gn_ack[k].value:
                self._begin_charge(k, st)

        elif st.phase == CHARGE:
            if oc and now >= st.pmin_deadline:
                self._drive(gates.gp[k], False)
                st.phase = GP_OFF

        elif st.phase == GP_OFF:
            if not gates.gp_ack[k].value:
                self._drive(gates.gn[k], True)
                st.nmin_deadline = now + self.params.nmin
                st.phase = DISCHARGE

        elif st.phase == DISCHARGE:
            if now < st.nmin_deadline:
                return
            if zc:
                self._drive(gates.gn[k], False)
                self._end_cycle(k, st)
            elif self._activated(k) and (uv or (st.ov_mode and ov)) and not oc:
                # back-to-back cycle: demand persists and current decayed
                self._drive(gates.gn[k], False)
                st.phase = GN_OFF

    def _begin_charge(self, k: int, st: _PhaseState) -> None:
        hold = self.params.pmin
        if self._uv_fresh and not st.ov_mode:
            hold += self.params.pext
            self._uv_fresh = False
        st.pmin_deadline = self.sim.now + hold
        self._drive(self.gates.gp[k], True)
        self.cycles_started[k] += 1
        st.phase = CHARGE

    def _end_cycle(self, k: int, st: _PhaseState) -> None:
        if st.ov_mode:
            self.sensors.set_ov_mode(k, False)
            st.ov_mode = False
        st.phase = IDLE

    # ------------------------------------------------------------------
    # Clock gating: skip provably idle clock edges in one jump
    # ------------------------------------------------------------------
    def _maybe_gate(self) -> None:
        """Suspend both clocks when clocking them is provably unobservable.

        The FSM sweep that just ran took no action, so a future edge can
        only act after one of its inputs changes.  Those inputs are:

        - synchronizer outputs — frozen while the sync clock is gated,
          and (because every synchronizer is *settled*: pipeline equals
          the raw input, nothing mid-flight) they can only change after
          a raw comparator edge, which resumes the clocks;
        - activation pulses — only consulted when a demand flag (synced
          ``uv``/``ov``) is high; when both are low at gate time they
          stay low until a raw edge (wake), so ``act`` rises are ignored
          unless ``_act_wakes`` was set;
        - gate-driver acks — read only in states excluded from gating
          (GN_OFF / GP_OFF) or in the same sweep as a sensor-enabled
          action, never as an action trigger on their own;
        - the PMIN / NMIN deadlines — when the current inputs would act
          once a deadline passes, a timer wake is scheduled for it.

        Skipped edges are therefore no-op sweeps: flops re-sample stable
        data (no RNG draws, no output changes), the FSM re-evaluates
        unchanged inputs.  Removing them is exact, not approximate.  The
        analytic crossing bound only gates *entry* (is the idle stretch
        long enough to be worth it) — a wrong bound costs speed, never
        correctness.

        Caller guarantees every synchronizer is settled.
        """
        now = self.sim.now
        wake_at = math.inf
        for k in range(self.n_phases):
            st = self._state[k]
            phase = st.phase
            if phase == GN_OFF or phase == GP_OFF:
                return  # ack handshakes resolve within a couple of periods
            if phase == CHARGE:
                if self._sval(f"oc{k}") and now < st.pmin_deadline:
                    wake_at = min(wake_at, st.pmin_deadline)
            elif phase == DISCHARGE and now < st.nmin_deadline:
                uv, ov = self._sval("uv"), self._sval("ov")
                if self._sval(f"zc{k}") or (
                        self._activated(k) and (uv or (st.ov_mode and ov))
                        and not self._sval(f"oc{k}")):
                    wake_at = min(wake_at, st.nmin_deadline)
        horizon = wake_at - now
        if self.crossing_bound is not None:
            horizon = min(horizon, self.crossing_bound())
        if horizon <= self._gate_horizon:
            return
        self._gated = True
        self.gate_count += 1
        self._act_wakes = self._sval("uv") or self._sval("ov")
        self.fsm_clk.suspend()
        self.sync_clk.suspend()
        if wake_at < math.inf:
            self._wake_ev = self.sim.schedule_at(wake_at, self._on_wake_timer)

    def _on_wake_edge(self, _sig: Signal, _value: bool) -> None:
        if self._gated:
            self._resume()
        elif self.sync_clk.suspended:
            # sync-only suspension: re-arm in time to sample this change
            self.sync_clk.fast_forward(self.sim.now)

    def _on_act_edge(self, _sig: Signal, _value: bool) -> None:
        if self._gated and self._act_wakes:
            self._resume()

    def _on_wake_timer(self) -> None:
        self._wake_ev = None
        self._resume()

    def _resume(self) -> None:
        self._gated = False
        if self._wake_ev is not None:
            self._wake_ev.cancel()
            self._wake_ev = None
        now = self.sim.now
        # sync before fsm: at shared grid instants the ungated clocks
        # fire the sync edge first, and re-arming preserves that order
        self.sync_clk.fast_forward(now)
        self.fsm_clk.fast_forward(now)

    @property
    def clock_edges_simulated(self) -> int:
        return self.fsm_clk.edges_simulated + self.sync_clk.edges_simulated

    @property
    def clock_edges_skipped(self) -> int:
        return self.fsm_clk.edges_skipped + self.sync_clk.edges_skipped

    # ------------------------------------------------------------------
    def metastable_events(self) -> int:
        """Total synchronizer first-flop setup violations observed."""
        return sum(s.metastable_events for s in self._sync.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SyncMultiphaseController(n={self.n_phases}, "
                f"f={1.0 / self.period / 1e6:.0f}MHz)")
