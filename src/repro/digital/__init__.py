"""Digital substrate: gates, sequential elements, clocks, synchronizers.

Behavioural stand-ins for the paper's TSMC 90 nm gate library, with
explicit metastability models in the flip-flop and mutex (see DESIGN.md).
"""

from .celement import AsymmetricCElement, CElement
from .clock import Clock, PhaseActivator
from .gates import (
    DEFAULT_GATE_DELAY,
    Gate,
    and_gate,
    buf_gate,
    nand_gate,
    nor_gate,
    not_gate,
    or_gate,
    xor_gate,
)
from .latches import DFlipFlop, SRLatch
from .mutex import Mutex
from .synchronizer import SynchronizerBank, TwoFlopSynchronizer
from .timer import HandshakeTimer, MinOnTimeGuard, RestartableTimer

__all__ = [
    "Gate", "DEFAULT_GATE_DELAY",
    "and_gate", "or_gate", "nand_gate", "nor_gate", "not_gate", "xor_gate",
    "buf_gate",
    "CElement", "AsymmetricCElement",
    "SRLatch", "DFlipFlop",
    "Mutex",
    "Clock", "PhaseActivator",
    "TwoFlopSynchronizer", "SynchronizerBank",
    "HandshakeTimer", "RestartableTimer", "MinOnTimeGuard",
]
