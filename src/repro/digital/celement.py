"""Muller C-element and asymmetric variants.

The C-element is the workhorse state-holding gate of speed-independent
design (Muller & Bartky [7] in the paper): the output goes high when *all*
inputs are high, low when *all* inputs are low, and holds otherwise.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.core import Event, Simulator
from ..sim.signal import Signal
from .gates import DEFAULT_GATE_DELAY


class CElement:
    """N-input Muller C-element with inertial delay.

    Parameters
    ----------
    init:
        Initial stored output value.
    """

    def __init__(self, sim: Simulator, name: str, inputs: Sequence[Signal],
                 init: bool = False, delay: float = DEFAULT_GATE_DELAY,
                 trace: bool = True):
        if not inputs:
            raise ValueError(f"C-element {name!r} needs at least one input")
        self.sim = sim
        self.name = name
        self.inputs = list(inputs)
        self.delay = delay
        self.output = Signal(sim, name, init=init, trace=trace)
        self._pending: Optional[Event] = None
        self._pending_value: Optional[bool] = None
        for sig in self.inputs:
            sig.subscribe(self._on_input)

    def _next_value(self) -> bool:
        # Combinational-with-feedback form: out' = AND(in) + out * OR(in).
        # On "hold" the excitation is gone, so a pending (not yet committed)
        # transition must be withdrawn — that is what filters input glitches.
        values = [s.value for s in self.inputs]
        if all(values):
            return True
        if not any(values):
            return False
        return self.output.value

    def _on_input(self, _sig: Signal, _value: bool) -> None:
        new = self._next_value()
        target = self._pending_value if self._pending is not None else self.output.value
        if new == target:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
            self._pending_value = None
        if new == self.output.value:
            return
        self._pending_value = new
        self._pending = self.sim.schedule(self.delay, lambda: self._commit(new))

    def _commit(self, value: bool) -> None:
        self._pending = None
        self._pending_value = None
        self.output._apply(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CElement({self.name!r}, out={int(self.output.value)})"


class AsymmetricCElement:
    """C-element with *plus-only* and *minus-only* inputs.

    ``rise`` requires: all regular AND all plus inputs high.
    ``fall`` requires: all regular inputs low AND all minus inputs low.

    This is the generalised C-element (gC) that STG synthesis targets: the
    set function is the rise condition, the reset function the fall
    condition (see :mod:`repro.stg.synthesis`).
    """

    def __init__(self, sim: Simulator, name: str,
                 common: Sequence[Signal] = (),
                 plus: Sequence[Signal] = (),
                 minus: Sequence[Signal] = (),
                 init: bool = False, delay: float = DEFAULT_GATE_DELAY,
                 trace: bool = True):
        if not (list(common) or list(plus) or list(minus)):
            raise ValueError(f"gC {name!r} needs at least one input")
        self.sim = sim
        self.name = name
        self.common = list(common)
        self.plus = list(plus)
        self.minus = list(minus)
        self.delay = delay
        self.output = Signal(sim, name, init=init, trace=trace)
        self._pending: Optional[Event] = None
        self._pending_value: Optional[bool] = None
        for sig in self.common + self.plus + self.minus:
            sig.subscribe(self._on_input)

    def _next_value(self) -> bool:
        set_cond = (all(s.value for s in self.common)
                    and all(s.value for s in self.plus))
        reset_cond = (not any(s.value for s in self.common)
                      and not any(s.value for s in self.minus))
        if set_cond and not reset_cond:
            return True
        if reset_cond and not set_cond:
            return False
        return self.output.value  # hold the committed value (glitch filter)

    def _on_input(self, _sig: Signal, _value: bool) -> None:
        new = self._next_value()
        target = self._pending_value if self._pending is not None else self.output.value
        if new == target:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
            self._pending_value = None
        if new == self.output.value:
            return
        self._pending_value = new
        self._pending = self.sim.schedule(self.delay, lambda: self._commit(new))

    def _commit(self, value: bool) -> None:
        self._pending = None
        self._pending_value = None
        self.output._apply(value)
