"""Clock and non-overlapping pulse generators.

The synchronous multiphase controller (paper Fig. 5a) uses two clocks:

- ``fsm_clk`` — fast (hundreds of MHz), polling sensors and clocking FSMs;
- ``phase_clk`` — slow (few MHz), from which the phase activator derives
  non-overlapping activation pulses in a round-robin pattern.
"""

from __future__ import annotations

from typing import List

from ..sim.core import Simulator
from ..sim.signal import Signal


class Clock:
    """Free-running clock signal.

    Parameters
    ----------
    period:
        Clock period in seconds.
    duty:
        High-time fraction.
    phase:
        Delay of the first rising edge.
    """

    def __init__(self, sim: Simulator, name: str, period: float,
                 duty: float = 0.5, phase: float = 0.0, trace: bool = False):
        if period <= 0:
            raise ValueError("clock period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.sim = sim
        self.period = period
        self.duty = duty
        self.signal = Signal(sim, name, init=False, trace=trace)
        self._high_time = period * duty
        sim.schedule(phase, self._rise)

    def _rise(self) -> None:
        self.signal._apply(True)
        self.sim.schedule(self._high_time, self._fall)

    def _fall(self) -> None:
        self.signal._apply(False)
        self.sim.schedule(self.period - self._high_time, self._rise)


class PhaseActivator:
    """Round-robin generator of non-overlapping activation pulses.

    Produces N ``act[k]`` signals; each is high for ``pulse_width`` once per
    rotation, with guaranteed gaps (non-overlap) between consecutive
    phases.  This is the synchronous design's phase selection mechanism;
    the asynchronous design replaces it with a token ring whose per-stage
    timer has the same dwell time.
    """

    def __init__(self, sim: Simulator, name: str, n_phases: int,
                 dwell: float, gap_fraction: float = 0.05,
                 trace: bool = True):
        if n_phases < 1:
            raise ValueError("need at least one phase")
        if dwell <= 0:
            raise ValueError("dwell time must be positive")
        if not 0.0 <= gap_fraction < 1.0:
            raise ValueError("gap fraction must be in [0, 1)")
        self.sim = sim
        self.n_phases = n_phases
        self.dwell = dwell
        self.gap = dwell * gap_fraction
        self.act: List[Signal] = [
            Signal(sim, f"{name}.act{k}", trace=trace) for k in range(n_phases)
        ]
        self._current = 0
        sim.schedule(0.0, self._activate)

    def _activate(self) -> None:
        sig = self.act[self._current]
        sig._apply(True)
        self.sim.schedule(self.dwell - self.gap, lambda s=sig: self._deactivate(s))

    def _deactivate(self, sig: Signal) -> None:
        sig._apply(False)
        self._current = (self._current + 1) % self.n_phases
        self.sim.schedule(self.gap, self._activate)

    @property
    def rotation_period(self) -> float:
        """Time for the activation token to make a full round."""
        return self.dwell * self.n_phases
