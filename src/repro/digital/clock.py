"""Clock and non-overlapping pulse generators.

The synchronous multiphase controller (paper Fig. 5a) uses two clocks:

- ``fsm_clk`` — fast (hundreds of MHz), polling sensors and clocking FSMs;
- ``phase_clk`` — slow (few MHz), from which the phase activator derives
  non-overlapping activation pulses in a round-robin pattern.
"""

from __future__ import annotations

from typing import List

from ..sim.core import Simulator
from ..sim.signal import Signal


class Clock:
    """Free-running clock signal with suspend / fast-forward support.

    Parameters
    ----------
    period:
        Clock period in seconds.
    duty:
        High-time fraction.
    phase:
        Delay of the first rising edge.

    Gating
    ------
    :meth:`suspend` cancels the pending edge event; :meth:`fast_forward`
    re-arms the clock at a later time, accounting for the edges that were
    skipped *arithmetically* (no kernel events, no listener dispatch).
    The skipped-edge times are reproduced with the exact same chain of
    float additions the live clock would have performed, so the re-armed
    edge grid is bit-identical to an ungated run's.  A jump that lands
    exactly on an edge schedules that edge *at* the jump time — it still
    fires; only edges strictly before the target are skipped.

    ``edges_simulated`` counts edges delivered through the event loop,
    ``edges_skipped`` counts edges absorbed by fast-forward jumps.
    """

    def __init__(self, sim: Simulator, name: str, period: float,
                 duty: float = 0.5, phase: float = 0.0, trace: bool = False):
        if period <= 0:
            raise ValueError("clock period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty cycle must be in (0, 1)")
        self.sim = sim
        self.period = period
        self.duty = duty
        self.signal = Signal(sim, name, init=False, trace=trace)
        self._high_time = period * duty
        self._low_time = period - self._high_time
        self.edges_simulated = 0
        self.edges_skipped = 0
        self._suspended = False
        self._next_at = sim.now + phase
        self._next_is_rise = True
        self._pending = sim.schedule(phase, self._rise)

    def _rise(self) -> None:
        self.edges_simulated += 1
        self._next_at = self.sim.now + self._high_time
        self._next_is_rise = False
        # schedule before dispatching: a listener may suspend() the clock
        # from inside this very edge, which must cancel the follow-up
        self._pending = self.sim.schedule(self._high_time, self._fall)
        self.signal._apply(True)

    def _fall(self) -> None:
        self.edges_simulated += 1
        self._next_at = self.sim.now + self._low_time
        self._next_is_rise = True
        self._pending = self.sim.schedule(self._low_time, self._rise)
        self.signal._apply(False)

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    @property
    def suspended(self) -> bool:
        return self._suspended

    def suspend(self) -> None:
        """Stop delivering edges (cancels the pending edge event)."""
        if self._suspended:
            return
        self._suspended = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def fast_forward(self, t: float) -> None:
        """Re-arm a suspended clock as of time ``t``.

        Edges strictly before ``t`` are skipped (counted, value applied
        silently via :meth:`Signal.force` — no listener dispatch); the
        first edge at or after ``t`` is scheduled normally, so an edge
        landing exactly on ``t`` fires at ``t``.
        """
        if not self._suspended:
            return
        self._suspended = False
        value = self.signal.value
        at = self._next_at
        is_rise = self._next_is_rise
        skipped = 0
        # Replays the live clock's own accumulation (now + delta at each
        # edge) so the surviving grid is bit-identical to an ungated run.
        while at < t:
            value = is_rise
            skipped += 1
            at = at + (self._high_time if is_rise else self._low_time)
            is_rise = not is_rise
        self.edges_skipped += skipped
        if value != self.signal.value:
            self.signal.force(value)
        self._next_at = at
        self._next_is_rise = is_rise
        self._pending = self.sim.schedule_at(
            at, self._rise if is_rise else self._fall)


class PhaseActivator:
    """Round-robin generator of non-overlapping activation pulses.

    Produces N ``act[k]`` signals; each is high for ``pulse_width`` once per
    rotation, with guaranteed gaps (non-overlap) between consecutive
    phases.  This is the synchronous design's phase selection mechanism;
    the asynchronous design replaces it with a token ring whose per-stage
    timer has the same dwell time.
    """

    def __init__(self, sim: Simulator, name: str, n_phases: int,
                 dwell: float, gap_fraction: float = 0.05,
                 trace: bool = True):
        if n_phases < 1:
            raise ValueError("need at least one phase")
        if dwell <= 0:
            raise ValueError("dwell time must be positive")
        if not 0.0 <= gap_fraction < 1.0:
            raise ValueError("gap fraction must be in [0, 1)")
        self.sim = sim
        self.n_phases = n_phases
        self.dwell = dwell
        self.gap = dwell * gap_fraction
        self.act: List[Signal] = [
            Signal(sim, f"{name}.act{k}", trace=trace) for k in range(n_phases)
        ]
        self._current = 0
        sim.schedule(0.0, self._activate)

    def _activate(self) -> None:
        sig = self.act[self._current]
        sig._apply(True)
        self.sim.schedule(self.dwell - self.gap, lambda s=sig: self._deactivate(s))

    def _deactivate(self, sig: Signal) -> None:
        sig._apply(False)
        self._current = (self._current + 1) % self.n_phases
        self.sim.schedule(self.gap, self._activate)

    @property
    def rotation_period(self) -> float:
        """Time for the activation token to make a full round."""
        return self.dwell * self.n_phases
