"""Event-driven combinational gates with inertial delay.

Gates re-evaluate whenever an input changes and schedule the new output
value after their propagation delay.  A pending transition is cancelled if
a newer evaluation supersedes it (inertial-delay semantics: pulses shorter
than the gate delay are filtered — which is precisely why non-persistent
comparator pulses are dangerous for ordinary logic and need A2A elements).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..sim.core import Event, Simulator
from ..sim.signal import Signal
from ..sim.units import NS

#: default gate propagation delay (a TSMC 90 nm-ish FO4-scale figure)
DEFAULT_GATE_DELAY = 0.1 * NS


class Gate:
    """A combinational gate: ``output = func(*input_values)``.

    Parameters
    ----------
    func:
        Boolean function of the input values (positional, in input order).
    delay:
        Propagation delay; evaluation is inertial.
    """

    def __init__(self, sim: Simulator, name: str, inputs: Sequence[Signal],
                 func: Callable[..., bool], delay: float = DEFAULT_GATE_DELAY,
                 trace: bool = True):
        if not inputs:
            raise ValueError(f"gate {name!r} needs at least one input")
        self.sim = sim
        self.name = name
        self.inputs = list(inputs)
        self.func = func
        self.delay = delay
        initial = bool(func(*(s.value for s in self.inputs)))
        self.output = Signal(sim, name, init=initial, trace=trace)
        self._pending: Optional[Event] = None
        self._pending_value: Optional[bool] = None
        for sig in self.inputs:
            sig.subscribe(self._on_input)

    def _on_input(self, _sig: Signal, _value: bool) -> None:
        new = bool(self.func(*(s.value for s in self.inputs)))
        target = self._pending_value if self._pending is not None else self.output.value
        if new == target:
            return
        if self._pending is not None:
            self._pending.cancel()  # inertial: supersede the queued transition
            self._pending = None
            self._pending_value = None
        if new == self.output.value:
            return
        self._pending_value = new
        self._pending = self.sim.schedule(self.delay, lambda: self._commit(new))

    def _commit(self, value: bool) -> None:
        self._pending = None
        self._pending_value = None
        self.output._apply(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gate({self.name!r}, out={int(self.output.value)})"


# ---------------------------------------------------------------------------
# Gate factories
# ---------------------------------------------------------------------------

def not_gate(sim: Simulator, name: str, a: Signal,
             delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """Inverter."""
    return Gate(sim, name, [a], lambda x: not x, delay)


def and_gate(sim: Simulator, name: str, *inputs: Signal,
             delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """N-input AND."""
    return Gate(sim, name, inputs, lambda *vs: all(vs), delay)


def or_gate(sim: Simulator, name: str, *inputs: Signal,
            delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """N-input OR."""
    return Gate(sim, name, inputs, lambda *vs: any(vs), delay)


def nand_gate(sim: Simulator, name: str, *inputs: Signal,
              delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """N-input NAND."""
    return Gate(sim, name, inputs, lambda *vs: not all(vs), delay)


def nor_gate(sim: Simulator, name: str, *inputs: Signal,
             delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """N-input NOR."""
    return Gate(sim, name, inputs, lambda *vs: not any(vs), delay)


def xor_gate(sim: Simulator, name: str, a: Signal, b: Signal,
             delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """2-input XOR."""
    return Gate(sim, name, [a, b], lambda x, y: x != y, delay)


def buf_gate(sim: Simulator, name: str, a: Signal,
             delay: float = DEFAULT_GATE_DELAY) -> Gate:
    """Non-inverting buffer (delay element)."""
    return Gate(sim, name, [a], lambda x: x, delay)
