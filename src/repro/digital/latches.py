"""Sequential primitives: SR latch and D flip-flop.

The D flip-flop models setup-time violation explicitly: if D changed within
the setup window before the sampling clock edge, the captured value is
*random* (drawn from the simulator RNG) and the flop may take extra time to
resolve — the metastability mechanism that motivates the paper's argument
against polling asynchronous inputs with a clock.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Simulator
from ..sim.signal import RISE, Signal
from ..sim.units import NS
from .gates import DEFAULT_GATE_DELAY


class SRLatch:
    """Set/reset latch (set dominates when both asserted, configurable)."""

    def __init__(self, sim: Simulator, name: str, s: Signal, r: Signal,
                 init: bool = False, delay: float = DEFAULT_GATE_DELAY,
                 set_dominates: bool = True, trace: bool = True):
        self.sim = sim
        self.name = name
        self.s = s
        self.r = r
        self.delay = delay
        self.set_dominates = set_dominates
        self.q = Signal(sim, name, init=init, trace=trace)
        s.subscribe(self._update)
        r.subscribe(self._update)

    def _update(self, _sig: Signal, _value: bool) -> None:
        s, r = self.s.value, self.r.value
        if s and r:
            new = self.set_dominates
        elif s:
            new = True
        elif r:
            new = False
        else:
            return  # hold
        if new != self.q.value:
            self.sim.schedule(self.delay, lambda v=new: self.q._apply(v))


class DFlipFlop:
    """Rising-edge D flip-flop with a metastability window.

    Parameters
    ----------
    t_setup:
        If D last changed less than ``t_setup`` before the clock edge, the
        sample is unreliable: the captured value is random and the
        clock-to-Q delay is extended by an exponentially-distributed
        resolution time with mean ``tau``.
    tau:
        Metastability resolution time constant.
    """

    def __init__(self, sim: Simulator, name: str, d: Signal, clk: Signal,
                 init: bool = False, t_clk_q: float = DEFAULT_GATE_DELAY,
                 t_setup: float = 0.05 * NS, tau: float = 0.02 * NS,
                 trace: bool = True):
        self.sim = sim
        self.name = name
        self.d = d
        self.clk = clk
        self.t_clk_q = t_clk_q
        self.t_setup = t_setup
        self.tau = tau
        self.q = Signal(sim, name, init=init, trace=trace)
        self._last_d_change: float = -1.0
        #: number of setup violations observed (for reliability reporting)
        self.metastable_events = 0
        #: captured samples whose clk->Q propagation has not applied yet
        #: (clock gating refuses to freeze a flop mid-propagation)
        self.inflight = 0
        d.subscribe(self._on_d)
        clk.subscribe(self._on_clk, RISE)

    def _on_d(self, _sig: Signal, _value: bool) -> None:
        self._last_d_change = self.sim.now

    def _on_clk(self, _sig: Signal, _value: bool) -> None:
        in_window = (self._last_d_change >= 0 and
                     self.sim.now - self._last_d_change < self.t_setup)
        if in_window:
            self.metastable_events += 1
            captured = self.sim.rng.random() < 0.5
            resolution = self.sim.rng.expovariate(1.0 / self.tau) if self.tau > 0 else 0.0
            delay = self.t_clk_q + resolution
        else:
            captured = self.d.value
            delay = self.t_clk_q
        self.inflight += 1
        self.sim.schedule(delay, lambda v=captured: self._settle(v))

    def _settle(self, value: bool) -> None:
        self.inflight -= 1
        self.q._apply(value)
