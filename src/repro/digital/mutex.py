"""Mutual-exclusion (mutex) element with an explicit metastability model.

The mutex arbitrates two request inputs into two mutually-exclusive grant
outputs.  When requests arrive almost simultaneously (within
``window``), the internal cross-coupled pair goes metastable: the winner is
random and the decision takes an extra exponentially-distributed resolution
time.  Crucially — as in a real mutex — the *outputs stay clean*: no grant
is issued until the metastability resolves.  This is the containment
property the WAITX A2A element builds on.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Simulator
from ..sim.signal import Signal
from ..sim.units import NS
from .gates import DEFAULT_GATE_DELAY


class Mutex:
    """Two-way mutual exclusion element.

    Protocol: raise ``r1``/``r2`` to request; exactly one of ``g1``/``g2``
    rises.  Drop the request to release; the grant falls and a pending
    opposite request (if any) is granted next.
    """

    def __init__(self, sim: Simulator, name: str, r1: Signal, r2: Signal,
                 delay: float = DEFAULT_GATE_DELAY,
                 window: float = 0.03 * NS, tau: float = 0.05 * NS,
                 trace: bool = True):
        self.sim = sim
        self.name = name
        self.r1 = r1
        self.r2 = r2
        self.delay = delay
        self.window = window
        self.tau = tau
        self.g1 = Signal(sim, f"{name}.g1", trace=trace)
        self.g2 = Signal(sim, f"{name}.g2", trace=trace)
        #: which side currently holds the grant (None = free)
        self._owner: Optional[int] = None
        self._deciding = False
        self._last_req_time = {1: -1.0, 2: -1.0}
        self.metastable_events = 0
        r1.subscribe(lambda s, v: self._on_request(1, v))
        r2.subscribe(lambda s, v: self._on_request(2, v))

    def _grant_signal(self, side: int) -> Signal:
        return self.g1 if side == 1 else self.g2

    def _request_signal(self, side: int) -> Signal:
        return self.r1 if side == 1 else self.r2

    def _on_request(self, side: int, value: bool) -> None:
        if value:
            self._last_req_time[side] = self.sim.now
            self._try_grant()
        else:
            if self._owner == side:
                # release: drop the grant, then consider the other side
                self._owner = None
                grant = self._grant_signal(side)
                self.sim.schedule(self.delay, lambda: self._release(grant))

    def _release(self, grant: Signal) -> None:
        grant._apply(False)
        self._try_grant()

    def _try_grant(self) -> None:
        if self._owner is not None or self._deciding:
            return
        if not (self.r1.value or self.r2.value):
            return
        # Sample both requests after the decision aperture: a request that
        # lands inside the window of an earlier one races the cross-coupled
        # pair and can flip the outcome (metastability).
        self._deciding = True
        self.sim.schedule(self.window, self._decide)

    def _decide(self) -> None:
        want1 = self.r1.value
        want2 = self.r2.value
        if not (want1 or want2):
            self._deciding = False
            return
        if want1 and want2:
            gap = abs(self._last_req_time[1] - self._last_req_time[2])
            if gap < self.window:
                self.metastable_events += 1
                winner = 1 if self.sim.rng.random() < 0.5 else 2
                resolution = (self.sim.rng.expovariate(1.0 / self.tau)
                              if self.tau > 0 else 0.0)
            else:
                winner = 1 if self._last_req_time[1] < self._last_req_time[2] else 2
                resolution = 0.0
        else:
            winner = 1 if want1 else 2
            resolution = 0.0
        self.sim.schedule(self.delay + resolution,
                          lambda w=winner: self._commit_grant(w))

    def _commit_grant(self, side: int) -> None:
        self._deciding = False
        if not self._request_signal(side).value:
            # requester gave up while we were deciding; re-arbitrate
            self._try_grant()
            return
        self._owner = side
        self._grant_signal(side)._apply(True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Mutex({self.name!r}, owner={self._owner})"
