"""Synchronizers: bringing asynchronous sensor outputs into a clock domain.

The synchronous controller cannot look at a comparator output directly —
it would violate the flop's setup window and go metastable.  The standard
remedy (Kinniment [15] in the paper) is the 2-flop synchronizer, which
costs up to 2 clock periods of input latency and still has a small failure
probability per crossing.  This latency is the synchronous design's
fundamental handicap that Table I quantifies.
"""

from __future__ import annotations

from ..sim.core import Simulator
from ..sim.signal import Signal
from .gates import DEFAULT_GATE_DELAY
from .latches import DFlipFlop


class TwoFlopSynchronizer:
    """Classic 2-flop brute-force synchronizer.

    The first flop may capture a metastable/random value on a close input
    transition; the second flop re-times it, making the output clean with
    high probability.  Failure statistics are exposed via
    ``metastable_events`` (first-flop setup violations).
    """

    def __init__(self, sim: Simulator, name: str, data: Signal, clk: Signal,
                 init: bool = False, trace: bool = True):
        self.sim = sim
        self.name = name
        self._ff1 = DFlipFlop(sim, f"{name}.ff1", data, clk, init=init,
                              trace=False)
        # The second flop samples a signal that only changes right after a
        # clock edge, so it is safe by construction (tau=0 disables its
        # metastability model).
        self._ff2 = DFlipFlop(sim, f"{name}.ff2", self._ff1.q, clk, init=init,
                              t_setup=0.0, tau=0.0, trace=trace)

    @property
    def output(self) -> Signal:
        return self._ff2.q

    @property
    def metastable_events(self) -> int:
        return self._ff1.metastable_events

    @property
    def settled(self) -> bool:
        """True when clocking this synchronizer is provably a no-op: the
        whole pipeline already equals the (stable) input and no captured
        sample is still propagating to a Q output.  Clock gating only
        suspends the clock when every synchronizer reports settled."""
        return (self._ff1.inflight == 0 and self._ff2.inflight == 0
                and self._ff1.q.value == self._ff2.q.value
                == self._ff1.d.value)


class SynchronizerBank:
    """A set of 2-flop synchronizers sharing one clock — the shaded
    components at the input of the synchronous controller in Fig. 5a."""

    def __init__(self, sim: Simulator, name: str, clk: Signal,
                 inputs, trace: bool = True):
        self.synchronizers = {}
        for sig in inputs:
            self.synchronizers[sig.name] = TwoFlopSynchronizer(
                sim, f"{name}.{sig.name}", sig, clk, trace=trace)

    def output(self, input_name: str) -> Signal:
        return self.synchronizers[input_name].output

    def total_metastable_events(self) -> int:
        return sum(s.metastable_events for s in self.synchronizers.values())
