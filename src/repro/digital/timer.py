"""Handshake timers (the paper's TOKEN/PMIN/NMIN/PEXT timers).

A :class:`HandshakeTimer` has a request/acknowledge interface: raise
``req``; after the programmed duration ``ack`` rises; drop ``req`` and
``ack`` follows down (return-to-zero handshake).  The asynchronous phase
controller uses these to bound minimum transistor ON times and token dwell
without any clock.

:class:`RestartableTimer` adds early cancellation, needed by the RWAIT-
based zero-crossing wait ("it can be reset due to a timeout", Sec. IV).
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Event, Simulator
from ..sim.signal import Signal
from ..sim.units import NS


class HandshakeTimer:
    """req/ack timer: ``ack`` rises ``duration`` after ``req`` rises."""

    def __init__(self, sim: Simulator, name: str, duration: float,
                 ack_fall_delay: float = 0.1 * NS, trace: bool = True):
        if duration < 0:
            raise ValueError("timer duration cannot be negative")
        self.sim = sim
        self.name = name
        self.duration = duration
        self.ack_fall_delay = ack_fall_delay
        self.req = Signal(sim, f"{name}.req", trace=trace)
        self.ack = Signal(sim, f"{name}.ack", trace=trace)
        self._pending: Optional[Event] = None
        self.req.subscribe(self._on_req)

    def _on_req(self, _sig: Signal, value: bool) -> None:
        if value:
            self._pending = self.sim.schedule(self.duration, self._expire)
        else:
            if self._pending is not None:
                self._pending.cancel()
                self._pending = None
            if self.ack.value:
                self.sim.schedule(self.ack_fall_delay,
                                  lambda: self.ack._apply(False))

    def _expire(self) -> None:
        self._pending = None
        self.ack._apply(True)

    @property
    def running(self) -> bool:
        return self._pending is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HandshakeTimer({self.name!r}, {self.duration!r}s)"


class RestartableTimer(HandshakeTimer):
    """Handshake timer whose programmed duration may be changed per use.

    ``set_duration`` affects the *next* request; a running measurement is
    unaffected.  The EXT_DELAY_CTRL uses this to add PEXT on the first
    charging cycle only.
    """

    def set_duration(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("timer duration cannot be negative")
        self.duration = duration


class MinOnTimeGuard:
    """Enforces a minimum ON time for a power transistor request signal.

    Watches a gate request signal ``g``; ``expired`` is high only when the
    signal has been high for at least ``minimum``.  Both controllers use
    this for the PMIN/NMIN requirement (Sec. II: "once ON, the PMOS and
    NMOS transistors should not switch OFF for at least the predefined
    PMIN and NMIN time intervals").
    """

    def __init__(self, sim: Simulator, name: str, g: Signal, minimum: float,
                 trace: bool = True):
        if minimum < 0:
            raise ValueError("minimum ON time cannot be negative")
        self.sim = sim
        self.minimum = minimum
        #: extra hold applied to the next ON interval only (PEXT support)
        self.extension = 0.0
        self.expired = Signal(sim, f"{name}.expired", init=True, trace=trace)
        self._pending: Optional[Event] = None
        g.subscribe(self._on_g)

    def _on_g(self, _sig: Signal, value: bool) -> None:
        if value:
            hold = self.minimum + self.extension
            self.extension = 0.0
            self.expired._apply(False)
            if self._pending is not None:
                self._pending.cancel()
            self._pending = self.sim.schedule(hold, self._expire)
        else:
            # turning off: nothing to do; the guard re-arms on next ON
            pass

    def _expire(self) -> None:
        self._pending = None
        self.expired._apply(True)

    def extend_next(self, extra: float) -> None:
        """Lengthen the next ON interval by ``extra`` (the PEXT mechanism)."""
        if extra < 0:
            raise ValueError("extension cannot be negative")
        self.extension = extra
