"""Experiment modules: one per table/figure of the paper's evaluation."""

from .fig6 import Fig6Result, Fig6Run, PAPER_FIG6, run_fig6, run_one
from .fig7 import (
    CONTROLLERS,
    PAPER_FIG7A_TRADEOFF_UH,
    SweepResult,
    coil_tradeoff,
    format_tradeoff,
    run_fig7a,
    run_fig7b,
    run_fig7c,
)
from .report import (ascii_chart, format_series_table, format_table,
                     format_value_grid)
from .stg_verif import StgVerifResult, run_stg_verification
from .table1 import PAPER_TABLE1, Table1Result, run_table1

__all__ = [
    "run_table1", "Table1Result", "PAPER_TABLE1",
    "run_fig6", "run_one", "Fig6Result", "Fig6Run", "PAPER_FIG6",
    "run_fig7a", "run_fig7b", "run_fig7c", "SweepResult", "CONTROLLERS",
    "coil_tradeoff", "format_tradeoff", "PAPER_FIG7A_TRADEOFF_UH",
    "run_stg_verification", "StgVerifResult",
    "format_table", "format_series_table", "format_value_grid",
    "ascii_chart",
]
