"""Fig. 6 — simulation waveforms: sync 333 MHz vs. event-driven async.

The paper's 10 us scenario: cold startup, normal load, a high-load step,
and recovery.  Reported quantities (annotated on the paper's waveforms):

- steady-state voltage ripple at normal load (paper: 0.43 V sync vs
  0.36 V async);
- inductor peak current at normal load (paper: 0.24 A vs 0.21 A);
- over-voltage behaviour after startup (sync shows *recurring* OV
  conditions; async resolves OV once and does not revisit it);
- overshoot at the exit from high load (async: none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analog.load import LoadProfile
from ..metrics.waveform import ascii_waveform, edge_count, ripple
from ..session import Session, default_session
from ..sim.units import MHZ, NS, UH, US
from ..system import BuckSystem, SystemConfig
from ..trace import TraceSet
from .report import format_table

#: paper-reported values for EXPERIMENTS.md comparison
PAPER_FIG6 = {
    "sync": {"ripple_v": 0.43, "peak_a": 0.24, "recurring_ov": True},
    "async": {"ripple_v": 0.36, "peak_a": 0.21, "recurring_ov": False},
}

#: scenario windows (seconds)
STARTUP = (0.0, 2 * US)
NORMAL = (2 * US, 6 * US)
HIGH_LOAD = (6 * US, 8 * US)
RECOVERY = (8 * US, 10 * US)


@dataclass
class Fig6Run:
    """Measured Fig. 6 quantities for one controller."""

    label: str
    ripple_v: float          #: peak-to-peak V_out at normal load
    peak_a: float            #: max |i_coil| at normal load
    startup_overshoot_v: float
    ov_events_startup: int
    ov_events_after_startup: int
    recovery_overshoot_v: float
    hl_events: int
    v_min_high_load: float
    trace: Optional[TraceSet] = None   #: full waveform set of the run
    system: Optional[BuckSystem] = None


def _fig6_config(controller: str, fsm_frequency: float, seed: int) -> SystemConfig:
    return SystemConfig(
        controller=controller,
        fsm_frequency=fsm_frequency,
        n_phases=4,
        inductance=1.0 * UH,   # fast-slew coil: latency differences resolve
        load=LoadProfile([(0.0, 6.0), (6 * US, 2.5), (8 * US, 6.0)]),
        sim_time=10 * US,
        dt=0.5 * NS,
        seed=seed,
        trace=True,
    )


def run_one(controller: str, fsm_frequency: float = 333 * MHZ,
            seed: int = 0, keep_system: bool = False,
            session: Optional[Session] = None) -> Fig6Run:
    """Run the Fig. 6 scenario for one controller and measure it.

    Waveform-level: the session builds a live traced system, and every
    quantity is read back from the run's :class:`~repro.trace.TraceSet`
    (the same reads work on a cached traced result — see
    :func:`measure_trace`).
    """
    session = session or default_session()
    config = _fig6_config(controller, fsm_frequency, seed)
    system = session.build(config)
    system.sim.run_until(config.sim_time)

    label = (controller if controller == "async"
             else f"sync@{fsm_frequency / MHZ:.0f}MHz")
    run = measure_trace(system.trace_set(), label)
    if keep_system:
        run.system = system
    return run


def measure_trace(trace: TraceSet, label: str,
                  v_ref: Optional[float] = None) -> Fig6Run:
    """Extract every Fig. 6 quantity from a recorded trace set.

    Works on a live system's :meth:`~repro.system.BuckSystem.trace_set`
    and, identically, on the ``result.trace`` of a cached
    ``Session.run(..., trace=True)`` — no re-simulation needed.  The
    overshoot reference defaults to the ``v_ref`` the run recorded in
    ``trace.meta`` (pass ``v_ref=`` explicitly only to override it).
    """
    if v_ref is None:
        v_ref = float(trace.meta.get("v_ref", 3.3))
    vp = trace.probe("v_load")
    ov, hl = trace.probe("ov"), trace.probe("hl")
    normal_peak = 0.0
    for name in trace.channels:
        if name.startswith("i_coil"):
            _, vals = trace.probe(name).window(*NORMAL)
            if len(vals):
                normal_peak = max(normal_peak, max(abs(v) for v in vals))
    _, hl_vals = vp.window(*HIGH_LOAD)
    return Fig6Run(
        label=label,
        ripple_v=ripple(vp, *NORMAL),
        peak_a=normal_peak,
        startup_overshoot_v=max(0.0, max(vp.window(*STARTUP)[1]) - v_ref),
        ov_events_startup=edge_count(ov, "rise", 0.0, STARTUP[1]),
        ov_events_after_startup=edge_count(ov, "rise", STARTUP[1], 10 * US),
        recovery_overshoot_v=max(0.0,
                                 max(vp.window(*RECOVERY)[1]) - v_ref),
        hl_events=edge_count(hl, "rise", 0.0, 10 * US),
        v_min_high_load=float(min(hl_vals)) if len(hl_vals) else 0.0,
        trace=trace,
    )


@dataclass
class Fig6Result:
    runs: List[Fig6Run]

    def run(self, label_prefix: str) -> Fig6Run:
        for r in self.runs:
            if r.label.startswith(label_prefix):
                return r
        raise KeyError(label_prefix)

    def format(self) -> str:
        header = ["quantity"] + [r.label for r in self.runs]
        rows = [
            ["V ripple, normal load (V)"] +
            [f"{r.ripple_v:.3f}" for r in self.runs],
            ["peak coil current, normal load (A)"] +
            [f"{r.peak_a:.3f}" for r in self.runs],
            ["startup overshoot above V_ref (V)"] +
            [f"{r.startup_overshoot_v:.3f}" for r in self.runs],
            ["OV events during startup"] +
            [str(r.ov_events_startup) for r in self.runs],
            ["OV events after startup"] +
            [str(r.ov_events_after_startup) for r in self.runs],
            ["overshoot after HL exit (V)"] +
            [f"{r.recovery_overshoot_v:.3f}" for r in self.runs],
            ["min V during high load (V)"] +
            [f"{r.v_min_high_load:.3f}" for r in self.runs],
        ]
        return format_table("Fig. 6: waveform comparison "
                            "(startup / normal / high load / recovery)",
                            header, rows)


def run_fig6(fsm_frequency: float = 333 * MHZ, seed: int = 0,
             keep_systems: bool = False,
             session: Optional[Session] = None) -> Fig6Result:
    """Run both controllers through the Fig. 6 scenario."""
    return Fig6Result([
        run_one("sync", fsm_frequency, seed, keep_systems, session=session),
        run_one("async", fsm_frequency, seed, keep_systems, session=session),
    ])


def render_waveforms(run: Fig6Run, width: int = 90) -> str:
    """ASCII view of V_load over the full scenario."""
    if run.trace is None:
        raise ValueError("run carries no trace set")
    return ascii_waveform(run.trace.probe("v_load"), 0.0, 10 * US,
                          width=width, title=f"V_load — {run.label}")


def export_vcd(run: Fig6Run, path: str) -> None:
    """Dump the Fig. 6 trace set as a VCD file for external viewers.

    Reads the recorded :class:`~repro.trace.TraceSet` — works equally on
    a fresh run and on one rebuilt from the result cache."""
    if run.trace is None:
        raise ValueError("run carries no trace set")
    run.trace.to_vcd(path)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    result = run_fig6(keep_systems=True)
    print(result.format())
    for r in result.runs:
        print()
        print(render_waveforms(r))
