"""Fig. 7 — peak current and inductor losses across coils and loads.

- **7a**: inductor peak current for 1-10 uH coils at 6 Ohm load, all five
  controllers.  Slower control reacts later to OC during the startup/HL
  transients, overshooting the current limit further — so it needs a
  bigger coil to respect a given peak budget.  The paper's trade-off:
  async holds 300 mA with a 1.8 uH coil where 333 MHz sync needs 6.8 uH
  and 100 MHz needs 10 uH.
- **7b**: the same comparison across 3-15 Ohm loads at 4.7 uH.
- **7c**: inductor conduction losses for 1-10 uH at 6 Ohm — DCR grows
  with L, so the smallest workable coil also loses the least.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analog.coil import library_values, make_coil, smallest_coil_for_peak
from ..scenarios.spec import Sweep
from ..session import Session, default_session
from ..sim.units import MHZ, NS, UH, US
from .report import Series, ascii_chart, format_series_table

#: the five controller variants of the evaluation
CONTROLLERS: List[Tuple[str, Optional[float]]] = [
    ("100MHz", 100 * MHZ),
    ("333MHz", 333 * MHZ),
    ("666MHz", 666 * MHZ),
    ("1GHz", 1000 * MHZ),
    ("ASYNC", None),
]

#: paper's Fig. 7a coil-size trade-off (inductance needed to stay below
#: the peak budget): async 1.8 uH, 666MHz 3.1 uH, 333MHz 6.8 uH,
#: 100MHz 10 uH
PAPER_FIG7A_TRADEOFF_UH = {
    "ASYNC": 1.8, "666MHz": 3.1, "333MHz": 6.8, "100MHz": 10.0,
}


@dataclass
class SweepResult:
    """One figure's data: label -> [(x, y)] + the measurement meta."""

    name: str
    x_label: str
    y_label: str
    series: Series = field(default_factory=dict)
    #: label -> per-point TraceSets (populated when run with trace=True)
    traces: Dict[str, List] = field(default_factory=dict)

    def ordered_at(self, x: float) -> List[str]:
        """Series labels sorted by value at ``x`` (ascending)."""
        vals = {}
        for label, pts in self.series.items():
            for px, py in pts:
                if abs(px - x) < 1e-12:
                    vals[label] = py
        return sorted(vals, key=lambda l: vals[l])

    def value(self, label: str, x: float) -> float:
        for px, py in self.series[label]:
            if abs(px - x) < 1e-12:
                return py
        raise KeyError(f"{label} has no point at {x}")

    def format(self, x_format: str = "{:.3g}",
               y_format: str = "{:.1f}") -> str:
        return format_series_table(self.name, self.x_label, x_format,
                                   y_format, self.series)

    def chart(self) -> str:
        return ascii_chart(self.series, title=self.name,
                           x_label=self.x_label, y_label=self.y_label)


def controller_axis() -> List[Tuple[str, Mapping[str, Any]]]:
    """The five controller variants as a labelled sweep axis."""
    return [
        (label, {"controller": "async"} if freq is None
         else {"controller": "sync", "fsm_frequency": freq})
        for label, freq in CONTROLLERS
    ]


def _coil_axis(l_values: List[float]) -> List[Tuple[str, Mapping[str, Any]]]:
    return [(f"{l / UH:g}uH", {"coil": make_coil(l)}) for l in l_values]


def default_l_values(quick: bool = False) -> List[float]:
    values = library_values()
    if quick:
        values = [v for v in values
                  if round(v / UH, 2) in (1.0, 2.25, 4.7, 10.0)]
    return values


def _sweep_figure(name: str, base: Dict[str, Any], inner_axis,
                  session: Session, track_energy: bool = True,
                  trace: bool = False):
    """Controller x inner-axis grid through the session's sweep engine.

    Returns the results grouped per controller label, inner axis fastest —
    the same nesting the sequential loops used, so series ordering (and,
    with the vectorized backend's bit-matched arithmetic, every number)
    is unchanged.  The session supplies backend, worker sharding, and the
    result cache (a re-run of the same grid is served from cache);
    ``trace=True`` attaches each point's waveform TraceSet (sharded and
    cached like the scalar numbers).
    """
    sweep = Sweep(base=base, name=name)
    sweep.grid(ctrl=controller_axis(), pt=inner_axis)
    points = session.sweep(sweep, track_energy=track_energy, trace=trace)
    n_inner = len(inner_axis)
    grouped = {}
    for row, (label, _) in enumerate(CONTROLLERS):
        start = row * n_inner
        grouped[label] = [p.result for p in points[start:start + n_inner]]
    return grouped


def _fill_series(result: SweepResult, grouped, xs, y_fn,
                 trace: bool) -> None:
    """Populate ``result.series`` (and, when traced, ``result.traces``)
    from the per-label run lists — shared by all three drivers."""
    for label, runs in grouped.items():
        result.series[label] = [(x, y_fn(run)) for x, run in zip(xs, runs)]
        if trace:
            result.traces[label] = [run.trace for run in runs]


def run_fig7a(l_values: Optional[List[float]] = None, r_load: float = 6.0,
              seed: int = 0, dt: float = 1 * NS, quick: bool = False,
              session: Optional[Session] = None,
              trace: bool = False) -> SweepResult:
    """Fig. 7a: peak inductor current vs. coil inductance at 6 Ohm.

    ``trace=True`` additionally collects each point's waveform
    :class:`~repro.trace.TraceSet` in ``result.traces[label]``."""
    session = session or default_session()
    l_values = l_values or default_l_values(quick)
    result = SweepResult("Fig. 7a: inductor peak current, "
                         f"{r_load:g} Ohm load",
                         "L (uH)", "peak current (mA)")
    base = {"n_phases": 4, "r_load": r_load, "sim_time": 10 * US,
            "dt": dt, "seed": seed}
    grouped = _sweep_figure("fig7a", base, _coil_axis(l_values), session,
                            track_energy=False, trace=trace)
    _fill_series(result, grouped, [l / UH for l in l_values],
                 lambda run: run.peak_coil_current * 1e3, trace)
    return result


def run_fig7b(r_values: Optional[List[float]] = None,
              inductance: float = 4.7 * UH, seed: int = 0,
              dt: float = 1 * NS, quick: bool = False,
              session: Optional[Session] = None,
              trace: bool = False) -> SweepResult:
    """Fig. 7b: peak inductor current vs. load resistance at 4.7 uH."""
    session = session or default_session()
    r_values = r_values or ([3.0, 6.0, 15.0] if quick
                            else [3.0, 6.0, 9.0, 12.0, 15.0])
    result = SweepResult("Fig. 7b: inductor peak current, "
                         f"{inductance / UH:g} uH coil",
                         "R_load (Ohm)", "peak current (mA)")
    base = {"n_phases": 4, "coil": make_coil(inductance),
            "sim_time": 10 * US, "dt": dt, "seed": seed}
    axis = [(f"{r:g}Ohm", {"r_load": r}) for r in r_values]
    grouped = _sweep_figure("fig7b", base, axis, session,
                            track_energy=False, trace=trace)
    _fill_series(result, grouped, r_values,
                 lambda run: run.peak_coil_current * 1e3, trace)
    return result


def run_fig7c(l_values: Optional[List[float]] = None, r_load: float = 6.0,
              seed: int = 0, dt: float = 1 * NS, quick: bool = False,
              session: Optional[Session] = None,
              trace: bool = False) -> SweepResult:
    """Fig. 7c: inductor conduction losses vs. coil inductance at 6 Ohm."""
    session = session or default_session()
    l_values = l_values or default_l_values(quick)
    result = SweepResult("Fig. 7c: inductor losses, "
                         f"{r_load:g} Ohm load",
                         "L (uH)", "losses (uW)")
    base = {"n_phases": 4, "r_load": r_load, "sim_time": 10 * US,
            "dt": dt, "seed": seed}
    grouped = _sweep_figure("fig7c", base, _coil_axis(l_values), session,
                            trace=trace)
    _fill_series(result, grouped, [l / UH for l in l_values],
                 lambda run: run.coil_loss_w * 1e6, trace)
    return result


def coil_tradeoff(fig7a: SweepResult, limit_ma: float) -> Dict[str, float]:
    """The paper's coil-size query: per controller, the smallest coil (uH)
    whose peak current stays at or below ``limit_ma``; inf if none."""
    out: Dict[str, float] = {}
    for label, pts in fig7a.series.items():
        peaks = {x * UH: y / 1e3 for x, y in pts}
        try:
            out[label] = smallest_coil_for_peak(peaks, limit_ma / 1e3) / UH
        except ValueError:
            out[label] = float("inf")
    return out


def format_tradeoff(tradeoff: Dict[str, float], limit_ma: float) -> str:
    lines = [f"smallest coil keeping peak <= {limit_ma:.0f} mA:"]
    for label in ("ASYNC", "1GHz", "666MHz", "333MHz", "100MHz"):
        if label in tradeoff:
            v = tradeoff[label]
            lines.append(f"  {label:>7}: "
                         + ("none in range" if v == float("inf")
                            else f"{v:.3g} uH"))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    a = run_fig7a()
    print(a.format())
    print(a.chart())
    print(format_tradeoff(coil_tradeoff(a, 310.0), 310.0))
    b = run_fig7b()
    print(b.format())
    c = run_fig7c()
    print(c.format())
