"""Text rendering shared by the experiment modules (paper-style tables)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]


def format_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width table with a title rule."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    rule = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title), fmt(header), rule]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)


def format_value_grid(title: str, corner: str, col_keys: Sequence,
                      rows: Sequence[Tuple[str, Dict]],
                      fmt: str = "{:.2f}",
                      col_headers: Optional[Sequence[str]] = None,
                      footers: Sequence[Sequence[str]] = ()) -> str:
    """The shared measurement-table shape: one label per row, one
    ``fmt``-formatted value cell per column.

    ``rows`` maps each row label to a ``{col_key: value}`` dict; missing
    or ``None`` cells render ``-``.  ``col_headers`` overrides the
    printed column titles (defaults to the keys); ``footers`` are
    preformatted extra rows appended below (summary/ratio lines).

    Both the figure-style series tables (:func:`format_series_table`)
    and the Table I renderer build on this.
    """
    headers = ([str(k) for k in col_keys] if col_headers is None
               else list(col_headers))
    body = []
    for label, cells in rows:
        body.append([label] + ["-" if cells.get(key) is None
                               else fmt.format(cells[key])
                               for key in col_keys])
    body.extend(list(footer) for footer in footers)
    return format_table(title, [corner] + headers, body)


def format_series_table(title: str, x_label: str, x_format: str,
                        y_format: str, series: Series) -> str:
    """One row per x value, one column per series (paper figure as table)."""
    labels = list(series)
    xs = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {label: dict(pts) for label, pts in series.items()}
    rows = [(x_format.format(x), {label: lookup[label].get(x)
                                  for label in labels}) for x in xs]
    return format_value_grid(title, x_label, labels, rows, fmt=y_format)


def ascii_chart(series: Series, width: int = 70, height: int = 16,
                title: str = "", x_label: str = "", y_label: str = "") -> str:
    """Multi-series scatter chart; each series gets a distinct glyph."""
    glyphs = "ox+*#@%&"
    all_pts = [(x, y) for pts in series.values() for x, y in pts]
    if not all_pts:
        raise ValueError("no data")
    xs, ys = zip(*all_pts)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (label, pts), glyph in zip(series.items(), glyphs):
        for x, y in pts:
            cx = int((x - x_lo) / x_span * (width - 1))
            cy = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - cy][cx] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:10.4g} +" + "-" * width + "+")
    lines.append(f"{'':11}{x_lo:<12.4g}{x_label:^{width - 24}}{x_hi:>12.4g}")
    legend = "   ".join(f"{glyph}={label}"
                        for (label, _), glyph in zip(series.items(), glyphs))
    lines.append(f"{'':11}{legend}")
    if y_label:
        lines.append(f"{'':11}y: {y_label}")
    return "\n".join(lines)
