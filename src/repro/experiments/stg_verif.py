"""Sec. IV verification claims — the formal half of the evaluation.

"We verified that all STGs are consistent, deadlock-free, and
output-persistent.  We also verified specific buck converter properties,
such as the absence of a short circuit in PMOS/NMOS transistors.  All the
gate-level implementations were also verified to be deadlock-free,
hazard-free and conformant to their STG specifications."

This experiment runs that whole pipeline on the model zoo and reports a
Workcraft-style summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..stg import (
    GateLevelCircuit,
    StateGraph,
    synthesize,
    verify,
    verify_circuit,
)
from ..stg.models import ALL_MODELS, NON_SI_MODELS
from .report import format_table


@dataclass
class ModelReport:
    name: str
    states: int
    spec_ok: bool
    synthesised: bool
    literals: int
    gate_level_ok: bool
    notes: str = ""


@dataclass
class StgVerifResult:
    reports: List[ModelReport] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(r.spec_ok and (r.gate_level_ok or not r.synthesised)
                   for r in self.reports)

    def format(self) -> str:
        header = ["module", "states", "spec checks", "synthesis",
                  "literals", "gate-level", "notes"]
        rows = []
        for r in self.reports:
            rows.append([
                r.name, str(r.states),
                "PASS" if r.spec_ok else "FAIL",
                "yes" if r.synthesised else "n/a",
                str(r.literals) if r.synthesised else "-",
                ("PASS" if r.gate_level_ok else "FAIL") if r.synthesised
                else "-",
                r.notes,
            ])
        return format_table(
            "Sec. IV: formal verification of the controller modules",
            header, rows)


def run_stg_verification() -> StgVerifResult:
    """Verify every model: spec sanity, synthesis, gate-level closure."""
    result = StgVerifResult()
    for name in sorted(ALL_MODELS):
        builder, mutex_pairs = ALL_MODELS[name]
        stg = builder()
        sg = StateGraph(stg)
        report = verify(stg, mutex_pairs=mutex_pairs)
        notes = []
        if name in NON_SI_MODELS:
            # arbitration primitive: output choice is resolved internally
            spec_ok = all(r.passed for r in report.results
                          if r.name != "output-persistence")
            notes.append("arbitration primitive")
        else:
            spec_ok = report.passed
        if mutex_pairs:
            notes.append("short-circuit safe")

        synthesised = False
        literals = 0
        gate_ok = False
        if name not in NON_SI_MODELS:
            try:
                synth = synthesize(stg)
                synthesised = True
                literals = synth.total_literals()
                circuit = GateLevelCircuit.from_synthesis(stg, synth)
                gate_ok = verify_circuit(stg, circuit).passed
            except Exception as err:  # CSC conflicts surface here
                notes.append(type(err).__name__)
        result.reports.append(ModelReport(
            name=name, states=len(sg), spec_ok=spec_ok,
            synthesised=synthesised, literals=literals,
            gate_level_ok=gate_ok, notes=", ".join(notes)))
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_stg_verification().format())
