"""Table I — comparison of controller reaction times.

Paper's table::

    Controller   HL (ns)  UV (ns)  OV (ns)  OC (ns)  ZC (ns)
    100MHz       25.00    25.00    25.00    25.00    25.00
    333MHz        7.50     7.50     7.50     7.50     7.50
    666MHz        3.75     3.75     3.75     3.75     3.75
    1GHz          2.50     2.50     2.50     2.50     2.50
    ASYNC         1.87     1.02     1.18     0.75     0.31
    Improvement over 333MHz: 4x 7x 6x 10x 24x

We *measure* every entry in simulation (sweeping the stimulus phase
against the clock for the synchronous rows) rather than assuming the
2.5-Tclk analytic bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.reaction import CONDITIONS, measure_one
from ..scenarios.spec import Sweep
from ..session import Session, default_session
from ..sim.units import MHZ, NS
from .report import format_value_grid

#: the paper's Table I, for paper-vs-measured reporting (nanoseconds)
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "100MHz": {c: 25.00 for c in CONDITIONS},
    "333MHz": {c: 7.50 for c in CONDITIONS},
    "666MHz": {c: 3.75 for c in CONDITIONS},
    "1GHz": {c: 2.50 for c in CONDITIONS},
    "ASYNC": {"HL": 1.87, "UV": 1.02, "OV": 1.18, "OC": 0.75, "ZC": 0.31},
}

SYNC_FREQUENCIES: List[Tuple[str, float]] = [
    ("100MHz", 100 * MHZ),
    ("333MHz", 333 * MHZ),
    ("666MHz", 666 * MHZ),
    ("1GHz", 1000 * MHZ),
]


@dataclass
class Table1Result:
    """Measured reaction times in nanoseconds: {row: {condition: ns}}."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def improvement_over_333(self) -> Dict[str, float]:
        sync = self.rows["333MHz"]
        a = self.rows["ASYNC"]
        return {c: sync[c] / a[c] for c in CONDITIONS}

    def format(self) -> str:
        order = [name for name, _ in SYNC_FREQUENCIES] + ["ASYNC"]
        imp = self.improvement_over_333
        return format_value_grid(
            "Table I: reaction time comparison", "Controller",
            list(CONDITIONS),
            [(label, self.rows[label]) for label in order],
            fmt="{:.2f}",
            col_headers=[f"{c} (ns)" for c in CONDITIONS],
            footers=[["Improvement over 333MHz"]
                     + [f"{imp[c]:.0f}x" for c in CONDITIONS]])


def _row_sweep(label: str, frequency: Optional[float],
               n_offsets: int) -> Sweep:
    """The (condition x stimulus offset) measurement grid for one row.

    The stimulus-vs-clock offsets and the five conditions are enumerated
    through the shared :class:`~repro.scenarios.spec.Sweep` machinery
    (``x_*`` extras: the reaction harness drives sensor stubs, not a full
    :class:`SystemConfig` scenario).  Async rows are phase-free, so a
    single offset suffices.
    """
    if frequency is not None:
        period = 1.0 / frequency
        offsets = [period * i / n_offsets for i in range(n_offsets)]
    else:
        offsets = [0.0]
    return (Sweep(name=f"table1.{label}")
            .grid(x_condition=list(CONDITIONS), x_offset=offsets))


def _measure_task(task: Tuple[Optional[float], str, float]) -> float:
    """One (frequency, condition, offset) measurement — module-level so
    the process pool can ship it by reference."""
    frequency, condition, offset = task
    return measure_one("sync" if frequency is not None else "async",
                       frequency, condition, offset)


def run_table1(n_offsets: int = 8,
               frequencies: Optional[List[Tuple[str, float]]] = None,
               session: Optional[Session] = None) -> Table1Result:
    """Measure the full table.

    ``n_offsets`` controls how finely the stimulus phase is swept against
    the synchronous clock (more offsets -> tighter worst case).
    ``session`` supplies the worker pool (:meth:`Session.map` fans the
    independent (row, condition, offset) measurements across processes);
    the worst-case reduction per cell is order-independent, so the table
    is identical to the inline run.  Defaults to the default session.
    """
    session = session or default_session()
    result = Table1Result()
    rows = list(frequencies or SYNC_FREQUENCIES) + [("ASYNC", None)]
    tasks: List[Tuple[Optional[float], str, float]] = []
    cells: List[Tuple[str, str]] = []
    for label, freq in rows:
        for spec in _row_sweep(label, freq, n_offsets).specs():
            tasks.append((freq, spec.overrides["x_condition"],
                          spec.overrides["x_offset"]))
            cells.append((label, spec.overrides["x_condition"]))
    latencies = session.map(_measure_task, tasks)
    worst: Dict[str, Dict[str, float]] = {label: {} for label, _ in rows}
    for (label, condition), latency in zip(cells, latencies):
        row = worst[label]
        row[condition] = max(row.get(condition, 0.0), latency)
    for label, _ in rows:
        result.rows[label] = {c: worst[label][c] / NS for c in CONDITIONS}
    return result


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_table1().format())
