"""Static analyzer for the repo's bit-identity invariants.

Four rule families, each machine-checking a convention the reproduction
otherwise enforces by reviewer discipline:

``keys`` (K01–K06)
    Every ``SystemConfig``/``SteppingPolicy`` field is consumed by
    ``cache_key`` and ``lockstep_key`` or reasoned away with a
    ``# lint: nokey(field: reason)`` annotation; ``RunResult``'s
    serialized shape is pinned to ``FORMAT_VERSION`` via
    ``tests/golden/format_lock.json``.

``parity`` (P01–P03)
    Paired scalar/vector implementations (crossing bounds, RK2 steps,
    fused kernels, gating entry conditions, clock replay) carry locked
    AST fingerprints; a one-sided edit fails until the twin moves too.

``determinism`` (D01–D04)
    No unseeded RNG, wall-clock reads, unordered iteration, or
    ``id()``-based ordering in result-producing modules.

``purity`` (G01–G03)
    Code reachable from the clock-gating paths performs no RNG draws
    and no dispatching signal writes, keeping the "skipped edges are
    provably no-op" argument machine-checked.

Run ``python -m repro.lint`` (see ``--help``); suppress one finding
with ``# lint: ok(RULE: reason)`` on its line; ack intentional paired
edits or format bumps with ``--update-locks``.
"""

from .config import LintConfig, default_config_for
from .engine import LintReport, build_index, run_lint, update_locks
from .findings import FAMILIES, RULES, Finding, explain

__all__ = [
    "LintConfig", "default_config_for", "LintReport", "build_index",
    "run_lint", "update_locks", "FAMILIES", "RULES", "Finding", "explain",
]
