"""``python -m repro.lint`` entry point."""

import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:
    # stdout went away mid-report (e.g. piped into `head`); findings
    # already printed are all the consumer wanted
    code = 0
sys.exit(code)
