"""Command line front door: ``python -m repro.lint [PATH] [options]``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/configuration
error.  ``--json FILE`` writes the machine-readable report (CI uploads
it as an artifact); ``--update-locks`` regenerates the parity and
serialization-format lockfiles — the explicit ack for intentional
paired edits and format bumps; ``--explain RULE`` prints the catalog
entry with a miniature bad example.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import default_config_for
from .engine import run_lint, update_locks
from .findings import FAMILIES, explain, rule_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & cache-soundness static analyzer for "
                    "the repro package.")
    parser.add_argument(
        "path", nargs="?", default=None,
        help="package root to scan: .../repro, a src/ directory, or a "
             "repo root (default: the installed repro package)")
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the JSON report to FILE ('-' for stdout)")
    parser.add_argument(
        "--update-locks", action="store_true",
        help="regenerate tests/golden/{parity,format}_lock.json from "
             "the current tree (the explicit ack for paired edits and "
             "FORMAT_VERSION bumps)")
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print the catalog entry for one rule id (e.g. K01) and "
             "exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id with its title and exit")
    parser.add_argument(
        "--family", action="append", choices=FAMILIES, default=None,
        help="run only this rule family (repeatable; default: all)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="print findings only, no summary line")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        from .findings import RULES
        for rule_id in rule_ids():
            rule = RULES[rule_id]
            print(f"{rule_id} [{rule.family}] {rule.title}")
        return 0

    if args.explain is not None:
        text = explain(args.explain)
        if text is None:
            print(f"unknown rule id {args.explain!r}; known: "
                  f"{', '.join(rule_ids())}", file=sys.stderr)
            return 2
        print(text)
        return 0

    if args.path is None:
        package_root = Path(__file__).resolve().parent.parent
        path = package_root
    else:
        path = Path(args.path)
    try:
        config = default_config_for(path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_locks:
        try:
            written = update_locks(config)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for label, where in sorted(written.items()):
            print(f"wrote {label}: {where}")
        return 0

    families = tuple(args.family) if args.family else FAMILIES
    report = run_lint(config, families)

    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=1, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")

    for finding in report.findings:
        print(finding.render())
    if not args.quiet:
        status = "clean" if report.clean else \
            f"{len(report.findings)} finding(s)"
        print(f"repro.lint: {status} — {report.modules_scanned} modules, "
              f"families: {', '.join(report.families)}, "
              f"{len(report.suppressed)} suppressed")
    return 0 if report.clean else 1
