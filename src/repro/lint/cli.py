"""Command line front door: ``python -m repro.lint [PATH] [options]``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/configuration
error.  ``--json FILE`` writes the machine-readable report (CI uploads
it as an artifact); ``--sarif FILE`` writes a SARIF 2.1.0 log for
GitHub code-scanning annotations; ``--bench-json FILE`` records the
analyzer's own wall time and finding counts (the perf-trajectory
artifact); ``--update-locks`` regenerates the parity,
serialization-format, and wire-schema lockfiles — the explicit ack for
intentional paired edits, format bumps, and protocol changes;
``--explain RULE`` prints the catalog entry with a miniature bad
example.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .config import default_config_for
from .engine import run_lint, update_locks
from .findings import FAMILIES, explain, rule_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & cache-soundness static analyzer for "
                    "the repro package.")
    parser.add_argument(
        "path", nargs="?", default=None,
        help="package root to scan: .../repro, a src/ directory, or a "
             "repo root (default: the installed repro package)")
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the JSON report to FILE ('-' for stdout)")
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="write a SARIF 2.1.0 log to FILE (GitHub code-scanning "
             "annotations)")
    parser.add_argument(
        "--bench-json", metavar="FILE", default=None,
        help="record the analyzer's wall time and finding counts to "
             "FILE (perf-trajectory artifact)")
    parser.add_argument(
        "--update-locks", action="store_true",
        help="regenerate tests/golden/{parity,format,wire}_lock.json "
             "from the current tree (the explicit ack for paired "
             "edits, FORMAT_VERSION bumps, and wire-schema changes)")
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print the catalog entry for one rule id (e.g. K01) and "
             "exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id with its title and exit")
    parser.add_argument(
        "--family", action="append", choices=FAMILIES, default=None,
        help="run only this rule family (repeatable; default: all)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="print findings only, no summary line")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        from .findings import RULES
        for rule_id in rule_ids():
            rule = RULES[rule_id]
            print(f"{rule_id} [{rule.family}] {rule.title}")
        return 0

    if args.explain is not None:
        text = explain(args.explain)
        if text is None:
            print(f"unknown rule id {args.explain!r}; known: "
                  f"{', '.join(rule_ids())}", file=sys.stderr)
            return 2
        print(text)
        return 0

    if args.path is None:
        package_root = Path(__file__).resolve().parent.parent
        path = package_root
    else:
        path = Path(args.path)
    try:
        config = default_config_for(path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_locks:
        try:
            written = update_locks(config)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for label, where in sorted(written.items()):
            print(f"wrote {label}: {where}")
        return 0

    families = tuple(args.family) if args.family else FAMILIES
    t0 = time.perf_counter()
    report = run_lint(config, families)
    wall_s = time.perf_counter() - t0

    if args.bench_json is not None:
        by_rule: dict = {}
        for finding in report.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        bench = {
            "bench": "lint_self_run",
            "wall_s": round(wall_s, 4),
            "modules_scanned": report.modules_scanned,
            "families": list(report.families),
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "by_rule": by_rule,
        }
        Path(args.bench_json).write_text(
            json.dumps(bench, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")

    if args.sarif is not None:
        from .sarif import write_sarif
        write_sarif(Path(args.sarif), report, config)

    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=1, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")

    for finding in report.findings:
        print(finding.render())
    if not args.quiet:
        status = "clean" if report.clean else \
            f"{len(report.findings)} finding(s)"
        print(f"repro.lint: {status} — {report.modules_scanned} modules, "
              f"families: {', '.join(report.families)}, "
              f"{len(report.suppressed)} suppressed")
    return 0 if report.clean else 1
