"""Analyzer configuration and the in-source annotation format.

Two comment annotations are recognised, both requiring a reason so the
allowlist stays self-documenting:

``# lint: nokey(field[, field...]: reason)``
    Placed inside a key function's body (``cache_key`` or
    ``lockstep_key``); declares that the named SystemConfig fields are
    *intentionally* not part of that key.  The key-completeness rules
    treat annotated fields as accounted for; a stale annotation (field
    gone, or actually consumed) is itself a finding (K06).

``# lint: ok(RULE: reason)``
    Placed on the exact line of a finding; suppresses that one finding.
    Suppressions are counted and carried in the JSON report, never
    silently dropped.

``# lint: guarded_by(self._lock: reason)``
    Placed on an attribute-initializing assignment (``self._events =
    []`` in ``__init__``); declares that every later read/write of that
    attribute must happen while ``with self._lock:`` is held (rule
    L01).  The lock is named as the access expression used at the use
    sites — ``self._lock``, ``self._cond``, or the factory form
    ``self._writer_lock()``.

:class:`LintConfig` names every repo-specific anchor (which module holds
the config dataclass, which functions are the keys, which callables are
gating roots, where the lockfiles live) so the test suite can point the
same rules at miniature fixture trees.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: paired scalar/vector callables kept bit-identical op-for-op.  Each
#: member is ``(module relpath, qualname)``; qualnames are ``Class.
#: method`` or a module-level function name.  Editing one member without
#: the other trips P01; editing both without refreshing the lockfile
#: trips P02 (`python -m repro.lint --update-locks` is the ack).
DEFAULT_PARITY_PAIRS: Tuple[Tuple[str, Tuple[str, str], Tuple[str, str]],
                            ...] = (
    ("power-stage-step",
     ("analog/buck.py", "MultiphasePowerStage.step"),
     ("scenarios/vector_stage.py", "VectorizedPowerStage.step")),
    ("stage-derivatives",
     ("analog/buck.py", "MultiphasePowerStage._derivatives"),
     ("scenarios/vector_stage.py", "VectorizedPowerStage._derivatives")),
    ("crossing-bound",
     ("analog/solver.py", "AnalogSolver.crossing_bound"),
     ("scenarios/vector_solver.py", "VectorizedSolver.lane_crossing_bound")),
    ("crossing-cap",
     ("analog/solver.py", "AnalogSolver._crossing_cap"),
     ("scenarios/vector_solver.py", "VectorizedSolver._crossing_caps")),
    ("adaptive-plan",
     ("analog/solver.py", "AnalogSolver._plan"),
     ("scenarios/vector_solver.py", "VectorizedSolver._advance_adaptive")),
    ("adaptive-commit",
     ("analog/solver.py", "AnalogSolver._commit"),
     ("scenarios/vector_solver.py", "VectorizedSolver._advance_adaptive")),
    ("note-commutation",
     ("analog/solver.py", "AnalogSolver.note_commutation"),
     ("scenarios/vector_solver.py", "VectorizedSolver.note_commutation")),
    ("fixed-tick",
     ("analog/solver.py", "AnalogSolver._tick"),
     ("scenarios/fastpath.py", "_make_numpy_tick")),
    ("fused-kernel",
     ("scenarios/fastpath.py", "_make_numpy_tick"),
     ("scenarios/fastpath.py", "_get_kernel")),
    ("comparator-sample",
     ("scenarios/vector_solver.py", "VectorComparatorBank.sample"),
     ("scenarios/fastpath.py", "_get_kernel")),
    ("gating-entry",
     ("control/sync_controller.py", "SyncMultiphaseController._step_phase"),
     ("control/sync_controller.py", "SyncMultiphaseController._maybe_gate")),
    ("clock-replay",
     ("digital/clock.py", "Clock._rise"),
     ("digital/clock.py", "Clock.fast_forward")),
)

#: entry points of the clock-gating machinery; everything directly
#: callable from them must stay free of RNG draws and dispatching
#: signal writes (rules G01/G02).
DEFAULT_GATING_ROOTS: Tuple[Tuple[str, str], ...] = (
    ("digital/clock.py", "Clock.suspend"),
    ("digital/clock.py", "Clock.fast_forward"),
    ("control/sync_controller.py", "SyncMultiphaseController._maybe_gate"),
    ("control/sync_controller.py", "SyncMultiphaseController._resume"),
    ("control/sync_controller.py", "SyncMultiphaseController._on_wake_edge"),
    ("control/sync_controller.py", "SyncMultiphaseController._on_act_edge"),
    ("control/sync_controller.py", "SyncMultiphaseController._on_wake_timer"),
    ("analog/solver.py", "AnalogSolver.crossing_bound"),
    ("scenarios/vector_solver.py", "VectorizedSolver.lane_crossing_bound"),
)


@dataclass(frozen=True)
class LintConfig:
    """Everything repo-specific the rules need, overridable for tests."""

    #: package source root (the directory containing ``system.py``)
    root: Path = Path(".")
    #: module paths below, all relative to ``root``
    config_module: str = "system.py"
    config_class: str = "SystemConfig"
    result_class: str = "RunResult"
    policy_module: str = "analog/stepping.py"
    policy_class: str = "SteppingPolicy"
    #: maps a policy field to the config field it is derived from when
    #: the names differ (SteppingPolicy.mode <- SystemConfig.stepping)
    policy_field_aliases: Dict[str, str] = field(
        default_factory=lambda: {"mode": "stepping"})
    cache_module: str = "session/cache.py"
    cache_key_func: str = "cache_key"
    format_version_name: str = "FORMAT_VERSION"
    float_fields_name: str = "_FLOAT_FIELDS"
    int_fields_name: str = "_INT_FIELDS"
    #: RunResult fields legitimately outside the numeric payload lists
    #: (serialized separately by the cache layer)
    result_nonnumeric_fields: Tuple[str, ...] = ("controller", "cycles",
                                                 "trace")
    lockstep_module: str = "scenarios/parallel.py"
    lockstep_key_func: str = "lockstep_key"
    #: directories/files (relative to root) scanned by the determinism
    #: and purity families — the result-producing modules
    scan_paths: Tuple[str, ...] = ("system.py", "sim", "analog", "digital",
                                   "a2a", "control", "scenarios", "session",
                                   "trace", "serve", "obs")
    #: modules (top-level package dirs or module files, relative to
    #: root) whose *job* is wall-clock measurement: D02 does not fire in
    #: them, and D05 findings whose taint is wall-clock alone are
    #: dropped there.  Module-scoped on purpose — per-line ``# lint:
    #: ok`` spam in an observability package would bury real findings.
    #: Rule D06 separately proves nothing observability-derived reaches
    #: the cache/lockstep keys.
    wallclock_modules: Tuple[str, ...] = ("obs",)
    parity_pairs: Tuple[Tuple[str, Tuple[str, str], Tuple[str, str]], ...] \
        = DEFAULT_PARITY_PAIRS
    gating_roots: Tuple[Tuple[str, str], ...] = DEFAULT_GATING_ROOTS
    #: modules whose JSON/SSE dict literals are the *server-side* wire
    #: surface (every dict literal with a constant "event" key, plus
    #: literals passed to the handler's ``_json``)
    wire_emit_modules: Tuple[str, ...] = ("serve/jobs.py", "serve/sse.py",
                                          "serve/server.py")
    #: named functions whose return dict literals / subscript stores are
    #: also server emissions: ``(module, qualname)``
    wire_emit_functions: Tuple[Tuple[str, str], ...] = (
        ("serve/jobs.py", "Job.snapshot"),)
    #: modules whose constant-key subscript loads / ``.get()`` calls are
    #: the *client-side* reads
    wire_reader_modules: Tuple[str, ...] = ("serve/client.py",)
    #: the submission direction: the client-side encoder (its constant
    #: subscript stores are fields the client sends) and the
    #: server-side decoder (its reads + known-field set literal)
    wire_submit_encoder: Tuple[str, str] = ("serve/protocol.py",
                                            "job_request")
    wire_submit_decoder: Tuple[str, str] = ("serve/protocol.py",
                                            "decode_job")
    #: directory holding parity_lock.json / format_lock.json
    locks_dir: Path = Path("tests/golden")

    @property
    def parity_lock_path(self) -> Path:
        return Path(self.locks_dir) / "parity_lock.json"

    @property
    def format_lock_path(self) -> Path:
        return Path(self.locks_dir) / "format_lock.json"

    @property
    def wire_lock_path(self) -> Path:
        return Path(self.locks_dir) / "wire_lock.json"

    def with_root(self, root: Path) -> "LintConfig":
        return replace(self, root=Path(root))


def default_config_for(path: Path) -> LintConfig:
    """Resolve a CLI path argument into a :class:`LintConfig`.

    Accepts the package root itself (``.../repro``), a ``src`` directory
    containing it, or a repo root containing ``src/repro``.  The
    lockfiles are looked up in ``<repo>/tests/golden`` when that layout
    is recognisable, falling back to a ``tests/golden`` sibling of the
    package's parent.
    """
    path = Path(path).resolve()
    for candidate in (path, path / "repro", path / "src" / "repro"):
        if (candidate / "system.py").is_file():
            root = candidate
            break
    else:
        raise FileNotFoundError(
            f"no repro package (system.py) found under {path}")
    # <repo>/src/repro -> <repo>/tests/golden
    repo = root.parent.parent if root.parent.name == "src" else root.parent
    return LintConfig(root=root, locks_dir=repo / "tests" / "golden")


# ---------------------------------------------------------------------------
# Annotation parsing
# ---------------------------------------------------------------------------
_NOKEY_RE = re.compile(
    r"#\s*lint:\s*nokey\(\s*([A-Za-z_][A-Za-z0-9_,\s]*?)\s*:\s*(.+)\)\s*$")
_NOKEY_BARE_RE = re.compile(r"#\s*lint:\s*nokey\(")
_OK_RE = re.compile(
    r"#\s*lint:\s*ok\(\s*([A-Za-z]\d+)\s*:\s*(.+)\)\s*$")
_OK_BARE_RE = re.compile(r"#\s*lint:\s*ok\(")


@dataclass(frozen=True)
class NokeyEntry:
    """One parsed ``nokey`` annotation line."""

    fields: Tuple[str, ...]
    reason: str
    line: int


def parse_nokey(lines: Sequence[str], start: int, end: int
                ) -> Tuple[List[NokeyEntry], List[int]]:
    """Collect ``nokey`` annotations on lines ``start..end`` (1-based,
    inclusive).  Returns ``(entries, malformed_line_numbers)`` —
    malformed means the marker is present but fields/reason don't parse.
    """
    entries: List[NokeyEntry] = []
    malformed: List[int] = []
    for lineno in range(start, min(end, len(lines)) + 1):
        text = lines[lineno - 1]
        match = _NOKEY_RE.search(text)
        if match:
            fields = tuple(f.strip() for f in match.group(1).split(",")
                           if f.strip())
            reason = match.group(2).strip()
            if fields and reason:
                entries.append(NokeyEntry(fields, reason, lineno))
            else:
                malformed.append(lineno)
        elif _NOKEY_BARE_RE.search(text):
            malformed.append(lineno)
    return entries, malformed


def parse_suppression(line_text: str) -> Optional[Tuple[str, str]]:
    """``(rule_id, reason)`` if the line carries a well-formed
    ``# lint: ok(RULE: reason)`` marker, else ``None``."""
    match = _OK_RE.search(line_text)
    if match:
        return match.group(1).upper(), match.group(2).strip()
    return None


def has_bare_suppression(line_text: str) -> bool:
    """The ``ok(`` marker is present but doesn't parse (X01 material)."""
    return bool(_OK_BARE_RE.search(line_text)) \
        and parse_suppression(line_text) is None


_GUARD_RE = re.compile(
    r"#\s*lint:\s*guarded_by\(\s*([A-Za-z_][A-Za-z0-9_.]*(?:\(\))?)"
    r"\s*:\s*(.+)\)\s*$")
_GUARD_BARE_RE = re.compile(r"#\s*lint:\s*guarded_by\(")


def parse_guarded_by(line_text: str) -> Optional[Tuple[str, str]]:
    """``(lock_expr, reason)`` if the line carries a well-formed
    ``# lint: guarded_by(self._lock: reason)`` marker, else ``None``."""
    match = _GUARD_RE.search(line_text)
    if match:
        return match.group(1), match.group(2).strip()
    return None


def has_bare_guard(line_text: str) -> bool:
    """The ``guarded_by(`` marker is present but doesn't parse."""
    return bool(_GUARD_BARE_RE.search(line_text)) \
        and parse_guarded_by(line_text) is None
