"""Intra-procedural dataflow core shared by the v2 rule families.

One :class:`FunctionFlow` per code unit (module top level, each
function/method) built from three classic pieces:

* a statement-level **control-flow graph** — one node per simple
  statement or compound-statement header, with branch/loop/try edges
  approximated conservatively (every try-body statement may reach every
  handler).  Each node also records the **held-lock stack** implied by
  enclosing ``with <lock>:`` statements, which is exact for
  ``threading`` primitives because ``with`` guarantees release on every
  exit path;
* **reaching definitions** — a forward may-analysis over the CFG
  (gen/kill worklist), exposed as def-use chains so rules can name the
  line a value was born on;
* a small **abstract-value lattice**: every name maps to a set of taint
  tags (:data:`TAG_SET`, :data:`TAG_LISTING`, :data:`TAG_RNG`,
  :data:`TAG_TIME`) joined by set union, computed to a fixpoint so tags
  survive loops, reassignment chains, transparent wrappers
  (``list``/``tuple``/``enumerate``/``reversed``/``iter``),
  comprehensions, set algebra, dict views, and container mutation
  (``d[k] = tainted`` taints ``d``; ``x.extend(tainted)`` taints ``x``).
  ``sorted(...)`` is the sanitizer: its result always drops the
  ordering tags.

Helper-return **summaries** go one level deep: a same-module,
module-level function whose return expressions carry tags under an
empty environment contributes those tags at its call sites.

Everything here is rule-agnostic; ``determinism``/``locks`` interpret
the tags and held-lock stacks.  Analyses are cached per code unit on
the :class:`~repro.lint.engine.ModuleInfo` so families share the work.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .engine import ModuleInfo, dotted_name

# ---------------------------------------------------------------------------
# Taint tags
# ---------------------------------------------------------------------------
#: value came from a set literal/constructor/comprehension or set algebra
TAG_SET = "set-order"
#: value came from a directory listing (glob/iterdir/scandir/listdir)
TAG_LISTING = "fs-order"
#: value came from an unseeded / global-state RNG draw
TAG_RNG = "unseeded-rng"
#: value came from the wall clock
TAG_TIME = "wall-clock"
#: value came out of the observability layer (``obs.*`` calls) —
#: deliberately NOT in :data:`ALL_TAGS`: obs values are fine on wire
#: and hash sinks in general (receipts are hashed and serialized), but
#: rule D06 forbids them in ``cache_key``/``lockstep_key`` specifically
TAG_OBS = "obs-value"

#: tags whose hazard is *iteration order* (D03 sinks)
ORDER_TAGS = frozenset({TAG_SET, TAG_LISTING})
#: every tag is a hazard at a key/serialization sink (D05)
ALL_TAGS = frozenset({TAG_SET, TAG_LISTING, TAG_RNG, TAG_TIME})

_EMPTY: FrozenSet[str] = frozenset()

_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed",
                                   "iter"})
_LISTING_METHODS = frozenset({"glob", "rglob", "iglob", "iterdir",
                              "scandir", "listdir"})
_SET_ALGEBRA = frozenset({"union", "intersection", "difference",
                          "symmetric_difference"})
_VIEW_METHODS = frozenset({"keys", "values", "items", "copy"})
#: receiver-mutating methods that fold argument tags into the receiver
_MUTATORS = frozenset({"append", "extend", "add", "insert", "update",
                       "setdefault"})

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
})
_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "expovariate", "choice", "choices", "shuffle", "sample", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "lognormvariate",
    "weibullvariate", "getrandbits",
})
_SEEDABLE_CTORS = frozenset({"Random", "default_rng", "PCG64",
                             "SeedSequence", "RandomState", "Generator"})

#: ``with`` context expressions treated as lock acquisitions: the last
#: dotted segment must look like a synchronization primitive.  Plain
#: resource managers (``open``, ``tempfile``, HTTP responses) must NOT
#: count as held locks or L03 would flag ordinary blocking I/O.
_LOCKISH_MARKERS = ("lock", "cond", "mutex", "sem", "rlock")


def lock_name_of(ctx: ast.expr) -> Optional[str]:
    """Dotted name of a ``with`` context expression when it acquires a
    lock-like primitive: ``self._lock``, ``self._cond``, or the
    zero-argument factory form ``self._writer_lock()``."""
    call_suffix = ""
    if isinstance(ctx, ast.Call) and not ctx.args and not ctx.keywords:
        ctx = ctx.func
        call_suffix = "()"
    dotted = dotted_name(ctx)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1].lower()
    if any(marker in last for marker in _LOCKISH_MARKERS):
        return dotted + call_suffix
    return None


# ---------------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------------
@dataclass
class Definition:
    """One binding of a local name."""

    name: str
    node: int                      #: CFG node index of the binding
    lineno: int
    value: Optional[ast.expr]      #: RHS expression when one exists
    kind: str                      #: assign/aug/mutate/for/with/param/...

    @property
    def kills(self) -> bool:
        # mutations and aug-assigns read the old value: they accumulate
        # tags instead of replacing the binding
        return self.kind not in ("mutate", "aug")


@dataclass
class CFGNode:
    """One simple statement or compound-statement header."""

    index: int
    stmt: ast.stmt
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: lock-like ``with`` contexts held at this statement, outermost
    #: first (syntactic dotted names; ``locks`` normalizes identities)
    held_locks: Tuple[str, ...] = ()
    defs: List[Definition] = field(default_factory=list)


class _LoopCtx:
    def __init__(self, header: int):
        self.header = header
        self.breaks: List[int] = []


class _CFGBuilder:
    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.loops: List[_LoopCtx] = []

    def _new(self, stmt: ast.stmt, preds: Sequence[int],
             held: Tuple[str, ...]) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, held_locks=held)
        node.defs = _defs_of(stmt, node.index)
        self.nodes.append(node)
        for pred in preds:
            self.nodes[pred].succs.append(node.index)
            node.preds.append(pred)
        return node.index

    def build(self, body: Sequence[ast.stmt], preds: List[int],
              held: Tuple[str, ...]) -> List[int]:
        """Thread ``body`` after ``preds``; returns the dangling exits."""
        for stmt in body:
            preds = self._stmt(stmt, preds, held)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: List[int],
              held: Tuple[str, ...]) -> List[int]:
        if isinstance(stmt, ast.If):
            header = self._new(stmt, preds, held)
            exits = self.build(stmt.body, [header], held)
            if stmt.orelse:
                exits += self.build(stmt.orelse, [header], held)
            else:
                exits.append(header)
            return exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new(stmt, preds, held)
            ctx = _LoopCtx(header)
            self.loops.append(ctx)
            back = self.build(stmt.body, [header], held)
            self.loops.pop()
            for node in back:
                self.nodes[node].succs.append(header)
                self.nodes[header].preds.append(node)
            exits = [header] + ctx.breaks
            if stmt.orelse:
                exits = self.build(stmt.orelse, exits, held)
            return exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = self._new(stmt, preds, held)
            inner = held
            for item in stmt.items:
                name = lock_name_of(item.context_expr)
                if name is not None:
                    inner = inner + (name,)
            return self.build(stmt.body, [header], inner)
        if isinstance(stmt, ast.Try):
            entry = list(preds)
            body_start = len(self.nodes)
            exits = self.build(stmt.body, preds, held)
            # a handler can run after ANY body statement — or before the
            # first one completes, so the pre-try state reaches it too
            body_nodes = entry + list(range(body_start, len(self.nodes)))
            handler_exits: List[int] = []
            for handler in stmt.handlers:
                h_preds = list(body_nodes)
                if handler.name:
                    # bind the exception name on the first handler node;
                    # use a synthetic pass-through on the handler itself
                    marker = self._new(handler, h_preds, held)
                    self.nodes[marker].defs.append(Definition(
                        handler.name, marker, handler.lineno, None,
                        "except"))
                    h_preds = [marker]
                handler_exits += self.build(handler.body, h_preds, held)
            if stmt.orelse:
                exits = self.build(stmt.orelse, exits, held)
            exits = exits + handler_exits
            if stmt.finalbody:
                exits = self.build(stmt.finalbody, exits, held)
            return exits
        # ---- simple statements --------------------------------------
        node = self._new(stmt, preds, held)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1].breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                header = self.loops[-1].header
                self.nodes[node].succs.append(header)
                self.nodes[header].preds.append(node)
            return []
        return [node]


def _target_defs(target: ast.expr, node: int, lineno: int,
                 value: Optional[ast.expr], kind: str) -> List[Definition]:
    if isinstance(target, ast.Name):
        return [Definition(target.id, node, lineno, value, kind)]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[Definition] = []
        for i, elt in enumerate(target.elts):
            part: Optional[ast.expr] = None
            if (isinstance(value, ast.Tuple)
                    and len(value.elts) == len(target.elts)
                    and not isinstance(elt, ast.Starred)):
                part = value.elts[i]
            inner = elt.value if isinstance(elt, ast.Starred) else elt
            out += _target_defs(inner, node, lineno, part, "unpack")
        return out
    if isinstance(target, ast.Starred):
        return _target_defs(target.value, node, lineno, None, "unpack")
    # attribute / subscript store: a weak update of the base name
    base = target
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        base = base.value
    if isinstance(base, ast.Name):
        return [Definition(base.id, node, lineno, value, "mutate")]
    return []


def _defs_of(stmt: ast.stmt, node: int) -> List[Definition]:
    out: List[Definition] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            out += _target_defs(target, node, stmt.lineno, stmt.value,
                                "assign")
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        out += _target_defs(stmt.target, node, stmt.lineno, stmt.value,
                            "assign")
    elif isinstance(stmt, ast.AugAssign):
        out += _target_defs(stmt.target, node, stmt.lineno, stmt.value,
                            "aug")
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out.append(Definition(target.id, node, stmt.lineno, None,
                                      "del"))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            name = alias.asname or alias.name.split(".")[0]
            out.append(Definition(name, node, stmt.lineno, None, "import"))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        out.append(Definition(stmt.name, node, stmt.lineno, None, "def"))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        out += _target_defs(stmt.target, node, stmt.lineno, None, "for")
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                out += _target_defs(item.optional_vars, node, stmt.lineno,
                                    item.context_expr, "with")
    return out


def own_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions that belong to this CFG node itself — a compound
    statement contributes only its header (test/iter/contexts), never
    its body, so each expression is visited by exactly one node."""
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets) + [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target] + ([stmt.value] if stmt.value else [])
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value else []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg else [])
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    if isinstance(stmt, ast.ExceptHandler):  # synthetic handler marker
        return [stmt.type] if stmt.type else []
    return []


# ---------------------------------------------------------------------------
# The analysis result
# ---------------------------------------------------------------------------
UnitNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class CodeUnit:
    """One analyzable body: the module top level or a single def."""

    name: str                      #: qualname ("<module>", "Class.meth")
    node: UnitNode
    body: Sequence[ast.stmt]
    params: Tuple[str, ...] = ()


def collect_units(tree: ast.Module) -> List[CodeUnit]:
    units: List[CodeUnit] = [CodeUnit("<module>", tree, tree.body)]

    def visit(node: ast.AST, prefix: str) -> None:
        for child in getattr(node, "body", []):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                args = child.args
                params = tuple(
                    a.arg for a in (args.posonlyargs + args.args
                                    + args.kwonlyargs))
                if args.vararg:
                    params += (args.vararg.arg,)
                if args.kwarg:
                    params += (args.kwarg.arg,)
                units.append(CodeUnit(qual, child, child.body, params))
                visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")

    visit(tree, "")
    return units


class FunctionFlow:
    """CFG + reaching definitions + tag environments for one unit."""

    def __init__(self, unit: CodeUnit,
                 summaries: Optional[Dict[str, FrozenSet[str]]] = None):
        self.unit = unit
        self.summaries = summaries or {}
        builder = _CFGBuilder()
        builder.build(list(unit.body), [], ())
        self.nodes: List[CFGNode] = builder.nodes
        self._compute_reaching()
        self._compute_tags()

    # -- reaching definitions -----------------------------------------
    def _compute_reaching(self) -> None:
        self.all_defs: List[Definition] = []
        for node in self.nodes:
            self.all_defs.extend(node.defs)
        by_name: Dict[str, List[int]] = {}
        for i, d in enumerate(self.all_defs):
            by_name.setdefault(d.name, []).append(i)
        gen: List[FrozenSet[int]] = []
        kill: List[FrozenSet[int]] = []
        offset = 0
        for node in self.nodes:
            ids = list(range(offset, offset + len(node.defs)))
            offset += len(node.defs)
            gen.append(frozenset(ids))
            killed: set = set()
            for d, def_id in zip(node.defs, ids):
                if d.kills:
                    killed.update(j for j in by_name.get(d.name, ())
                                  if j != def_id)
            kill.append(frozenset(killed))
        n = len(self.nodes)
        self.reach_in: List[set] = [set() for _ in range(n)]
        reach_out: List[set] = [set() for _ in range(n)]
        work = list(range(n))
        while work:
            i = work.pop()
            node = self.nodes[i]
            inset: set = set()
            for p in node.preds:
                inset |= reach_out[p]
            self.reach_in[i] = inset
            outset = (inset - kill[i]) | gen[i]
            if outset != reach_out[i]:
                reach_out[i] = outset
                work.extend(node.succs)

    def defs_of(self, node_index: int, name: str) -> List[Definition]:
        """The definitions of ``name`` that reach ``node_index``."""
        return [self.all_defs[i] for i in sorted(self.reach_in[node_index])
                if self.all_defs[i].name == name]

    # -- tag environments ---------------------------------------------
    def _compute_tags(self) -> None:
        n = len(self.nodes)
        self.env_in: List[Dict[str, FrozenSet[str]]] = [{} for _ in range(n)]
        env_out: List[Dict[str, FrozenSet[str]]] = [{} for _ in range(n)]
        entry_env = {p: _EMPTY for p in self.unit.params}
        work = list(range(n))
        rounds = 0
        while work and rounds < 10000:
            rounds += 1
            i = work.pop(0)
            node = self.nodes[i]
            env: Dict[str, FrozenSet[str]] = {}
            if not node.preds:
                env.update(entry_env)
            for p in node.preds:
                for name, tags in env_out[p].items():
                    env[name] = env.get(name, _EMPTY) | tags
            self.env_in[i] = dict(env)
            self._transfer(node, env)
            if env != env_out[i]:
                env_out[i] = env
                work.extend(s for s in node.succs if s not in work)

    def _transfer(self, node: CFGNode,
                  env: Dict[str, FrozenSet[str]]) -> None:
        for d in node.defs:
            if d.kind == "del":
                env.pop(d.name, None)
                continue
            if d.kind in ("assign", "with", "unpack"):
                tags = self.eval_tags(d.value, env) if d.value is not None \
                    else _EMPTY
                env[d.name] = tags
            elif d.kind in ("aug", "mutate"):
                extra = self.eval_tags(d.value, env) if d.value is not None \
                    else _EMPTY
                env[d.name] = env.get(d.name, _EMPTY) | extra
            else:  # param/import/def/for/except
                env.setdefault(d.name, _EMPTY)
        # receiver-mutating calls fold argument tags into the receiver
        for expr in own_exprs(node.stmt):
            for sub in ast.walk(expr):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _MUTATORS
                        and isinstance(sub.func.value, ast.Name)):
                    name = sub.func.value.id
                    tags = _EMPTY
                    for arg in sub.args:
                        tags |= self.eval_tags(arg, env)
                    if tags:
                        env[name] = env.get(name, _EMPTY) | tags

    # -- expression evaluation ----------------------------------------
    def eval_tags(self, expr: Optional[ast.expr],
                  env: Dict[str, FrozenSet[str]]) -> FrozenSet[str]:
        """Taint tags of ``expr`` under ``env``."""
        if expr is None:
            return _EMPTY
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _EMPTY)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return frozenset({TAG_SET})
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            tags = _EMPTY
            for gen in expr.generators:
                tags |= self.eval_tags(gen.iter, env)
            return tags
        if isinstance(expr, (ast.List, ast.Tuple)):
            # a list/tuple literal has deterministic *own* order, but it
            # carries its elements: a tainted element still poisons any
            # serialization sink the container reaches
            tags = _EMPTY
            for elt in expr.elts:
                tags |= self.eval_tags(elt, env)
            return tags
        if isinstance(expr, ast.Dict):
            tags = _EMPTY
            for key in expr.keys:
                if key is not None:       # None = ``**mapping`` spread
                    tags |= self.eval_tags(key, env)
            for value in expr.values:
                tags |= self.eval_tags(value, env)
            return tags
        if isinstance(expr, ast.Call):
            return self._call_tags(expr, env)
        if isinstance(expr, ast.BinOp):
            return (self.eval_tags(expr.left, env)
                    | self.eval_tags(expr.right, env))
        if isinstance(expr, ast.BoolOp):
            tags = _EMPTY
            for value in expr.values:
                tags |= self.eval_tags(value, env)
            return tags
        if isinstance(expr, ast.IfExp):
            return (self.eval_tags(expr.body, env)
                    | self.eval_tags(expr.orelse, env))
        if isinstance(expr, ast.Starred):
            return self.eval_tags(expr.value, env)
        if isinstance(expr, ast.Subscript):
            if isinstance(expr.slice, ast.Slice):
                # a slice preserves the underlying order
                return self.eval_tags(expr.value, env)
            return _EMPTY
        if isinstance(expr, ast.NamedExpr):
            return self.eval_tags(expr.value, env)
        return _EMPTY

    def _call_tags(self, call: ast.Call,
                   env: Dict[str, FrozenSet[str]]) -> FrozenSet[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name == "sorted":                      # the sanitizer
                return _EMPTY
            if name in ("set", "frozenset"):
                return frozenset({TAG_SET})
            if name in _TRANSPARENT_WRAPPERS and call.args:
                return self.eval_tags(call.args[0], env)
            if name in _SEEDABLE_CTORS and not call.args \
                    and not call.keywords:
                return frozenset({TAG_RNG})
            if name in self.summaries:                # one-level summary
                return self.summaries[name]
            return _EMPTY
        if isinstance(func, ast.Attribute):
            attr = func.attr
            dotted = dotted_name(func)
            if dotted is not None:
                if dotted in _CLOCK_CALLS:
                    return frozenset({TAG_TIME})
                if dotted.startswith("obs.") or ".obs." in dotted:
                    return frozenset({TAG_OBS})
                parts = dotted.split(".")
                if (len(parts) == 2 and parts[0] == "random"
                        and parts[1] in _RANDOM_DRAWS):
                    return frozenset({TAG_RNG})
                if (len(parts) == 3 and parts[0] in ("np", "numpy")
                        and parts[1] == "random"):
                    return frozenset({TAG_RNG})
                if (parts[-1] in ("now", "utcnow", "today")
                        and ("datetime" in parts[:-1]
                             or "date" in parts[:-1])):
                    return frozenset({TAG_TIME})
            if attr in _LISTING_METHODS:
                return frozenset({TAG_LISTING})
            if attr in _SET_ALGEBRA:
                return frozenset({TAG_SET})
            if attr in _VIEW_METHODS:
                # dict/set views and .copy() inherit the receiver's tags
                return self.eval_tags(func.value, env)
        return _EMPTY


# ---------------------------------------------------------------------------
# Module-level plumbing: summaries + per-module analysis cache
# ---------------------------------------------------------------------------
def return_summaries(tree: ast.Module) -> Dict[str, FrozenSet[str]]:
    """One level of helper summaries: for each module-level function,
    the tags its return expressions carry when analyzed standalone."""
    summaries: Dict[str, FrozenSet[str]] = {}
    for child in tree.body:
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = child.args
        params = tuple(a.arg for a in (args.posonlyargs + args.args
                                       + args.kwonlyargs))
        unit = CodeUnit(child.name, child, child.body, params)
        flow = FunctionFlow(unit)
        tags = _EMPTY
        for node in flow.nodes:
            if isinstance(node.stmt, ast.Return) and node.stmt.value:
                tags |= flow.eval_tags(node.stmt.value,
                                       flow.env_in[node.index])
        if tags:
            summaries[child.name] = tags
    return summaries


class ModuleDataflow:
    """Lazy per-module analysis shared across rule families."""

    def __init__(self, info: ModuleInfo):
        self.info = info
        self.units = collect_units(info.tree)
        self.summaries = return_summaries(info.tree)
        self._flows: Dict[int, FunctionFlow] = {}

    def flow(self, unit: CodeUnit) -> FunctionFlow:
        key = id(unit.node)
        if key not in self._flows:
            self._flows[key] = FunctionFlow(unit, self.summaries)
        return self._flows[key]

    def flows(self) -> List[Tuple[CodeUnit, FunctionFlow]]:
        return [(unit, self.flow(unit)) for unit in self.units]


def dataflow_for(info: ModuleInfo) -> ModuleDataflow:
    """The (cached) dataflow analyses for one parsed module."""
    cached = getattr(info, "_dataflow", None)
    if cached is None:
        cached = ModuleDataflow(info)
        info._dataflow = cached  # type: ignore[attr-defined]
    return cached
