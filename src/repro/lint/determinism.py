"""Rule family D: sources of run-to-run nondeterminism.

Scans the result-producing modules (``scan_paths`` in the
configuration) for the four classic ways bit-identity dies:

* **D01** — randomness from interpreter-global state: module-level
  ``random.*`` draws, legacy ``np.random.*`` draws, and zero-argument
  ``Random()`` / ``default_rng()`` / ``PCG64()`` constructions.  All
  simulation randomness must flow from a seeded generator.
* **D02** — wall-clock reads (``time.time``/``perf_counter``/
  ``monotonic``, ``datetime.now``); these belong in ``benchmarks/``.
* **D03** — iteration whose order the platform picks: ``for`` /
  comprehension loops directly over set literals, ``set()``/
  ``frozenset()`` calls, set-algebra results, or directory listings
  (``glob``/``rglob``/``iterdir``/``scandir``/``listdir``) without a
  ``sorted(...)`` wrapper.  ``list(...)``/``tuple(...)``/
  ``enumerate(...)``/``reversed(...)`` wrappers are transparent — they
  preserve the unordered order, so the inner expression is still
  checked.
* **D04** — ordering by ``id()`` (allocation address): ``key=id`` or a
  ``key=lambda`` calling ``id()`` in ``sorted``/``sort``/``min``/
  ``max``.

The checks are syntactic by design: they cannot see a set flowing
through a variable, but every rule they do fire on is a real,
mechanically fixable hazard — and the suppression syntax
(``# lint: ok(D03: reason)``) documents the deliberate exceptions.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .config import LintConfig
from .engine import ModuleIndex, ModuleInfo, dotted_name
from .findings import Finding

#: draws (and global-state mutation) on the module-level random module
_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "expovariate", "choice", "choices", "shuffle", "sample", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "lognormvariate",
    "weibullvariate", "getrandbits", "seed",
})

#: legacy numpy global-state RNG surface
_NP_RANDOM_DRAWS = frozenset({
    "random", "rand", "randn", "randint", "random_sample",
    "standard_normal", "normal", "uniform", "choice", "shuffle",
    "permutation", "seed",
})

#: constructors that are fine seeded, nondeterministic bare
_SEEDABLE_CTORS = frozenset({
    "Random", "default_rng", "PCG64", "SeedSequence", "RandomState",
    "Generator",
})

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
})

_LISTING_METHODS = frozenset({"glob", "rglob", "iglob", "iterdir",
                              "scandir", "listdir"})

_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed",
                                   "iter"})


def _ctor_unseeded(call: ast.Call, name: str) -> bool:
    return name in _SEEDABLE_CTORS and not call.args and not call.keywords


class _Visitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo):
        self.info = info
        self.findings: List[Finding] = []
        self.has_random_import = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(info.tree))

    def _emit(self, rule: str, node: ast.AST, message: str,
              hint: str) -> None:
        self.findings.append(Finding(rule, self.info.relpath,
                                     getattr(node, "lineno", 1), message,
                                     hint))

    # -- D01 / D02 --------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if (self.has_random_import and len(parts) == 2
                    and parts[0] == "random" and parts[1] in _RANDOM_DRAWS):
                self._emit("D01", node,
                           f"module-level RNG call {dotted}() draws from "
                           "interpreter-global state",
                           "draw from a seeded generator (Simulator.rng "
                           "or random.Random(seed)) instead")
            elif (len(parts) >= 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"):
                tail = parts[2]
                if len(parts) == 3 and tail in _NP_RANDOM_DRAWS:
                    self._emit("D01", node,
                               f"legacy global-state RNG call {dotted}()",
                               "use np.random.Generator(np.random."
                               "PCG64(seed)) and draw from it")
                elif len(parts) == 3 and _ctor_unseeded(node, tail):
                    self._emit("D01", node,
                               f"{dotted}() constructed without a seed",
                               "pass an explicit seed (or SeedSequence)")
            elif dotted in _CLOCK_CALLS:
                self._emit("D02", node,
                           f"wall-clock read {dotted}() in simulation "
                           "code",
                           "move timing to benchmarks/, or derive time "
                           "from the simulator clock")
            elif (parts[-1] in ("now", "utcnow", "today")
                    and ("datetime" in parts[:-1] or "date" in parts[:-1])):
                self._emit("D02", node,
                           f"wall-clock read {dotted}() in simulation "
                           "code",
                           "pass timestamps in explicitly; simulation "
                           "output must not depend on the wall clock")
        elif isinstance(node.func, ast.Name) \
                and _ctor_unseeded(node, node.func.id):
            self._emit("D01", node,
                       f"{node.func.id}() constructed without a seed",
                       "pass an explicit seed (or SeedSequence)")
        self._check_id_ordering(node)
        self.generic_visit(node)

    # -- D04 --------------------------------------------------------------
    def _check_id_ordering(self, node: ast.Call) -> None:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name not in ("sorted", "sort", "min", "max"):
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            key = kw.value
            uses_id = (isinstance(key, ast.Name) and key.id == "id") or (
                isinstance(key, ast.Lambda) and any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(key.body)))
            if uses_id:
                self._emit("D04", node,
                           f"{name}(..., key=id) orders by allocation "
                           "address — different every run",
                           "order by a stable attribute (name, sequence "
                           "number) instead of id()")

    # -- D03 --------------------------------------------------------------
    def _unordered_reason(self, node: ast.AST) -> Optional[str]:
        while (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _TRANSPARENT_WRAPPERS and node.args):
            node = node.args[0]
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal/comprehension"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _LISTING_METHODS:
                    return f".{attr}(...) (filesystem order)"
                if attr in ("union", "intersection", "difference",
                            "symmetric_difference"):
                    return f"a set-algebra result (.{attr}())"
        return None

    def _check_iter(self, iter_node: ast.AST) -> None:
        reason = self._unordered_reason(iter_node)
        if reason is not None:
            self._emit("D03", iter_node,
                       f"iteration over {reason} — order is platform-"
                       "dependent",
                       "wrap the iterable in sorted(...) to pin the "
                       "order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    findings: List[Finding] = []
    for info in index.under(config.scan_paths):
        visitor = _Visitor(info)
        visitor.visit(info.tree)
        findings.extend(visitor.findings)
    return findings
