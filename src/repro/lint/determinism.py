"""Rule family D: sources of run-to-run nondeterminism.

Scans the result-producing modules (``scan_paths`` in the
configuration) for the classic ways bit-identity dies:

* **D01** — randomness from interpreter-global state: module-level
  ``random.*`` draws, legacy ``np.random.*`` draws, and zero-argument
  ``Random()`` / ``default_rng()`` / ``PCG64()`` constructions.  All
  simulation randomness must flow from a seeded generator.  Flagged at
  the draw/construction site — the hazard is the call itself.
* **D02** — wall-clock reads (``time.time``/``perf_counter``/
  ``monotonic``, ``datetime.now``); these belong in ``benchmarks/``.
* **D03** — iteration whose order the platform picks.  Dataflow-aware
  since v2: the :mod:`~repro.lint.dataflow` lattice tracks set/
  listing-tainted values through assignment chains, transparent
  wrappers (``list``/``tuple``/``enumerate``/``reversed``/``iter``),
  comprehensions, dict views, set algebra, container mutation, and one
  level of same-module helper returns — so ``pending = set(x); for p
  in pending:`` is caught, not just the literal ``for p in set(x):``.
  ``sorted(...)`` clears the taint.
* **D04** — ordering by ``id()`` (allocation address): ``key=id`` or a
  ``key=lambda`` calling ``id()`` in ``sorted``/``sort``/``min``/
  ``max``.
* **D05** — a tainted value (set/listing *or* RNG/wall-clock) reaching
  a key or serialization sink: ``cache_key``/``lockstep_key`` calls,
  ``json.dumps``/``json.dump``, ``hashlib`` digests, and the SSE
  encoder ``format_event``.  Set order inside a cache key means the
  same config hashes differently between runs — cache misses at best,
  colliding entries at worst.
* **D06** — an observability-layer value (anything out of an ``obs.*``
  call: span timings, counters, receipts) reaching ``cache_key`` or
  ``lockstep_key``.  Obs values are *allowed* on wire/hash sinks in
  general — receipts are serialized and hashed by design — but they
  must never influence content addresses or batch grouping, or the
  ``REPRO_OBS`` kill switch would change results.

D01/D02 stay call-site rules on purpose: a global-state draw in
result-producing code is a hazard whether or not the value provably
reaches a sink this release.  Their *values* still feed the taint
lattice, so one that lands in a cache key is additionally a D05.

Modules named in ``LintConfig.wallclock_modules`` (the observability
package) are exempt from D02, and from D05 findings whose taint is the
wall clock alone — module-scoped, because per-line suppressions in a
package whose whole job is timing would bury real findings.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional

from .config import LintConfig
from .dataflow import (ALL_TAGS, ORDER_TAGS, TAG_LISTING, TAG_OBS, TAG_RNG,
                       TAG_SET, TAG_TIME, FunctionFlow, dataflow_for,
                       own_exprs)
from .engine import ModuleIndex, ModuleInfo, dotted_name
from .findings import Finding

#: draws (and global-state mutation) on the module-level random module
_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "expovariate", "choice", "choices", "shuffle", "sample", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "lognormvariate",
    "weibullvariate", "getrandbits", "seed",
})

#: legacy numpy global-state RNG surface
_NP_RANDOM_DRAWS = frozenset({
    "random", "rand", "randn", "randint", "random_sample",
    "standard_normal", "normal", "uniform", "choice", "shuffle",
    "permutation", "seed",
})

#: constructors that are fine seeded, nondeterministic bare
_SEEDABLE_CTORS = frozenset({
    "Random", "default_rng", "PCG64", "SeedSequence", "RandomState",
    "Generator",
})

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
})

_LISTING_METHODS = frozenset({"glob", "rglob", "iglob", "iterdir",
                              "scandir", "listdir"})

_HASH_CTORS = frozenset({"sha256", "sha1", "sha512", "md5", "blake2b",
                         "blake2s"})

_TAG_DESC = {
    TAG_SET: "set order",
    TAG_LISTING: "filesystem listing order",
    TAG_RNG: "an unseeded RNG value",
    TAG_TIME: "a wall-clock value",
    TAG_OBS: "an observability-layer value",
}

#: the cache-soundness key sinks rule D06 protects from obs taint
_KEY_SINKS = frozenset({"cache_key", "lockstep_key"})


def _ctor_unseeded(call: ast.Call, name: str) -> bool:
    return name in _SEEDABLE_CTORS and not call.args and not call.keywords


# ---------------------------------------------------------------------------
# D01 / D02 / D04: call-site rules (syntactic on purpose)
# ---------------------------------------------------------------------------
class _CallSiteVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo, allow_wallclock: bool = False):
        self.info = info
        #: module-scoped D02 exemption (``LintConfig.wallclock_modules``)
        self.allow_wallclock = allow_wallclock
        self.findings: List[Finding] = []
        self.has_random_import = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(info.tree))

    def _emit(self, rule: str, node: ast.AST, message: str,
              hint: str) -> None:
        self.findings.append(Finding(rule, self.info.relpath,
                                     getattr(node, "lineno", 1), message,
                                     hint))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if (self.has_random_import and len(parts) == 2
                    and parts[0] == "random" and parts[1] in _RANDOM_DRAWS):
                self._emit("D01", node,
                           f"module-level RNG call {dotted}() draws from "
                           "interpreter-global state",
                           "draw from a seeded generator (Simulator.rng "
                           "or random.Random(seed)) instead")
            elif (len(parts) >= 3 and parts[0] in ("np", "numpy")
                    and parts[1] == "random"):
                tail = parts[2]
                if len(parts) == 3 and tail in _NP_RANDOM_DRAWS:
                    self._emit("D01", node,
                               f"legacy global-state RNG call {dotted}()",
                               "use np.random.Generator(np.random."
                               "PCG64(seed)) and draw from it")
                elif len(parts) == 3 and _ctor_unseeded(node, tail):
                    self._emit("D01", node,
                               f"{dotted}() constructed without a seed",
                               "pass an explicit seed (or SeedSequence)")
            elif dotted in _CLOCK_CALLS:
                if not self.allow_wallclock:
                    self._emit("D02", node,
                               f"wall-clock read {dotted}() in simulation "
                               "code",
                               "move timing to benchmarks/, or derive time "
                               "from the simulator clock")
            elif (parts[-1] in ("now", "utcnow", "today")
                    and ("datetime" in parts[:-1] or "date" in parts[:-1])):
                if not self.allow_wallclock:
                    self._emit("D02", node,
                               f"wall-clock read {dotted}() in simulation "
                               "code",
                               "pass timestamps in explicitly; simulation "
                               "output must not depend on the wall clock")
        elif isinstance(node.func, ast.Name) \
                and _ctor_unseeded(node, node.func.id):
            self._emit("D01", node,
                       f"{node.func.id}() constructed without a seed",
                       "pass an explicit seed (or SeedSequence)")
        self._check_id_ordering(node)
        self.generic_visit(node)

    def _check_id_ordering(self, node: ast.Call) -> None:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name not in ("sorted", "sort", "min", "max"):
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            key = kw.value
            uses_id = (isinstance(key, ast.Name) and key.id == "id") or (
                isinstance(key, ast.Lambda) and any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(key.body)))
            if uses_id:
                self._emit("D04", node,
                           f"{name}(..., key=id) orders by allocation "
                           "address — different every run",
                           "order by a stable attribute (name, sequence "
                           "number) instead of id()")


# ---------------------------------------------------------------------------
# D03 / D05: dataflow sinks
# ---------------------------------------------------------------------------
def _describe(expr: ast.expr, tags: FrozenSet[str], flow: FunctionFlow,
              node_index: int) -> str:
    """Human description of why ``expr`` is unordered/nondeterministic."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if func.id in ("list", "tuple", "enumerate", "reversed",
                           "iter") and expr.args:
                return _describe(expr.args[0], tags, flow, node_index)
        if isinstance(func, ast.Attribute):
            if func.attr in _LISTING_METHODS:
                return f".{func.attr}(...) (filesystem order)"
            if func.attr in ("union", "intersection", "difference",
                            "symmetric_difference"):
                return f"a set-algebra result (.{func.attr}())"
    if isinstance(expr, ast.Name):
        born = sorted({d.lineno for d in flow.defs_of(node_index, expr.id)
                       if d.value is not None})
        where = f" (defined at line {', '.join(map(str, born))})" \
            if born else ""
        desc = ", ".join(sorted(_TAG_DESC[t] for t in tags))
        return f"{expr.id!r}, which carries {desc}{where}"
    desc = ", ".join(sorted(_TAG_DESC[t] for t in tags))
    return f"a value carrying {desc}"


def _sink_name(call: ast.Call) -> Optional[str]:
    """The D05 sink label for a call, or None."""
    func = call.func
    dotted = dotted_name(func)
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    if dotted in ("json.dumps", "json.dump"):
        return dotted
    if name in ("cache_key", "lockstep_key", "format_event"):
        return name
    if name in _HASH_CTORS and (dotted is None
                                or dotted.startswith("hashlib.")
                                or dotted == name):
        return f"hashlib.{name}" if name else None
    return None


class _DataflowChecker:
    def __init__(self, info: ModuleInfo, allow_wallclock: bool = False):
        self.info = info
        #: in wall-clock modules, D05 findings whose taint is the wall
        #: clock *alone* are expected (timing is those modules' job);
        #: any other taint still fires
        self.allow_wallclock = allow_wallclock
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for unit, flow in dataflow_for(self.info).flows():
            for node in flow.nodes:
                env = flow.env_in[node.index]
                stmt = node.stmt
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    self._check_iter(stmt.iter, flow, node.index, env)
                for expr in own_exprs(stmt):
                    for sub in ast.walk(expr):
                        if isinstance(sub, (ast.ListComp, ast.SetComp,
                                            ast.DictComp,
                                            ast.GeneratorExp)):
                            for gen in sub.generators:
                                self._check_iter(gen.iter, flow,
                                                 node.index, env)
                        elif isinstance(sub, ast.Call):
                            self._check_sink(sub, flow, node.index, env)
        return self.findings

    def _check_iter(self, iter_expr: ast.expr, flow: FunctionFlow,
                    node_index: int, env: Dict[str, FrozenSet[str]]
                    ) -> None:
        if isinstance(iter_expr, (ast.List, ast.Tuple, ast.Dict)):
            # the literal's own iteration order is deterministic even
            # when its *elements* are tainted (those are D05's problem)
            return
        tags = flow.eval_tags(iter_expr, env) & ORDER_TAGS
        if not tags:
            return
        what = _describe(iter_expr, tags, flow, node_index)
        self.findings.append(Finding(
            "D03", self.info.relpath, iter_expr.lineno,
            f"iteration over {what} — order is platform-dependent",
            "wrap the iterable in sorted(...) to pin the order"))

    def _check_sink(self, call: ast.Call, flow: FunctionFlow,
                    node_index: int, env: Dict[str, FrozenSet[str]]
                    ) -> None:
        sink = _sink_name(call)
        if sink is None:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords
                                      if kw.arg != "sort_keys"]:
            raw = flow.eval_tags(arg, env)
            if sink in _KEY_SINKS and TAG_OBS in raw:
                what = _describe(arg, frozenset({TAG_OBS}), flow,
                                 node_index)
                self.findings.append(Finding(
                    "D06", self.info.relpath, call.lineno,
                    f"observability value flowing into {sink}(): {what}",
                    "keys must be derived from configs and code only; "
                    "obs timings/counters may never influence cache or "
                    "lock-step identity"))
            tags = raw & ALL_TAGS
            if self.allow_wallclock:
                tags -= {TAG_TIME}
            if not tags:
                continue
            what = _describe(arg, tags, flow, node_index)
            self.findings.append(Finding(
                "D05", self.info.relpath, call.lineno,
                f"nondeterministic value flowing into {sink}(): {what}",
                "sort/canonicalize the value before it reaches the "
                "key or wire encoder"))


def _in_wallclock_module(relpath: str, config: LintConfig) -> bool:
    """True when ``relpath`` lives under one of the configured
    wall-clock modules (a package directory or a module file)."""
    for mod in config.wallclock_modules:
        if relpath == mod or relpath.startswith(mod.rstrip("/") + "/"):
            return True
    return False


def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    findings: List[Finding] = []
    for info in index.under(config.scan_paths):
        allow = _in_wallclock_module(info.relpath, config)
        visitor = _CallSiteVisitor(info, allow_wallclock=allow)
        visitor.visit(info.tree)
        findings.extend(visitor.findings)
        findings.extend(_DataflowChecker(info, allow_wallclock=allow).run())
    return findings
