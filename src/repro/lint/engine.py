"""The analyzer runner: one tree walk, rules as visitor plugins.

:func:`build_index` parses every configured module exactly once into a
:class:`ModuleIndex`; each rule family consumes the shared index (no
rule re-reads or re-parses source).  :func:`run_lint` dispatches the
requested families, applies ``# lint: ok(RULE: reason)`` suppressions,
and returns a :class:`LintReport` with deterministic finding order.

Also home to the lockfile plumbing: :func:`update_locks` regenerates
``tests/golden/parity_lock.json``, ``format_lock.json``, and
``wire_lock.json`` — the explicit ack for intentional parity edits,
serialization-format bumps, and wire-schema changes.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .config import LintConfig, has_bare_suppression, parse_suppression
from .findings import FAMILIES, Finding


@dataclass
class ModuleInfo:
    """One parsed source module, shared by every rule."""

    relpath: str               #: posix path relative to the scanned root
    path: Path
    source: str
    lines: List[str]
    tree: ast.Module


class ModuleIndex:
    """All parsed modules, keyed by root-relative posix path."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}

    def get(self, relpath: str) -> Optional[ModuleInfo]:
        return self.modules.get(relpath)

    def under(self, prefixes: Sequence[str]) -> List[ModuleInfo]:
        """Modules whose relpath is one of ``prefixes`` or inside one."""
        out = []
        for relpath in sorted(self.modules):
            for prefix in prefixes:
                if relpath == prefix or relpath.startswith(prefix + "/"):
                    out.append(self.modules[relpath])
                    break
        return out


def build_index(config: LintConfig) -> Tuple[ModuleIndex, List[Finding]]:
    """Parse every module the configuration references, once."""
    index = ModuleIndex()
    findings: List[Finding] = []
    root = Path(config.root)
    wanted = set(config.scan_paths)
    wanted.update((config.config_module, config.policy_module,
                   config.cache_module, config.lockstep_module))
    wanted.update(member[0] for _, a, b in config.parity_pairs
                  for member in (a, b))
    wanted.update(module for module, _ in config.gating_roots)
    wanted.update(config.wire_emit_modules)
    wanted.update(config.wire_reader_modules)
    wanted.update(module for module, _ in config.wire_emit_functions)
    wanted.update((config.wire_submit_encoder[0],
                   config.wire_submit_decoder[0]))
    for entry in sorted(wanted):
        path = root / entry
        if path.is_file():
            files = [path]
        elif path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:
            # a missing module that a rule family anchors on is that
            # family's finding (X00/P03/G03 with context); only a
            # missing *scan* path is an engine-level error
            if entry in config.scan_paths:
                findings.append(Finding(
                    "X00", entry, 1,
                    f"configured path {entry!r} not found under {root}",
                    "fix the lint configuration (scan_paths)"))
            continue
        for file in files:
            relpath = file.relative_to(root).as_posix()
            if relpath in index.modules:
                continue
            source = file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                findings.append(Finding(
                    "X00", relpath, exc.lineno or 1,
                    f"module does not parse: {exc.msg}",
                    "fix the syntax error; the analyzer cannot check "
                    "what it cannot parse"))
                continue
            index.modules[relpath] = ModuleInfo(
                relpath=relpath, path=file, source=source,
                lines=source.splitlines(), tree=tree)
    return index, findings


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------
def find_def(tree: ast.Module, qualname: str):
    """The FunctionDef/AsyncFunctionDef for ``qualname`` (``Class.
    method``, possibly nested classes, or a module-level name)."""
    parts = qualname.split(".")
    scope: ast.AST = tree
    for part in parts:
        found = None
        for node in getattr(scope, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and node.name == part:
                found = node
                break
        if found is None:
            return None
        scope = found
    return scope if isinstance(scope, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)) else None


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def node_fingerprint(node: ast.AST) -> str:
    """Digest of one def's behaviour-relevant AST (16 hex chars).

    Same normalization as the cache layer's ``module_fingerprint``:
    docstrings are stripped, positions are excluded, so comment/
    docstring/formatting edits keep the fingerprint while any real code
    change moves it.
    """
    clone = copy.deepcopy(node)
    for sub in ast.walk(clone):
        if not isinstance(sub, (ast.Module, ast.ClassDef, ast.FunctionDef,
                                ast.AsyncFunctionDef)):
            continue
        body = sub.body
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            del body[0]
    payload = ast.dump(clone, include_attributes=False).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Report assembly
# ---------------------------------------------------------------------------
@dataclass
class Suppression:
    finding: Finding
    reason: str


@dataclass
class LintReport:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Suppression] = field(default_factory=list)
    modules_scanned: int = 0
    families: Tuple[str, ...] = FAMILIES

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "modules_scanned": self.modules_scanned,
            "families": list(self.families),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [{**s.finding.to_dict(), "suppress_reason":
                            s.reason} for s in self.suppressed],
        }


def _apply_suppressions(findings: List[Finding], index: ModuleIndex
                        ) -> Tuple[List[Finding], List[Suppression]]:
    kept: List[Finding] = []
    suppressed: List[Suppression] = []
    for finding in findings:
        info = index.get(finding.path)
        line_text = ""
        if info is not None and 1 <= finding.line <= len(info.lines):
            line_text = info.lines[finding.line - 1]
        parsed = parse_suppression(line_text)
        if parsed is not None and parsed[0] == finding.rule:
            suppressed.append(Suppression(finding, parsed[1]))
        else:
            kept.append(finding)
    return kept, suppressed


def _malformed_markers(index: ModuleIndex,
                       scan: Sequence[str]) -> List[Finding]:
    """X01 for ``ok(`` markers that don't parse anywhere in the scan
    set (``nokey`` malformations are reported by the keys family, which
    knows which function bodies they belong to)."""
    findings = []
    for info in index.under(scan):
        for lineno, text in enumerate(info.lines, start=1):
            if has_bare_suppression(text):
                findings.append(Finding(
                    "X01", info.relpath, lineno,
                    "malformed suppression marker (expected "
                    "`# lint: ok(RULE: reason)`)",
                    "add the rule id and a non-empty reason"))
    return findings


def run_lint(config: LintConfig,
             families: Sequence[str] = FAMILIES) -> LintReport:
    """Run the requested rule families over one shared tree walk."""
    index, findings = build_index(config)
    # imported here so the rule modules can use engine helpers freely
    from . import determinism, keys, locks, parity, purity, wire
    runners = {
        "keys": keys.check,
        "parity": parity.check,
        "determinism": determinism.check,
        "locks": locks.check,
        "wire": wire.check,
        "purity": purity.check,
    }
    for family in families:
        findings.extend(runners[family](config, index))
    findings.extend(_malformed_markers(index, config.scan_paths))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    kept, suppressed = _apply_suppressions(findings, index)
    return LintReport(findings=kept, suppressed=suppressed,
                      modules_scanned=len(index.modules),
                      families=tuple(families))


# ---------------------------------------------------------------------------
# Lockfiles
# ---------------------------------------------------------------------------
def read_lock(path: Path) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def write_lock(path: Path, payload: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


def update_locks(config: LintConfig) -> Dict[str, str]:
    """Regenerate both lockfiles from the current tree (the explicit
    ack for parity edits and format bumps).  Returns a summary of what
    was written."""
    index, findings = build_index(config)
    hard = [f for f in findings if f.rule == "X00"]
    if hard:
        raise RuntimeError("cannot update locks: " + hard[0].render())
    from . import keys, parity, wire
    parity_payload = parity.lock_payload(config, index)
    write_lock(config.parity_lock_path, parity_payload)
    format_payload = keys.lock_payload(config, index)
    write_lock(config.format_lock_path, format_payload)
    written = {
        "parity_lock": str(config.parity_lock_path),
        "format_lock": str(config.format_lock_path),
    }
    wire_payload = wire.lock_payload(config, index)
    if any(wire_payload[d]["writes"] or wire_payload[d]["reads"]
           for d in wire_payload):
        write_lock(config.wire_lock_path, wire_payload)
        written["wire_lock"] = str(config.wire_lock_path)
    return written
