"""Finding records and the rule catalog for :mod:`repro.lint`.

Every rule has a stable id (``K``/``P``/``D``/``G`` family prefix plus a
two-digit number), a one-line title, a longer explanation, and a
miniature *bad example* used by ``--explain`` and ``examples/
lint_demo.py``.  A :class:`Finding` pins one violation to a
``file:line`` with the id and a one-line fix hint — everything a
reviewer (or CI log reader) needs to act without opening the linter's
source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a source location."""

    rule: str          #: rule id, e.g. ``"K01"``
    path: str          #: path as reported (relative to the scanned root)
    line: int          #: 1-based line number
    message: str       #: what is wrong, naming the offending symbol
    hint: str          #: one-line fix hint

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}\n" \
               f"    hint: {self.hint}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "hint": self.hint}


@dataclass(frozen=True)
class Rule:
    """Catalog entry: what a rule checks and why it exists."""

    id: str
    family: str
    title: str
    rationale: str
    bad_example: str = ""


#: the rule families, in report order
FAMILIES = ("keys", "parity", "determinism", "locks", "wire", "purity")

RULES: Dict[str, Rule] = {r.id: r for r in (
    Rule(
        "K01", "keys",
        "SystemConfig field not consumed by cache_key",
        "Every SystemConfig field must flow into the content-address "
        "hash, or a stale cache entry silently serves results computed "
        "under a different value of that field.  Fields intentionally "
        "outside the key are declared inside the key function with "
        "`# lint: nokey(<field>: <reason>)`.",
        bad_example=(
            "@dataclass\n"
            "class Config:\n"
            "    dt: float = 1e-6\n"
            "    new_knob: float = 0.0   # added, never keyed\n"
            "\n"
            "def cache_key(config):\n"
            "    return hash((config.dt,))   # K01: new_knob unkeyed\n"),
    ),
    Rule(
        "K02", "keys",
        "SystemConfig field not consumed by lockstep_key",
        "Fields that shape the vector loop (grid, duration, stepping "
        "tolerances) must be in the lock-step grouping key or lanes "
        "with different physics share one batch.  Per-lane fields are "
        "declared with `# lint: nokey(<field>: <reason>)` inside "
        "lockstep_key.",
        bad_example=(
            "def lockstep_key(config):\n"
            "    # K02 for every field neither returned nor allowlisted\n"
            "    return (config.n_phases, config.dt)\n"),
    ),
    Rule(
        "K03", "keys",
        "RunResult serialization drift without FORMAT_VERSION bump",
        "The on-disk entry layout is pinned by tests/golden/"
        "format_lock.json.  Changing RunResult's field set (or its "
        "to_dict) without bumping FORMAT_VERSION lets old entries "
        "decode into wrong-shaped results.  Bump FORMAT_VERSION and "
        "refresh the lock with `python -m repro.lint --update-locks`.",
        bad_example=(
            "@dataclass\n"
            "class RunResult:\n"
            "    v_final: float\n"
            "    brand_new_counter: int = 0   # K03 until the lock and\n"
            "                                 # FORMAT_VERSION move too\n"),
    ),
    Rule(
        "K04", "keys",
        "RunResult numeric field missing from the cache payload lists",
        "ResultCache serializes scalars through _FLOAT_FIELDS/"
        "_INT_FIELDS.  A numeric RunResult field in neither list is "
        "silently dropped on store and comes back as its default on "
        "load — a wrong-results bug, not a crash.",
        bad_example=(
            "_FLOAT_FIELDS = (\"v_final\",)\n"
            "# RunResult also has `ripple: float` -> K04\n"),
    ),
    Rule(
        "K05", "keys",
        "SteppingPolicy field with no keyed SystemConfig counterpart",
        "SteppingPolicy is derived from SystemConfig (from_config); a "
        "policy field with no corresponding config field cannot reach "
        "the cache or lock-step keys at all, so two runs differing in "
        "it would collide.",
        bad_example=(
            "@dataclass(frozen=True)\n"
            "class SteppingPolicy:\n"
            "    rtol: float = 1e-5\n"
            "    secret_gain: float = 2.0   # K05: not in SystemConfig\n"),
    ),
    Rule(
        "K06", "keys",
        "Stale nokey allowlist entry",
        "A `# lint: nokey(...)` annotation names a field that either "
        "does not exist on SystemConfig or is actually consumed by the "
        "key function — the allowlist must shrink as code catches up, "
        "or it stops being evidence.",
        bad_example=(
            "def lockstep_key(config):\n"
            "    # lint: nokey(dt: per-lane)   <- K06, dt IS keyed below\n"
            "    return (config.n_phases, config.dt)\n"),
    ),
    Rule(
        "P01", "parity",
        "One side of a scalar/vector parity pair changed",
        "The paired implementations must be edited together (they are "
        "kept bit-identical op-for-op).  One member's AST fingerprint "
        "differs from tests/golden/parity_lock.json while its twin's "
        "does not: port the change to the twin, then ack with "
        "`python -m repro.lint --update-locks`.",
        bad_example=(
            "# scalar: clamp added\n"
            "def crossing_bound(self):  return max(0.0, bound)\n"
            "# vector twin untouched -> P01\n"
            "def lane_crossing_bound(self, lane):  return bound\n"),
    ),
    Rule(
        "P02", "parity",
        "Both sides of a parity pair changed but the lockfile is stale",
        "Both fingerprints moved — good, the twins were edited together "
        "— but the lockfile still records the old pair.  Ack the edit "
        "with `python -m repro.lint --update-locks` so the next "
        "one-sided edit is caught against the new baseline.",
    ),
    Rule(
        "P03", "parity",
        "Parity pair member or lockfile entry missing",
        "A registered pair member cannot be resolved (renamed or "
        "deleted), or the lockfile has no entry for the pair.  Update "
        "lint/parity.py's registry to the new name, or regenerate the "
        "lockfile with `--update-locks`.",
    ),
    Rule(
        "D01", "determinism",
        "Unseeded or global-state RNG",
        "All randomness must flow from a seeded generator (the kernel's "
        "Simulator.rng or an explicit PCG64(seed)).  Module-level "
        "random.* draws, legacy np.random.* draws, and zero-argument "
        "Random()/default_rng() constructions depend on interpreter-"
        "global state and break run-to-run bit-identity.",
        bad_example=(
            "import random\n"
            "jitter = random.gauss(0, 1)        # D01\n"
            "noise = np.random.standard_normal()  # D01\n"
            "rng = np.random.default_rng()       # D01 (no seed)\n"),
    ),
    Rule(
        "D02", "determinism",
        "Wall-clock time in simulation code",
        "time.time/perf_counter/monotonic and datetime.now belong in "
        "benchmarks/, never in result-producing modules — anything "
        "derived from them differs between runs by construction.  "
        "Modules whose *job* is timing (LintConfig.wallclock_modules, "
        "e.g. repro.obs) are exempt as a whole rather than via per-line "
        "suppressions; rule D06 separately walls their values off from "
        "the cache keys.",
        bad_example=(
            "import time\n"
            "t0 = time.perf_counter()   # D02 outside benchmarks/\n"),
    ),
    Rule(
        "D03", "determinism",
        "Iteration over an unordered collection or directory listing",
        "set/frozenset iteration order is hash-seed dependent and "
        "glob/iterdir/listdir order is filesystem dependent; either "
        "can flow into event scheduling or result assembly.  The check "
        "is dataflow-aware: the unordered value is tracked through "
        "assignments, list()/tuple()/enumerate() wrappers, "
        "comprehensions, dict views, and one level of helper returns, "
        "and flagged wherever it is iterated.  Wrap the iterable in "
        "sorted(...) to pin the order (sorted() clears the taint).",
        bad_example=(
            "for name in {\"a\", \"b\"}:          # D03\n"
            "    schedule(name)\n"
            "pending = set(work)\n"
            "queue = list(pending)\n"
            "for item in queue:                  # D03 (via dataflow)\n"
            "    schedule(item)\n"),
    ),
    Rule(
        "D04", "determinism",
        "id()-based ordering",
        "CPython object ids are allocation addresses: sorting or "
        "min/max-ing by id() gives a different order every run.  Use a "
        "stable key (a name, a sequence number) instead.",
        bad_example=(
            "listeners.sort(key=id)              # D04\n"
            "first = min(events, key=lambda e: id(e))  # D04\n"),
    ),
    Rule(
        "D05", "determinism",
        "Nondeterministic value flowing into a cache key or wire encoder",
        "A value carrying set/listing/RNG/wall-clock taint that reaches "
        "cache_key/lockstep_key, json.dumps, a hashlib digest, or the "
        "SSE encoder makes the content address or wire payload differ "
        "between bit-identical runs — cache misses at best, silent "
        "entry collisions at worst.  Sort (or otherwise canonicalize) "
        "the value before it reaches the key.",
        bad_example=(
            "tags = set(encoded)            # unordered\n"
            "payload[\"fields\"] = list(tags)\n"
            "json.dumps(payload)            # D05: set order in the key\n"),
    ),
    Rule(
        "D06", "determinism",
        "Observability value flowing into a cache or lock-step key",
        "Anything produced by the obs layer (span timings, counters, "
        "receipts — every obs.* call) is measurement, not identity: if "
        "it reaches cache_key or lockstep_key, toggling REPRO_OBS (or "
        "mere timing jitter) changes content addresses and batch "
        "grouping, breaking the bit-identity contract the differential "
        "tests lock.  Keys are derived from configs and code "
        "fingerprints only.",
        bad_example=(
            "stamp = obs.now()\n"
            "key = cache_key(cfg, settle, backend, energy, stamp)  "
            "# D06\n"),
    ),
    Rule(
        "L01", "locks",
        "Guarded attribute accessed without its lock",
        "An attribute declared `# lint: guarded_by(self._lock: reason)` "
        "is read or written on a path where the CFG shows self._lock is "
        "not held — a data race once any second thread exists.  Only "
        "__init__/__post_init__ (object not yet shared) are exempt.",
        bad_example=(
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        # lint: guarded_by(self._lock: appended by workers)\n"
            "        self._events = []\n"
            "    def add(self, e):\n"
            "        self._events.append(e)   # L01: lock not held\n"),
    ),
    Rule(
        "L02", "locks",
        "Inconsistent lock acquisition order",
        "Two locks acquired in opposite nesting orders on different "
        "paths (directly or through a called method) can deadlock the "
        "moment both paths run concurrently; re-acquiring a "
        "non-reentrant lock already held deadlocks immediately.  Pick "
        "one global order and release before calling into code that "
        "takes the other lock.",
        bad_example=(
            "def a(self):\n"
            "    with self._lock:\n"
            "        with self._cond: ...\n"
            "def b(self):\n"
            "    with self._cond:\n"
            "        with self._lock: ...   # L02: inverted vs a()\n"),
    ),
    Rule(
        "L03", "locks",
        "Blocking call or suspension while holding a lock",
        "time.sleep, Future.result, thread/process .join, socket I/O, "
        "and generator yields while holding a lock stall every thread "
        "that needs it (and a yield can hold it across arbitrary "
        "caller code).  Condition.wait/wait_for on the *same* (sole) "
        "held lock is the sanctioned exception — it releases while "
        "waiting.  Compute first, then take the lock.",
        bad_example=(
            "with self._lock:\n"
            "    time.sleep(0.1)            # L03\n"
            "    data = future.result()     # L03\n"),
    ),
    Rule(
        "W01", "wire",
        "Server emits a wire field the client never reads",
        "A field added to a server JSON/SSE payload that no client-side "
        "reader consumes (and that tests/golden/wire_lock.json does not "
        "ack) is one-sided protocol drift: either the client half of "
        "the feature is missing, or the field is dead weight on every "
        "event.  Read it in serve/client.py, or ack the intentional "
        "one-sidedness with `python -m repro.lint --update-locks`.",
        bad_example=(
            "job.append({\"event\": \"lane\", \"shard\": 0, ...})\n"
            "# client never reads \"shard\" -> W01\n"),
    ),
    Rule(
        "W02", "wire",
        "Client reads a wire field the server never emits",
        "The client decodes a field no server code path writes — it "
        "will always get the .get() default (or KeyError).  Emit the "
        "field server-side, or ack a deliberately optional field with "
        "`--update-locks`.",
        bad_example=(
            "event.get(\"shard\")   # server never emits \"shard\" -> W02\n"),
    ),
    Rule(
        "W03", "wire",
        "Wire-schema lockfile stale or missing",
        "Both halves of the protocol moved together (or a field was "
        "retired), but tests/golden/wire_lock.json still records the "
        "old schema — the next one-sided edit would be judged against "
        "a stale baseline.  Ack the schema change with "
        "`python -m repro.lint --update-locks`.",
    ),
    Rule(
        "G01", "purity",
        "RNG draw reachable from a clock-gating path",
        "The gating soundness argument (skipped edges are provably "
        "no-op) requires the suspend/fast-forward/bound paths to be "
        "pure: an RNG draw there would advance a generator that a "
        "non-gated run advances elsewhere (or not at all), breaking "
        "gating-on == gating-off bit-identity.",
        bad_example=(
            "class Controller:\n"
            "    def _maybe_gate(self):\n"
            "        if self.sim.rng.random() < 0.5:   # G01\n"
            "            self.clk.suspend()\n"),
    ),
    Rule(
        "G02", "purity",
        "Signal write reachable from a clock-gating path",
        "Gating paths may schedule wake events and use the sanctioned "
        "silent Signal.force replay, but a dispatching write (.set, "
        "._apply, gate-driver set_pmos/set_nmos) from a gating "
        "decision point would make the skipped-edge region observable.",
        bad_example=(
            "class Clock:\n"
            "    def suspend(self):\n"
            "        self.signal.set(0)   # G02: dispatching write\n"),
    ),
    Rule(
        "G03", "purity",
        "Gating-path root cannot be resolved",
        "A configured gating root (e.g. Clock.suspend) no longer "
        "exists under that name — the purity rule is checking nothing. "
        "Update the root list in lint/config.py (or the LintConfig in "
        "use) to the new name.",
    ),
    Rule(
        "X00", "engine",
        "Analyzer configuration error",
        "A module, class, or function the lint configuration points at "
        "is missing or unparseable.  The analyzer fails loudly rather "
        "than silently skipping the check.",
    ),
    Rule(
        "X01", "engine",
        "Malformed lint annotation",
        "A `# lint: nokey(...)`/`# lint: ok(...)` comment does not "
        "parse or is missing its reason.  Annotations are evidence; an "
        "unreadable one suppresses nothing.",
        bad_example=(
            "# lint: nokey(seed)        <- X01: no reason given\n"
            "# lint: ok(D03)            <- X01: no reason given\n"),
    ),
)}


def explain(rule_id: str) -> Optional[str]:
    """Human-readable catalog entry for ``--explain`` (None if unknown)."""
    rule = RULES.get(rule_id.upper())
    if rule is None:
        return None
    parts = [f"{rule.id} [{rule.family}] {rule.title}", "", rule.rationale]
    if rule.bad_example:
        parts += ["", "Example that fires it:", ""]
        parts += ["    " + ln for ln in rule.bad_example.rstrip().splitlines()]
    return "\n".join(parts)


def rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(RULES))
