"""Rule family K: cache/lock-step key completeness and format locks.

The repo's cache-soundness contract is that every ``SystemConfig``
field either flows into :func:`repro.session.cache.cache_key` and
:func:`repro.scenarios.parallel.lockstep_key`, or is *declared* outside
them with a reasoned ``# lint: nokey(field: reason)`` annotation inside
the key function's body.  Consumption is resolved on the shared
dataflow core (:mod:`repro.lint.dataflow`):

* direct consumption — ``config.<field>`` attribute reads inside the
  key function, including reads through a flow-sensitive *must-alias*
  of the parameter (``cfg = config; ... cfg.field``);
* bulk consumption — a helper called with the config argument whose
  body iterates ``__dataclass_fields__`` (the ``encode_config``
  pattern) consumes *every* field, minus any its own loop provably
  filters away (``if name != "trace":`` around the body, ``if name ==
  "trace": continue``, ``not in (...)`` guards, comprehension ``if``
  clauses — those fields then need their own keying or annotation) and
  minus any the key function then overwrites with a constant
  (``encoded["trace"] = False`` normalises ``trace`` back out, so it
  needs an annotation).

Also here: ``SteppingPolicy`` fields must map onto keyed
``SystemConfig`` fields (K05), ``RunResult``'s numeric fields must
appear in the cache's payload lists (K04), and the serialization
format lock (K03) — RunResult's field set and ``to_dict`` fingerprint
are pinned together with ``FORMAT_VERSION`` in
``tests/golden/format_lock.json``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import LintConfig, parse_nokey
from .dataflow import CodeUnit, FunctionFlow, own_exprs
from .engine import (ModuleIndex, find_class, find_def, node_fingerprint,
                     read_lock)
from .findings import Finding


# ---------------------------------------------------------------------------
# Dataclass field extraction
# ---------------------------------------------------------------------------
def dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, int, ast.AST]]:
    """``(name, lineno, annotation)`` for each dataclass field, in
    declaration order (annotated assignments at class-body level)."""
    fields = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                          ast.Name):
            fields.append((node.target.id, node.lineno, node.annotation))
    return fields


def _mentions_fields(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Attribute)
               and sub.attr == "__dataclass_fields__"
               for sub in ast.walk(node))


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _guard_names(test: ast.AST, var: str, keep: bool) -> Optional[Set[str]]:
    """Field names a loop-variable guard filters away, or ``None`` when
    the condition is not a recognisable name filter.

    ``keep=True`` reads the guard as "consume only when true" (the body
    lives under the ``if``): exclusions come from ``var != "x"`` /
    ``var not in (...)``, conjoined with ``and``.  ``keep=False`` reads
    it as "skip when true" (an ``if ...: continue``): exclusions come
    from ``var == "x"`` / ``var in (...)``, disjoined with ``or``.
    """
    if isinstance(test, ast.BoolOp):
        wanted = ast.And if keep else ast.Or
        if not isinstance(test.op, wanted):
            return None
        names: Set[str] = set()
        for value in test.values:
            sub = _guard_names(value, var, keep)
            if sub is None:
                return None
            names |= sub
        return names
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    op = test.ops[0]
    left, right = test.left, test.comparators[0]
    eq_op, in_op = (ast.NotEq, ast.NotIn) if keep else (ast.Eq, ast.In)
    if isinstance(op, eq_op):
        if isinstance(left, ast.Name) and left.id == var:
            name = _const_str(right)
        elif isinstance(right, ast.Name) and right.id == var:
            name = _const_str(left)
        else:
            return None
        return {name} if name is not None else None
    if isinstance(op, in_op) and isinstance(left, ast.Name) \
            and left.id == var \
            and isinstance(right, (ast.Tuple, ast.List, ast.Set)):
        names = {_const_str(elt) for elt in right.elts}
        return names if None not in names else None  # type: ignore
    return None


def _for_exclusions(loop: ast.For) -> Set[str]:
    """Field names a ``for name in ...__dataclass_fields__`` loop
    provably skips.  Two shapes count: the whole body under an
    ``if name != "x":`` guard, and a leading ``if name == "x": continue``."""
    var = loop.target.id  # caller checked the target is a plain Name
    excluded: Set[str] = set()
    for stmt in loop.body:
        if not isinstance(stmt, ast.If):
            continue
        if not stmt.orelse and len(loop.body) == 1:
            names = _guard_names(stmt.test, var, keep=True)
            if names:
                excluded |= names
        if any(isinstance(s, ast.Continue) for s in stmt.body):
            names = _guard_names(stmt.test, var, keep=False)
            if names:
                excluded |= names
    return excluded


def _bulk_helpers(index: ModuleIndex) -> Dict[str, Set[str]]:
    """Top-level functions anywhere in the index whose body touches
    ``__dataclass_fields__``, mapped to the field names their iteration
    provably *skips* — calling one with the config argument consumes
    every field except those.

    An unfiltered iterator (the plain ``encode_config`` pattern) maps to
    an empty set.  A helper with several field loops only skips a name
    every loop skips (intersection): any loop that consumes the field
    makes the helper consume it.
    """
    helpers: Dict[str, Set[str]] = {}
    for info in index.modules.values():
        for node in info.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _mentions_fields(node):
                continue
            loop_sets: List[Set[str]] = []
            for sub in ast.walk(node):
                if isinstance(sub, ast.For) \
                        and isinstance(sub.target, ast.Name) \
                        and _mentions_fields(sub.iter):
                    loop_sets.append(_for_exclusions(sub))
                elif isinstance(sub, (ast.DictComp, ast.ListComp,
                                      ast.SetComp, ast.GeneratorExp)):
                    for gen in sub.generators:
                        if not (isinstance(gen.target, ast.Name)
                                and _mentions_fields(gen.iter)):
                            continue
                        excluded: Set[str] = set()
                        for cond in gen.ifs:
                            names = _guard_names(cond, gen.target.id,
                                                 keep=True)
                            if names:
                                excluded |= names
                        loop_sets.append(excluded)
            skipped = loop_sets[0] if loop_sets else set()
            for other in loop_sets[1:]:
                skipped = skipped & other
            helpers[node.name] = skipped
    return helpers


def _key_consumption(func: ast.AST, param: str, helpers: Dict[str, Set[str]]
                     ) -> Tuple[Set[str], Optional[Set[str]], Set[str]]:
    """``(direct_reads, bulk_excluded, normalized_out)`` for one key
    function: attribute reads of the config param — resolved on the
    dataflow CFG, so a read through a *must-alias* (``cfg = config``
    followed by ``cfg.field``, where every definition reaching the read
    is that rebinding) counts too; the fields a bulk helper called on it
    (or on a must-alias of it) does *not* consume (``None`` when no bulk
    helper is called at all — then only direct reads count); and which
    fields are overwritten with a constant afterwards (normalised back
    out of the key).

    Must-alias, not may-alias, keeps the check sound: a name that is
    only *sometimes* the config never hides an unkeyed field.
    """
    args = func.args
    flow = FunctionFlow(CodeUnit(
        func.name, func, func.body,
        tuple(a.arg for a in (args.posonlyargs + args.args
                              + args.kwonlyargs))))

    def _is_param(expr: ast.AST, node_index: int) -> bool:
        if not isinstance(expr, ast.Name):
            return False
        if expr.id == param:
            return True
        defs = flow.defs_of(node_index, expr.id)
        return bool(defs) and all(
            d.value is not None and isinstance(d.value, ast.Name)
            and d.value.id == param for d in defs)

    direct: Set[str] = set()
    called: List[str] = []
    bulk_vars: Set[str] = set()
    for node in flow.nodes:
        for expr in own_exprs(node.stmt):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Attribute) \
                        and _is_param(sub.value, node.index):
                    direct.add(sub.attr)
                elif isinstance(sub, ast.Call):
                    name = None
                    if isinstance(sub.func, ast.Name):
                        name = sub.func.id
                    elif isinstance(sub.func, ast.Attribute):
                        name = sub.func.attr
                    if name in helpers and any(
                            _is_param(a, node.index) for a in sub.args):
                        called.append(name)
    consumes_all = bool(called)
    excluded: Optional[Set[str]] = None
    if consumes_all:
        excluded = set(helpers[called[0]])
        for name in called[1:]:
            excluded &= helpers[name]
        # variables bound to the bulk-encoded dict
        for sub in ast.walk(func):
            if (isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)):
                fn = sub.value.func
                name = fn.id if isinstance(fn, ast.Name) else (
                    fn.attr if isinstance(fn, ast.Attribute) else None)
                if name in helpers:
                    bulk_vars.add(sub.targets[0].id)
    normalized: Set[str] = set()
    for sub in ast.walk(func):
        if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Subscript)
                and isinstance(sub.targets[0].value, ast.Name)
                and sub.targets[0].value.id in bulk_vars):
            index_node = sub.targets[0].slice
            if isinstance(index_node, ast.Constant) \
                    and isinstance(index_node.value, str) \
                    and isinstance(sub.value, ast.Constant):
                normalized.add(index_node.value)
    return direct, excluded, normalized


# ---------------------------------------------------------------------------
# Lock payload (shared with --update-locks)
# ---------------------------------------------------------------------------
def _format_version(index: ModuleIndex, config: LintConfig) -> Optional[int]:
    info = index.get(config.cache_module)
    if info is None:
        return None
    for node in info.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == config.format_version_name \
                        and isinstance(node.value, ast.Constant):
                    return node.value.value
    return None


def _string_tuple(info, name: str) -> Optional[List[str]]:
    """A module-level ``NAME = ("a", "b", ...)`` constant's items."""
    for node in info.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name \
                        and isinstance(node.value, (ast.Tuple, ast.List)):
                    items = []
                    for elt in node.value.elts:
                        if isinstance(elt, ast.Constant) \
                                and isinstance(elt.value, str):
                            items.append(elt.value)
                    return items
    return None


def lock_payload(config: LintConfig, index: ModuleIndex) -> Dict:
    """Current serialization-format lock content (K03's baseline)."""
    info = index.get(config.config_module)
    cls = find_class(info.tree, config.result_class) if info else None
    fields = [name for name, _, _ in dataclass_fields(cls)] if cls else []
    to_dict = find_def(info.tree, f"{config.result_class}.to_dict") \
        if info else None
    return {
        "format_version": _format_version(index, config),
        "runresult_fields": fields,
        "to_dict_hash": node_fingerprint(to_dict) if to_dict else None,
    }


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------
def _check_one_key(config: LintConfig, index: ModuleIndex,
                   module: str, func_name: str, rule: str,
                   fields: Sequence[Tuple[str, int, ast.AST]],
                   helpers: Dict[str, Set[str]]) -> List[Finding]:
    findings: List[Finding] = []
    info = index.get(module)
    if info is None:
        return [Finding("X00", module, 1,
                        f"key module {module!r} not in the index",
                        "fix the lint configuration")]
    func = find_def(info.tree, func_name)
    if func is None:
        return [Finding("X00", module, 1,
                        f"key function {func_name!r} not found",
                        "fix the lint configuration or restore the "
                        "function")]
    if not func.args.args:
        return [Finding("X00", module, func.lineno,
                        f"{func_name} takes no arguments; cannot "
                        "identify the config parameter",
                        "give the key function its config parameter")]
    param = func.args.args[0].arg
    direct, bulk_excluded, normalized = _key_consumption(func, param, helpers)
    field_names = {name for name, _, _ in fields}
    if bulk_excluded is not None:
        consumed = (field_names - bulk_excluded) | direct
    else:
        consumed = set(direct)
    consumed -= normalized
    entries, malformed = parse_nokey(
        info.lines, func.lineno, func.end_lineno or func.lineno)
    for lineno in malformed:
        findings.append(Finding(
            "X01", info.relpath, lineno,
            "malformed nokey annotation (expected "
            "`# lint: nokey(field[, field]: reason)`)",
            "name the fields and give a non-empty reason"))
    allow: Set[str] = set()
    for entry in entries:
        for name in entry.fields:
            if name not in field_names:
                findings.append(Finding(
                    "K06", info.relpath, entry.line,
                    f"nokey annotation names {name!r}, which is not a "
                    f"{config.config_class} field",
                    "remove the stale entry (or fix the field name)"))
            elif name in consumed:
                findings.append(Finding(
                    "K06", info.relpath, entry.line,
                    f"nokey annotation names {name!r}, but {func_name} "
                    "does consume it",
                    "remove the entry — the field is keyed now"))
            allow.add(name)
    for name, _lineno, _ann in fields:
        if name in consumed or name in allow:
            continue
        findings.append(Finding(
            rule, info.relpath, func.lineno,
            f"{config.config_class}.{name} is not consumed by "
            f"{func_name} and not allowlisted",
            f"key it inside {func_name}, or annotate "
            f"`# lint: nokey({name}: <reason>)` in its body"))
    return findings


def _check_policy(config: LintConfig, index: ModuleIndex,
                  field_names: Set[str]) -> List[Finding]:
    info = index.get(config.policy_module)
    if info is None:
        return [Finding("X00", config.policy_module, 1,
                        "policy module not in the index",
                        "fix the lint configuration")]
    cls = find_class(info.tree, config.policy_class)
    if cls is None:
        return [Finding("X00", info.relpath, 1,
                        f"class {config.policy_class!r} not found",
                        "fix the lint configuration")]
    findings = []
    for name, lineno, _ann in dataclass_fields(cls):
        mapped = config.policy_field_aliases.get(name, name)
        if mapped not in field_names:
            findings.append(Finding(
                "K05", info.relpath, lineno,
                f"{config.policy_class}.{name} has no corresponding "
                f"{config.config_class} field (looked for {mapped!r})",
                f"add the {config.config_class} field that feeds it, "
                "or record the mapping in policy_field_aliases"))
    return findings


def _check_format_lock(config: LintConfig, index: ModuleIndex
                       ) -> List[Finding]:
    info = index.get(config.config_module)
    if info is None:
        return []
    cls = find_class(info.tree, config.result_class)
    if cls is None:
        return [Finding("X00", info.relpath, 1,
                        f"class {config.result_class!r} not found",
                        "fix the lint configuration")]
    current = lock_payload(config, index)
    lock = read_lock(config.format_lock_path)
    if lock is None:
        return [Finding(
            "K03", info.relpath, cls.lineno,
            f"serialization format lock missing "
            f"({config.format_lock_path})",
            "generate it with `python -m repro.lint --update-locks`")]
    findings = []
    layout_moved = (
        current["runresult_fields"] != lock.get("runresult_fields")
        or current["to_dict_hash"] != lock.get("to_dict_hash"))
    version_moved = current["format_version"] != lock.get("format_version")
    if layout_moved and not version_moved:
        findings.append(Finding(
            "K03", info.relpath, cls.lineno,
            f"{config.result_class} serialization changed but "
            f"{config.format_version_name} did not "
            f"(still {current['format_version']})",
            f"bump {config.format_version_name} in "
            f"{config.cache_module}, then run "
            "`python -m repro.lint --update-locks`"))
    elif layout_moved or version_moved:
        findings.append(Finding(
            "K03", info.relpath, cls.lineno,
            "serialization format lock is stale "
            f"(lock has version {lock.get('format_version')}, tree has "
            f"{current['format_version']})",
            "ack the change with `python -m repro.lint --update-locks`"))
    return findings


def _check_payload_lists(config: LintConfig, index: ModuleIndex
                         ) -> List[Finding]:
    info = index.get(config.config_module)
    cache_info = index.get(config.cache_module)
    if info is None or cache_info is None:
        return []
    cls = find_class(info.tree, config.result_class)
    if cls is None:
        return []
    floats = _string_tuple(cache_info, config.float_fields_name)
    ints = _string_tuple(cache_info, config.int_fields_name)
    if floats is None or ints is None:
        return [Finding(
            "X00", cache_info.relpath, 1,
            f"payload lists {config.float_fields_name}/"
            f"{config.int_fields_name} not found",
            "fix the lint configuration or restore the lists")]
    listed = set(floats) | set(ints)
    findings = []
    for name, lineno, ann in dataclass_fields(cls):
        if name in config.result_nonnumeric_fields or name in listed:
            continue
        if isinstance(ann, ast.Name) and ann.id in ("float", "int"):
            findings.append(Finding(
                "K04", info.relpath, lineno,
                f"{config.result_class}.{name} ({ann.id}) is in neither "
                f"{config.float_fields_name} nor "
                f"{config.int_fields_name} — the cache would drop it",
                f"add it to the matching payload list in "
                f"{config.cache_module} (and bump "
                f"{config.format_version_name})"))
    return findings


def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    """Run the whole K family."""
    findings: List[Finding] = []
    info = index.get(config.config_module)
    if info is None:
        return [Finding("X00", config.config_module, 1,
                        "config module not in the index",
                        "fix the lint configuration")]
    cls = find_class(info.tree, config.config_class)
    if cls is None:
        return [Finding("X00", info.relpath, 1,
                        f"class {config.config_class!r} not found",
                        "fix the lint configuration")]
    fields = dataclass_fields(cls)
    field_names = {name for name, _, _ in fields}
    helpers = _bulk_helpers(index)
    findings += _check_one_key(config, index, config.cache_module,
                               config.cache_key_func, "K01", fields, helpers)
    findings += _check_one_key(config, index, config.lockstep_module,
                               config.lockstep_key_func, "K02", fields,
                               helpers)
    findings += _check_policy(config, index, field_names)
    findings += _check_format_lock(config, index)
    findings += _check_payload_lists(config, index)
    return findings
