"""Rule family L: lock discipline over the CFG's held-lock stacks.

* **L01** — an attribute declared ``# lint: guarded_by(self._lock:
  reason)`` (on its initializing assignment) is read or written on a
  statement whose CFG node does not hold that lock.  ``__init__``/
  ``__post_init__`` are exempt — the object is not shared yet.
* **L02** — lock-order consistency: every ``with <lock>:`` nested under
  other held locks contributes an acquisition edge ``outer -> inner``
  (including one level of edges through called methods, with receivers
  resolved by def-use chains and ``__init__`` attribute types); a cycle
  in that digraph is a deadlock waiting for concurrency, and
  re-acquiring a lock already held deadlocks a non-reentrant primitive
  immediately.
* **L03** — no blocking call or generator suspension while holding a
  lock: ``time.sleep``, ``Future.result``, ``.join`` (non-string
  receiver), socket ``sendall``/``recv``/``accept``, ``urlopen``,
  subprocess spawns, and ``yield``/``await``.  ``Condition.wait``/
  ``wait_for`` on the *sole* held lock is sanctioned — it releases the
  lock while waiting; waiting on one lock while holding another is
  still flagged.

Lock identities are normalized so edges line up across methods:
``self._lock`` inside class ``C`` becomes ``C._lock`` (likewise the
factory form ``C._writer_lock()``); an unresolvable receiver keeps a
``?.`` prefix, which still detects inversions between the same two
syntactic locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import LintConfig, has_bare_guard, parse_guarded_by
from .dataflow import (CodeUnit, FunctionFlow, dataflow_for, lock_name_of,
                       own_exprs)
from .engine import ModuleIndex, ModuleInfo, dotted_name
from .findings import Finding

#: methods exempt from L01 — the object is under construction
_CTOR_METHODS = ("__init__", "__post_init__")

_BLOCKING_DOTTED = frozenset({
    "time.sleep", "os.system", "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
})
_BLOCKING_ATTRS = frozenset({"result", "sendall", "recv", "accept",
                             "urlopen"})
_WAIT_ATTRS = frozenset({"wait", "wait_for"})


@dataclass(frozen=True)
class GuardDecl:
    """One parsed guarded_by declaration."""

    cls: str
    attr: str
    lock: str        #: the access expression, e.g. ``self._cond``
    reason: str
    line: int


@dataclass(frozen=True)
class _Acq:
    """One lock acquisition site: ``inner`` taken while ``outer`` held."""

    outer: str
    inner: str
    relpath: str
    line: int
    via: str         #: "" for a direct `with`, else the callee qualname


# ---------------------------------------------------------------------------
# Guard collection
# ---------------------------------------------------------------------------
def _class_spans(info: ModuleInfo) -> List[Tuple[str, ast.ClassDef]]:
    return [(node.name, node) for node in ast.walk(info.tree)
            if isinstance(node, ast.ClassDef)]


def _self_attr_assign_at(cls: ast.ClassDef, lineno: int) -> Optional[str]:
    """The ``self.<attr>`` bound by an Assign/AnnAssign starting at
    ``lineno`` (or the next line, for markers on their own line)."""
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign)) \
                and node.lineno in (lineno, lineno + 1):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return target.attr
    return None


def collect_guards(info: ModuleInfo) -> Tuple[List[GuardDecl],
                                              List[Finding]]:
    guards: List[GuardDecl] = []
    findings: List[Finding] = []
    spans = _class_spans(info)
    for lineno, text in enumerate(info.lines, start=1):
        if has_bare_guard(text):
            findings.append(Finding(
                "X01", info.relpath, lineno,
                "malformed guarded_by marker (expected "
                "`# lint: guarded_by(self._lock: reason)`)",
                "name the lock expression and a non-empty reason"))
            continue
        parsed = parse_guarded_by(text)
        if parsed is None:
            continue
        lock, reason = parsed
        owner = None
        for name, cls in spans:
            if cls.lineno <= lineno <= (cls.end_lineno or cls.lineno):
                if _self_attr_assign_at(cls, lineno):
                    owner = (name, _self_attr_assign_at(cls, lineno))
        if owner is None:
            findings.append(Finding(
                "X01", info.relpath, lineno,
                "guarded_by marker not attached to a self-attribute "
                "assignment",
                "place it on (or directly above) the `self.<attr> = ...` "
                "line inside the class"))
            continue
        guards.append(GuardDecl(owner[0], owner[1], lock, reason, lineno))
    return guards, findings


# ---------------------------------------------------------------------------
# Identity normalization and receiver resolution
# ---------------------------------------------------------------------------
class _ClassRegistry:
    """Classes across the scanned modules + their __init__ attr types."""

    def __init__(self, index: ModuleIndex, scan: Sequence[str]):
        self.classes: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
        for info in index.under(scan):
            for name, cls in _class_spans(info):
                self.classes.setdefault(name, (info, cls))
        self._attr_types: Dict[str, Dict[str, str]] = {}

    def attr_types(self, cls_name: str) -> Dict[str, str]:
        """``self.<attr> -> ClassName`` from constructor assignments."""
        cached = self._attr_types.get(cls_name)
        if cached is not None:
            return cached
        out: Dict[str, str] = {}
        entry = self.classes.get(cls_name)
        if entry is not None:
            _, cls = entry
            for node in cls.body:
                if isinstance(node, ast.FunctionDef) \
                        and node.name == "__init__":
                    for sub in ast.walk(node):
                        if not isinstance(sub, ast.Assign):
                            continue
                        for target in sub.targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                    and isinstance(sub.value, ast.Call)
                                    and isinstance(sub.value.func, ast.Name)
                                    and sub.value.func.id in self.classes):
                                out[target.attr] = sub.value.func.id
        self._attr_types[cls_name] = out
        return out


def _normalize_lock(lock: str, cls: Optional[str],
                    registry: _ClassRegistry) -> str:
    """Map a syntactic lock expression to a global identity."""
    suffix = ""
    if lock.endswith("()"):
        lock, suffix = lock[:-2], "()"
    parts = lock.split(".")
    if parts[0] == "self" and cls is not None:
        if len(parts) == 3:
            # self.<attr>.<lock>: resolve the attribute's class
            owner = registry.attr_types(cls).get(parts[1])
            if owner is not None:
                return f"{owner}.{parts[2]}{suffix}"
            return f"?.{parts[2]}{suffix}"
        return f"{cls}.{'.'.join(parts[1:])}{suffix}"
    if len(parts) == 1:
        return f"?.{parts[0]}{suffix}"
    return f"?.{parts[-1]}{suffix}"


def _resolve_receiver(recv: ast.expr, cls: Optional[str],
                      flow: FunctionFlow, node_index: int,
                      registry: _ClassRegistry) -> Optional[str]:
    """Class name of a call receiver, via __init__ attribute types
    (``self.log``) or reaching definitions (``log = EventLog(...)``)."""
    if isinstance(recv, ast.Attribute) and isinstance(recv.value, ast.Name) \
            and recv.value.id == "self" and cls is not None:
        return registry.attr_types(cls).get(recv.attr)
    if isinstance(recv, ast.Name):
        classes = set()
        for d in flow.defs_of(node_index, recv.id):
            if (d.value is not None and isinstance(d.value, ast.Call)
                    and isinstance(d.value.func, ast.Name)
                    and d.value.func.id in registry.classes):
                classes.add(d.value.func.id)
        if len(classes) == 1:
            return classes.pop()
    return None


# ---------------------------------------------------------------------------
# Acquisition summaries (what locks does each method take, at any depth)
# ---------------------------------------------------------------------------
def _acquired_in(unit: CodeUnit, cls: Optional[str],
                 registry: _ClassRegistry) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(unit.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                name = lock_name_of(item.context_expr)
                if name is not None:
                    out.add(_normalize_lock(name, cls, registry))
    return out


def _unit_class(unit: CodeUnit) -> Optional[str]:
    parts = unit.name.split(".")
    return parts[0] if len(parts) >= 2 else None


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------
def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    findings: List[Finding] = []
    scan = config.scan_paths
    registry = _ClassRegistry(index, scan)

    # method -> locks it acquires anywhere (one level of call summaries)
    summaries: Dict[str, Set[str]] = {}
    module_flows: List[Tuple[ModuleInfo, List[Tuple[CodeUnit,
                                                    FunctionFlow]]]] = []
    guards_by_cls: Dict[str, List[GuardDecl]] = {}
    for info in index.under(scan):
        guards, guard_findings = collect_guards(info)
        findings.extend(guard_findings)
        for guard in guards:
            guards_by_cls.setdefault(guard.cls, []).append(guard)
        flows = dataflow_for(info).flows()
        module_flows.append((info, flows))
        for unit, _ in flows:
            if unit.name == "<module>":
                continue
            acquired = _acquired_in(unit, _unit_class(unit), registry)
            if acquired:
                summaries[unit.name] = acquired

    acqs: List[_Acq] = []
    for info, flows in module_flows:
        for unit, flow in flows:
            cls = _unit_class(unit)
            findings.extend(_check_unit(
                info, unit, flow, cls, registry, guards_by_cls,
                summaries, acqs))

    findings.extend(_check_lock_order(acqs))
    return findings


def _check_unit(info: ModuleInfo, unit: CodeUnit, flow: FunctionFlow,
                cls: Optional[str], registry: _ClassRegistry,
                guards_by_cls: Dict[str, List[GuardDecl]],
                summaries: Dict[str, Set[str]],
                acqs: List[_Acq]) -> List[Finding]:
    findings: List[Finding] = []
    method = unit.name.split(".")[-1]
    guards = {g.attr: g for g in guards_by_cls.get(cls or "", [])}
    check_l01 = bool(guards) and method not in _CTOR_METHODS

    for node in flow.nodes:
        held = node.held_locks
        held_norm = [_normalize_lock(h, cls, registry) for h in held]

        # -- acquisition edges + immediate re-acquire (L02) ------------
        if isinstance(node.stmt, (ast.With, ast.AsyncWith)):
            stack = list(held)
            for item in node.stmt.items:
                name = lock_name_of(item.context_expr)
                if name is None:
                    continue
                inner = _normalize_lock(name, cls, registry)
                for outer in stack:
                    outer_norm = _normalize_lock(outer, cls, registry)
                    if outer_norm == inner:
                        findings.append(Finding(
                            "L02", info.relpath, node.stmt.lineno,
                            f"lock {name} acquired while already held — "
                            "a non-reentrant primitive deadlocks here",
                            "restructure so each lock is taken once per "
                            "call path (or split the critical section)"))
                    else:
                        acqs.append(_Acq(outer_norm, inner, info.relpath,
                                         node.stmt.lineno, ""))
                stack.append(name)

        for expr in own_exprs(node.stmt):
            for sub in ast.walk(expr):
                # -- L01: guarded self-attribute access ----------------
                if (check_l01 and isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr in guards):
                    guard = guards[sub.attr]
                    if guard.lock not in held:
                        findings.append(Finding(
                            "L01", info.relpath, sub.lineno,
                            f"guarded attribute self.{guard.attr} "
                            f"accessed without {guard.lock} held "
                            f"(guarded_by declared at line {guard.line})",
                            f"wrap the access in `with {guard.lock}:` — "
                            f"declared reason: {guard.reason}"))
                if not isinstance(sub, ast.Call):
                    continue
                # -- call-summary acquisition edges (L02) --------------
                if held:
                    callee_locks = _callee_locks(
                        sub, cls, flow, node.index, registry, summaries)
                    if callee_locks:
                        callee, locks = callee_locks
                        for outer in held_norm:
                            for inner in locks:
                                if inner != outer:
                                    acqs.append(_Acq(
                                        outer, inner, info.relpath,
                                        sub.lineno, callee))
                                else:
                                    findings.append(Finding(
                                        "L02", info.relpath, sub.lineno,
                                        f"call to {callee}() re-acquires "
                                        f"{inner}, already held here",
                                        "release the lock before calling "
                                        "into code that takes it"))
                # -- L03: blocking while holding -----------------------
                if held:
                    findings.extend(_check_blocking(
                        info, sub, held, held_norm, cls, registry))
        if held:
            for expr in own_exprs(node.stmt):
                for sub in ast.walk(expr):
                    if isinstance(sub, (ast.Yield, ast.YieldFrom,
                                        ast.Await)):
                        findings.append(Finding(
                            "L03", info.relpath,
                            getattr(sub, "lineno", node.stmt.lineno),
                            f"suspension point while holding "
                            f"{', '.join(held)} — the lock stays held "
                            "across arbitrary caller code",
                            "yield outside the critical section (copy "
                            "what you need under the lock first)"))
    return findings


def _callee_locks(call: ast.Call, cls: Optional[str], flow: FunctionFlow,
                  node_index: int, registry: _ClassRegistry,
                  summaries: Dict[str, Set[str]]
                  ) -> Optional[Tuple[str, Set[str]]]:
    """(callee qualname, locks it acquires) for resolvable method calls."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name) and func.value.id == "self" \
            and cls is not None:
        qual = f"{cls}.{func.attr}"
        locks = summaries.get(qual)
        return (qual, locks) if locks else None
    owner = _resolve_receiver(func.value, cls, flow, node_index, registry)
    if owner is not None:
        qual = f"{owner}.{func.attr}"
        locks = summaries.get(qual)
        return (qual, locks) if locks else None
    return None


def _check_blocking(info: ModuleInfo, call: ast.Call,
                    held: Tuple[str, ...], held_norm: List[str],
                    cls: Optional[str],
                    registry: _ClassRegistry) -> List[Finding]:
    func = call.func
    dotted = dotted_name(func)
    label: Optional[str] = None
    if dotted is not None and dotted in _BLOCKING_DOTTED:
        label = f"{dotted}()"
    elif isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in _WAIT_ATTRS:
            recv = dotted_name(func.value)
            if recv is not None:
                recv_norm = _normalize_lock(recv, cls, registry)
                others = [h for h, hn in zip(held, held_norm)
                          if h != recv and hn != recv_norm]
            else:
                others = list(held)
            if others:
                label = (f".{attr}() on {recv or 'a condition'} while "
                         f"also holding {', '.join(others)}")
        elif attr == "join":
            if not (isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, str)):
                label = ".join()"
        elif attr in _BLOCKING_ATTRS:
            label = f".{attr}()"
    if label is None:
        return []
    return [Finding(
        "L03", info.relpath, call.lineno,
        f"blocking call {label} while holding {', '.join(held)}",
        "compute/wait first, then take the lock (hold locks only "
        "around shared-state reads and writes)")]


# ---------------------------------------------------------------------------
# L02: cycle detection over the acquisition digraph
# ---------------------------------------------------------------------------
def _check_lock_order(acqs: List[_Acq]) -> List[Finding]:
    edges: Dict[Tuple[str, str], _Acq] = {}
    for acq in sorted(acqs, key=lambda a: (a.relpath, a.line)):
        edges.setdefault((acq.outer, acq.inner), acq)
    succs: Dict[str, List[str]] = {}
    for outer, inner in edges:
        succs.setdefault(outer, []).append(inner)

    def _path(src: str, dst: str) -> Optional[List[Tuple[str, str]]]:
        """Edge path src -> ... -> dst (BFS, deterministic order)."""
        queue: List[Tuple[str, List[Tuple[str, str]]]] = [(src, [])]
        seen = {src}
        while queue:
            node, path = queue.pop(0)
            for nxt in sorted(succs.get(node, [])):
                step = path + [(node, nxt)]
                if nxt == dst:
                    return step
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, step))
        return None

    findings: List[Finding] = []
    reported: Set[frozenset] = set()
    for (outer, inner), acq in sorted(edges.items()):
        back = _path(inner, outer)
        if back is None:
            continue
        cycle_nodes = frozenset([outer, inner]
                                + [n for edge in back for n in edge])
        if cycle_nodes in reported:
            continue
        reported.add(cycle_nodes)
        back_acq = edges[back[-1]]
        via = f" (via {acq.via}())" if acq.via else ""
        findings.append(Finding(
            "L02", acq.relpath, acq.line,
            f"lock order inversion: {acq.outer} -> {acq.inner} "
            f"here{via}, but the reverse order is taken at "
            f"{back_acq.relpath}:{back_acq.line}",
            "pick one global acquisition order for these locks and "
            "release before calling into code that takes the other"))
    return findings
