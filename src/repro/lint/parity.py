"""Rule family P: scalar/vector backend-parity pairing.

The repo keeps paired implementations bit-identical op-for-op (scalar
``AnalogSolver.crossing_bound`` vs. vector ``lane_crossing_bound``, the
RK2 power-stage steps, the fused numba kernel vs. the numpy reference,
the gating entry conditions vs. the FSM action conditions, the clock
edge functions vs. the fast-forward replay).  The pair registry lives
in :data:`repro.lint.config.DEFAULT_PARITY_PAIRS`; this module hashes
each member's docstring-stripped AST and compares against
``tests/golden/parity_lock.json``:

* one member's hash moved, the twin's did not → **P01** (the dangerous
  case: a one-sided edit that silently breaks bit-parity);
* both moved but the lock still records the old pair → **P02** (edit
  acknowledged by re-running ``--update-locks``);
* a member or lock entry is missing → **P03**.

The lockfile is the explicit ack: updating it is a reviewable diff
that says "yes, both sides were considered together".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .config import LintConfig
from .engine import ModuleIndex, find_def, node_fingerprint, read_lock
from .findings import Finding


def _resolve(index: ModuleIndex, member: Tuple[str, str]):
    """``(ModuleInfo, def node)`` for one pair member, or ``(info,
    None)`` / ``(None, None)`` when unresolvable."""
    module, qualname = member
    info = index.get(module)
    if info is None:
        return None, None
    return info, find_def(info.tree, qualname)


def member_hashes(config: LintConfig, index: ModuleIndex
                  ) -> Tuple[Dict[str, Dict], List[Finding]]:
    """Current fingerprints for every registered pair, plus P03
    findings for members that cannot be resolved."""
    hashes: Dict[str, Dict] = {}
    findings: List[Finding] = []
    for pair_id, a, b in config.parity_pairs:
        sides = {}
        for side, member in (("a", a), ("b", b)):
            info, node = _resolve(index, member)
            if node is None:
                where = member[0] if info is not None else "lint/config.py"
                findings.append(Finding(
                    "P03", where, 1,
                    f"parity pair {pair_id!r}: member "
                    f"{member[0]}:{member[1]} cannot be resolved",
                    "update the pair registry to the renamed symbol, "
                    "or restore the function"))
                sides = {}
                break
            sides[side] = {
                "module": member[0],
                "qualname": member[1],
                "hash": node_fingerprint(node),
                "line": node.lineno,
            }
        if sides:
            hashes[pair_id] = sides
    return hashes, findings


def lock_payload(config: LintConfig, index: ModuleIndex) -> Dict:
    """Lockfile content for the current tree (``--update-locks``)."""
    hashes, findings = member_hashes(config, index)
    if findings:
        raise RuntimeError("cannot lock unresolved parity pairs: "
                           + findings[0].render())
    return {"pairs": {
        pair_id: {side: {k: v for k, v in entry.items() if k != "line"}
                  for side, entry in sides.items()}
        for pair_id, sides in hashes.items()}}


def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    if not config.parity_pairs:
        return []
    hashes, findings = member_hashes(config, index)
    lock = read_lock(config.parity_lock_path)
    lock_pairs = (lock or {}).get("pairs", {})
    if lock is None:
        first = next(iter(hashes.values()), None)
        where = first["a"]["module"] if first else "lint/config.py"
        line = first["a"]["line"] if first else 1
        findings.append(Finding(
            "P03", where, line,
            f"parity lockfile missing ({config.parity_lock_path})",
            "generate it with `python -m repro.lint --update-locks`"))
        return findings
    for pair_id, sides in hashes.items():
        locked = lock_pairs.get(pair_id)
        if locked is None or set(locked) != {"a", "b"}:
            findings.append(Finding(
                "P03", sides["a"]["module"], sides["a"]["line"],
                f"parity pair {pair_id!r} has no lockfile entry",
                "ack the new pair with "
                "`python -m repro.lint --update-locks`"))
            continue
        moved = {}
        for side in ("a", "b"):
            entry, locked_entry = sides[side], locked[side]
            renamed = (entry["module"] != locked_entry.get("module")
                       or entry["qualname"] != locked_entry.get("qualname"))
            moved[side] = renamed or entry["hash"] != locked_entry.get("hash")
        if moved["a"] != moved["b"]:
            changed = "a" if moved["a"] else "b"
            twin = "b" if moved["a"] else "a"
            entry, twin_entry = sides[changed], sides[twin]
            findings.append(Finding(
                "P01", entry["module"], entry["line"],
                f"parity pair {pair_id!r}: {entry['qualname']} changed "
                f"but its twin {twin_entry['module']}:"
                f"{twin_entry['qualname']} did not",
                "port the change to the twin (bit-identical op-for-op),"
                " then ack with `python -m repro.lint --update-locks`"))
        elif moved["a"]:
            entry = sides["a"]
            findings.append(Finding(
                "P02", entry["module"], entry["line"],
                f"parity pair {pair_id!r}: both members changed but "
                "the lockfile still records the old pair",
                "ack the joint edit with "
                "`python -m repro.lint --update-locks`"))
    return findings
