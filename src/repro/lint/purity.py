"""Rule family G: gating-path purity (the PR 6 soundness argument).

Clock gating is exact only because everything the gating machinery
executes — deciding to gate (``_maybe_gate``, the analytic crossing
bounds), suspending (``Clock.suspend``), and resuming
(``_resume``/``Clock.fast_forward``) — is *pure* with respect to the
simulation's observable state: no RNG draws (a draw would advance a
generator that an ungated run advances elsewhere) and no dispatching
signal writes (``Signal.set``/``_apply`` and the gate-driver setters;
``Signal.force`` is the one sanctioned silent replay primitive, and
scheduling kernel events is how wakes are armed).

This module builds a static call graph over the scanned modules and
walks every function *directly* reachable from the configured gating
roots.  Scheduled callbacks are deliberately not followed: anything
delivered through the event loop is ordinary, ordered kernel work — the
soundness claim is about the code that runs *instead of* the skipped
edges, i.e. the synchronous call chains.

Resolution is name-based (``self.f()`` prefers a method of the same
class; other attribute calls match any same-named method in the scan
set), which over-approximates the reachable set — exactly the right
direction for a soundness check.  One sharpening rides on the shared
dataflow index: a ``self.<attr>.method()`` call whose receiver type is
pinned by a constructor assignment (``self.attr = ClassName(...)`` in
``__init__``) resolves to exactly that class's method, so an unrelated
same-named method elsewhere in the tree no longer drags its RNG or
signal writes onto the gating path.  Receivers the map cannot type keep
the over-approximating fallback.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import LintConfig
from .engine import ModuleIndex
from .findings import Finding
from .locks import _ClassRegistry

#: dispatching write calls (observable side effects)
_WRITE_NAMES = frozenset({"set", "_apply", "set_pmos", "set_nmos",
                          "set_ov_mode"})

#: calls that are sanctioned on gating paths and never descended into:
#: ``force`` is the silent bit-exact replay write
_NO_TRAVERSE = frozenset({"force"})

#: identifier segments that mark an RNG object
def _is_rng_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng") or name.endswith("_rngs")


@dataclass
class _Func:
    module: str
    qualname: str
    cls: Optional[str]
    node: ast.AST


def _collect_functions(index: ModuleIndex, scan: Sequence[str]
                       ) -> Tuple[Dict[Tuple[str, str], _Func],
                                  Dict[str, List[_Func]]]:
    by_qual: Dict[Tuple[str, str], _Func] = {}
    by_name: Dict[str, List[_Func]] = {}

    def add(info, node, cls: Optional[str]) -> None:
        qual = f"{cls}.{node.name}" if cls else node.name
        fn = _Func(info.relpath, qual, cls, node)
        by_qual[(info.relpath, qual)] = fn
        by_name.setdefault(node.name, []).append(fn)

    for info in index.under(scan):
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(info, node, None)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        add(info, sub, node.name)
    return by_qual, by_name


def _rng_markers(node: ast.AST) -> List[Tuple[int, str]]:
    markers = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and _is_rng_name(sub.attr):
            markers.append((sub.lineno, sub.attr))
        elif isinstance(sub, ast.Name) and _is_rng_name(sub.id) \
                and isinstance(sub.ctx, ast.Load):
            markers.append((sub.lineno, sub.id))
    return markers


def _write_markers(node: ast.AST) -> List[Tuple[int, str]]:
    markers = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr in _WRITE_NAMES:
            markers.append((sub.lineno, sub.func.attr))
    return markers


def _direct_calls(node: ast.AST) -> List[Tuple[str, str, Optional[str]]]:
    """``(kind, name, recv_attr)`` for every call site: kind is
    ``self``, ``attr`` or ``bare``; ``recv_attr`` is the attribute name
    when the receiver is ``self.<attr>`` (typable via ``__init__``)."""
    calls = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name):
            calls.append(("bare", func.id, None))
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                calls.append(("self", func.attr, None))
            else:
                recv_attr = None
                if isinstance(func.value, ast.Attribute) \
                        and isinstance(func.value.value, ast.Name) \
                        and func.value.value.id == "self":
                    recv_attr = func.value.attr
                calls.append(("attr", func.attr, recv_attr))
    return calls


def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    if not config.gating_roots:
        return []
    by_qual, by_name = _collect_functions(index, config.scan_paths)
    registry = _ClassRegistry(index, config.scan_paths)
    findings: List[Finding] = []

    # resolve the roots
    queue: List[Tuple[_Func, str]] = []   # (function, path-so-far label)
    for module, qualname in config.gating_roots:
        fn = by_qual.get((module, qualname))
        if fn is None:
            findings.append(Finding(
                "G03", module, 1,
                f"gating root {module}:{qualname} cannot be resolved",
                "update gating_roots in the lint configuration to the "
                "renamed symbol"))
            continue
        queue.append((fn, qualname))

    visited: Set[Tuple[str, str]] = set()
    while queue:
        fn, path = queue.pop(0)
        key = (fn.module, fn.qualname)
        if key in visited:
            continue
        visited.add(key)
        for lineno, name in _rng_markers(fn.node):
            findings.append(Finding(
                "G01", fn.module, lineno,
                f"RNG access ({name!r}) in {fn.qualname}, reachable "
                f"from gating path [{path}]",
                "gating paths must not draw from (or expose) RNG "
                "state — move the draw out of the gated region"))
        for lineno, name in _write_markers(fn.node):
            findings.append(Finding(
                "G02", fn.module, lineno,
                f"dispatching write .{name}() in {fn.qualname}, "
                f"reachable from gating path [{path}]",
                "gating paths may schedule wakes or use Signal.force; "
                "a dispatching write makes skipped edges observable"))
        for kind, name, recv_attr in _direct_calls(fn.node):
            if name in _NO_TRAVERSE:
                continue
            targets: List[_Func] = []
            if kind == "self" and fn.cls is not None:
                same_class = [cand for cand in by_name.get(name, [])
                              if cand.module == fn.module
                              and cand.cls == fn.cls]
                targets = same_class or by_name.get(name, [])
            elif kind == "bare":
                same_module = [cand for cand in by_name.get(name, [])
                               if cand.module == fn.module
                               and cand.cls is None]
                targets = same_module
            else:
                owner = None
                if recv_attr is not None and fn.cls is not None:
                    owner = registry.attr_types(fn.cls).get(recv_attr)
                typed = [cand for cand in by_name.get(name, [])
                         if owner is not None and cand.cls == owner]
                targets = typed or by_name.get(name, [])
            for target in targets:
                if (target.module, target.qualname) not in visited:
                    queue.append((target, f"{path} -> {target.qualname}"))
    return findings
