"""SARIF 2.1.0 output for GitHub code scanning.

One run, one ``repro.lint`` tool entry: every catalog rule becomes a
``reportingDescriptor`` and every finding a ``result`` with a physical
location, so ``github/codeql-action/upload-sarif`` renders findings as
inline PR annotations.  Suppressed findings are carried with a
``suppressions`` entry (kind ``inSource``) instead of being dropped,
matching the JSON report's contract that suppressions stay visible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from .config import LintConfig
from .engine import LintReport
from .findings import Finding, RULES

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _rule_descriptor(rule_id: str) -> Dict:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.title.replace(" ", ""),
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
        "properties": {"family": rule.family},
    }


def _result(finding: Finding, base: str, rule_index: Dict[str, int],
            suppressed_reason: str = "") -> Dict:
    uri = f"{base}/{finding.path}" if base else finding.path
    out: Dict = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": "error",
        "message": {"text": f"{finding.message} — hint: {finding.hint}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri,
                                     "uriBaseId": "%SRCROOT%"},
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
    }
    if suppressed_reason:
        out["suppressions"] = [{"kind": "inSource",
                                "justification": suppressed_reason}]
    return out


def sarif_payload(report: LintReport, config: LintConfig) -> Dict:
    """The SARIF log object for one analyzer run."""
    # uris must be repo-relative for code-scanning annotations to land
    try:
        base = Path(config.root).resolve().relative_to(
            Path.cwd().resolve()).as_posix()
    except ValueError:
        base = ""
    if base == ".":
        base = ""
    used = sorted({f.rule for f in report.findings}
                  | {s.finding.rule for s in report.suppressed})
    rules = [_rule_descriptor(r) for r in used if r in RULES]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results: List[Dict] = [
        _result(f, base, rule_index) for f in report.findings
        if f.rule in rule_index]
    results += [
        _result(s.finding, base, rule_index, suppressed_reason=s.reason)
        for s in report.suppressed if s.finding.rule in rule_index]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.lint",
                "rules": rules,
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(path: Path, report: LintReport,
                config: LintConfig) -> None:
    payload = json.dumps(sarif_payload(report, config), indent=1,
                         sort_keys=True)
    Path(path).write_text(payload + "\n", encoding="utf-8")
