"""Rule family W: wire-schema drift between server and client.

The serve stack's JSON protocol has two directions:

* **downstream** — fields the server writes (SSE event dict literals in
  ``serve/jobs.py``/``serve/sse.py``, ``_json(...)`` response payloads
  in ``serve/server.py``, and ``Job.snapshot``'s return literal) vs the
  fields the client reads (constant-key subscripts and ``.get()`` calls
  in ``serve/client.py``);
* **submit** — fields the client encoder ``job_request`` stores vs the
  fields the server decoder ``decode_job`` reads (including its
  known-fields set literal).

Both field sets are locked in ``tests/golden/wire_lock.json``.  After a
lock bump, a *new* field written on one side and never consumed on the
other is one-sided drift: **W01** (writer-side) / **W02**
(reader-side).  Consistent two-sided changes — or retired fields —
just need a lock refresh: **W03**, acked with ``--update-locks``
exactly like the parity and format locks.

Extraction is deliberately literal-based: dynamically built payloads
(``session.cache_stats()`` passthroughs) are invisible to it, which is
fine — the rule exists to catch the common drift mode, a field added to
one side's literal and forgotten on the other.  On fixture trees where
no wire module resolves, the family is silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import LintConfig
from .engine import ModuleIndex, find_def
from .findings import Finding

#: ``.get`` receivers that are not wire payloads
_NON_WIRE_RECEIVERS = ("os.environ",)

Site = Tuple[str, int]     # (relpath, line)


@dataclass
class WireSchema:
    """Current field sets, each field mapped to its first source site."""

    writes: Dict[str, Dict[str, Site]] = field(default_factory=dict)
    reads: Dict[str, Dict[str, Site]] = field(default_factory=dict)
    missing: List[Finding] = field(default_factory=list)

    def any_surface(self) -> bool:
        return bool(self.writes or self.reads or self.missing)


def _const_keys(literal: ast.Dict) -> List[Tuple[str, int]]:
    out = []
    for key in literal.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out.append((key.value, key.lineno))
    return out


def _record(bucket: Dict[str, Site], relpath: str,
            pairs: List[Tuple[str, int]]) -> None:
    for name, line in pairs:
        bucket.setdefault(name, (relpath, line))


def _is_event_literal(literal: ast.Dict) -> bool:
    return any(name == "event" for name, _ in _const_keys(literal))


def _emit_literals(tree: ast.Module) -> List[Tuple[ast.Dict, bool]]:
    """(dict literal, is_emission) for every literal in an emit module:
    emissions are event dicts anywhere plus args of ``_json(...)``."""
    json_args = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute) \
                and node.func.attr == "_json":
            for arg in node.args:
                json_args.add(id(arg))
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            out.append((node, _is_event_literal(node)
                        or id(node) in json_args))
    return out


def _function_writes(func_node: ast.AST) -> List[Tuple[str, int]]:
    """Const keys of return dict literals + const subscript stores."""
    pairs: List[Tuple[str, int]] = []
    for node in ast.walk(func_node):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            pairs.extend(_const_keys(node.value))
        elif (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Store)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            pairs.append((node.slice.value, node.lineno))
    return pairs


def _function_reads(func_node: ast.AST) -> List[Tuple[str, int]]:
    """Const subscript loads, ``.get()`` consts, and known-field set
    literals inside one decoder function."""
    pairs: List[Tuple[str, int]] = []
    for node in ast.walk(func_node):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            pairs.append((node.slice.value, node.lineno))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            pairs.append((node.args[0].value, node.lineno))
        elif isinstance(node, ast.Set):
            for elt in node.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str):
                    pairs.append((elt.value, elt.lineno))
    return pairs


def _module_reads(tree: ast.Module) -> List[Tuple[str, int]]:
    """Client-side reads: const subscript loads + ``.get()`` consts.
    ``.pop`` is excluded (the client's own bookkeeping keys, e.g. the
    decoded ``"run"``, are not wire fields)."""
    pairs: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            pairs.append((node.slice.value, node.lineno))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            recv = ast.unparse(node.func.value) \
                if hasattr(ast, "unparse") else ""
            if recv not in _NON_WIRE_RECEIVERS:
                pairs.append((node.args[0].value, node.lineno))
    return pairs


def extract(config: LintConfig, index: ModuleIndex) -> WireSchema:
    schema = WireSchema()
    down_w: Dict[str, Site] = {}
    down_r: Dict[str, Site] = {}
    up_w: Dict[str, Site] = {}
    up_r: Dict[str, Site] = {}

    for relpath in config.wire_emit_modules:
        info = index.get(relpath)
        if info is None:
            continue
        for literal, is_emission in _emit_literals(info.tree):
            if is_emission:
                _record(down_w, relpath, _const_keys(literal))
    for relpath, qual in config.wire_emit_functions:
        info = index.get(relpath)
        if info is None:
            continue
        node = find_def(info.tree, qual)
        if node is None:
            schema.missing.append(Finding(
                "X00", relpath, 1,
                f"wire emit function {qual!r} not found",
                "update wire_emit_functions in the lint configuration"))
            continue
        _record(down_w, relpath, _function_writes(node))
    for relpath in config.wire_reader_modules:
        info = index.get(relpath)
        if info is None:
            continue
        _record(down_r, relpath, _module_reads(info.tree))

    enc_rel, enc_qual = config.wire_submit_encoder
    dec_rel, dec_qual = config.wire_submit_decoder
    enc_info = index.get(enc_rel)
    dec_info = index.get(dec_rel)
    if enc_info is not None:
        node = find_def(enc_info.tree, enc_qual)
        if node is None:
            schema.missing.append(Finding(
                "X00", enc_rel, 1,
                f"wire submit encoder {enc_qual!r} not found",
                "update wire_submit_encoder in the lint configuration"))
        else:
            _record(up_w, enc_rel, _function_writes(node))
    if dec_info is not None:
        node = find_def(dec_info.tree, dec_qual)
        if node is None:
            schema.missing.append(Finding(
                "X00", dec_rel, 1,
                f"wire submit decoder {dec_qual!r} not found",
                "update wire_submit_decoder in the lint configuration"))
        else:
            _record(up_r, dec_rel, _function_reads(node))

    if down_w:
        schema.writes["downstream"] = down_w
    if down_r:
        schema.reads["downstream"] = down_r
    if up_w:
        schema.writes["submit"] = up_w
    if up_r:
        schema.reads["submit"] = up_r
    return schema


# ---------------------------------------------------------------------------
# Lock + check
# ---------------------------------------------------------------------------
def lock_payload(config: LintConfig, index: ModuleIndex) -> Dict:
    schema = extract(config, index)
    payload: Dict[str, Dict[str, List[str]]] = {}
    for direction in ("downstream", "submit"):
        payload[direction] = {
            "writes": sorted(schema.writes.get(direction, {})),
            "reads": sorted(schema.reads.get(direction, {})),
        }
    return payload


_WRITER = {"downstream": "server", "submit": "client"}
_READER = {"downstream": "client", "submit": "server"}


def check(config: LintConfig, index: ModuleIndex) -> List[Finding]:
    from .engine import read_lock
    schema = extract(config, index)
    if not schema.any_surface():
        return []          # fixture tree without a serve stack
    findings = list(schema.missing)
    anchor = config.wire_submit_decoder[0]
    lock = read_lock(config.wire_lock_path)
    if lock is None:
        findings.append(Finding(
            "W03", anchor, 1,
            f"wire-schema lockfile missing ({config.wire_lock_path})",
            "generate it with `python -m repro.lint --update-locks`"))
        return findings

    for direction in ("downstream", "submit"):
        writes = schema.writes.get(direction, {})
        reads = schema.reads.get(direction, {})
        locked = lock.get(direction, {})
        locked_w = set(locked.get("writes", ()))
        locked_r = set(locked.get("reads", ()))
        writer, reader = _WRITER[direction], _READER[direction]
        stale: List[str] = []
        for name in sorted(set(writes) - locked_w):
            if name in reads:
                stale.append(f"+{writer}:{name}")
                continue
            path, line = writes[name]
            findings.append(Finding(
                "W01", path, line,
                f"{writer} writes wire field {name!r} ({direction}) "
                f"that the {reader} never reads",
                f"consume it on the {reader} side, or ack the one-sided "
                "field with `python -m repro.lint --update-locks`"))
        for name in sorted(set(reads) - locked_r):
            if name in writes:
                stale.append(f"+{reader}:{name}")
                continue
            path, line = reads[name]
            findings.append(Finding(
                "W02", path, line,
                f"{reader} reads wire field {name!r} ({direction}) "
                f"that the {writer} never writes",
                f"emit it on the {writer} side, or ack the deliberately "
                "optional field with `python -m repro.lint "
                "--update-locks`"))
        stale.extend(f"-{writer}:{n}" for n in sorted(locked_w
                                                      - set(writes)))
        stale.extend(f"-{reader}:{n}" for n in sorted(locked_r
                                                      - set(reads)))
        if stale:
            findings.append(Finding(
                "W03", anchor, 1,
                f"wire lock is stale for the {direction} direction "
                f"({', '.join(stale)})",
                "ack the schema change with `python -m repro.lint "
                "--update-locks`"))
    return findings
