"""Measurement utilities: waveform analysis and reaction-time harness."""

from .reaction import (
    CONDITIONS,
    ReactionMeasurement,
    measure_all,
    measure_reaction,
    reactions_from_trace,
    worst_reaction_from_trace,
)
from .waveform import (
    ascii_waveform,
    duty_in_window,
    edge_count,
    episodes,
    overshoot,
    ripple,
    sample_series,
    settling_time,
    undershoot,
)

__all__ = [
    "ripple", "overshoot", "undershoot", "settling_time",
    "edge_count", "episodes", "duty_in_window",
    "sample_series", "ascii_waveform",
    "measure_reaction", "measure_all", "ReactionMeasurement", "CONDITIONS",
    "reactions_from_trace", "worst_reaction_from_trace",
]
