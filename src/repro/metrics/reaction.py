"""Reaction-time measurement harness (Table I).

Measures, in simulation, the latency from a sensor condition edge to the
corresponding gate-drive reaction, for each of the five conditions (HL,
UV, OV, OC, ZC) and each controller.  The analog is replaced by drivable
stubs so the measurement isolates the *controller* path, exactly like the
paper's PrimeTime latency extraction on the digital netlist.

For the synchronous controller the stimulus is swept across the clock
period and the worst case reported (the paper quotes the deterministic
2.5-Tclk bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..control.async_controller import AsyncMultiphaseController, AsyncTimings
from ..control.params import BuckControlParams, StubGates, StubSensors
from ..control.sync_controller import SyncMultiphaseController
from ..sim.core import Simulator
from ..sim.signal import Signal
from ..sim.units import NS, US

CONDITIONS = ("HL", "UV", "OV", "OC", "ZC")


@dataclass
class ReactionMeasurement:
    condition: str
    latency: float          #: stimulus edge -> gate-drive edge (seconds)


def _mk(controller: str, frequency: Optional[float], n_phases: int,
        seed: int, params: Optional[BuckControlParams] = None):
    sim = Simulator(seed=seed)
    sensors = StubSensors(sim, n_phases)
    gates = StubGates(sim, n_phases)
    params = params or BuckControlParams(phase_dwell=100 * US)  # park rotation
    if controller == "sync":
        assert frequency is not None
        ctrl = SyncMultiphaseController(sim, sensors, gates, n_phases,
                                        frequency, params=params, trace=True)
    else:
        ctrl = AsyncMultiphaseController(sim, sensors, gates, n_phases,
                                         params=params, trace=True)
    return sim, sensors, gates, ctrl


def _measure_one(controller: str, frequency: Optional[float],
                 condition: str, offset: float, seed: int = 0) -> float:
    """One latency sample; ``offset`` staggers the stimulus against the
    clock (irrelevant for async)."""
    n = 2 if condition == "HL" else 1
    sim, sensors, gates, ctrl = _mk(controller, frequency, n, seed)
    t_setup = 200 * NS + offset

    if condition in ("UV", "OV"):
        sim.run_until(t_setup)
        t0 = sim.now
        (sensors.uv if condition == "UV" else sensors.ov).output.set(True)
        watch, edge = gates.gp[0], "rise"

    elif condition == "HL":
        # HL reaction of a stage that is *not* token-active: phase 1.
        sim.run_until(t_setup)
        t0 = sim.now
        sensors.uv.output.set(True)   # HL implies UV
        sensors.hl.output.set(True)
        watch, edge = gates.gp[1], "rise"

    elif condition == "OC":
        sensors.uv.output.set(True, 20 * NS)
        sim.run_until(t_setup)
        if not gates.gp[0].value:
            raise RuntimeError("charge cycle did not start")
        t0 = sim.now
        sensors.oc[0].output.set(True)
        watch, edge = gates.gp[0], "fall"

    elif condition == "ZC":
        sensors.uv.output.set(True, 20 * NS)
        sim.run_until(120 * NS)
        sensors.uv.output.set(False)
        sensors.oc[0].output.set(True)
        sim.run_until(170 * NS)
        sensors.oc[0].output.set(False)
        sim.run_until(t_setup + 60 * NS)
        if not gates.gn[0].value:
            raise RuntimeError("rectification did not start")
        t0 = sim.now
        sensors.zc[0].output.set(True)
        watch, edge = gates.gn[0], "fall"
    else:
        raise ValueError(f"unknown condition {condition!r}")

    sim.run(3 * US)
    edges = [t for t in watch.edges(edge) if t >= t0]
    if not edges:
        raise RuntimeError(
            f"{controller}/{condition}: no reaction observed")
    return edges[0] - t0


#: public name for the single-sample measurement (used by the Table I sweep)
measure_one = _measure_one


def measure_reaction(controller: str, condition: str,
                     frequency: Optional[float] = None,
                     n_offsets: int = 8) -> ReactionMeasurement:
    """Worst-case reaction latency for one condition.

    For the synchronous controller the stimulus phase is swept over one
    clock period (the latency depends on where the edge lands); the async
    controller is phase-free and a single sample suffices.
    """
    if controller == "sync":
        if frequency is None:
            raise ValueError("sync measurement needs a clock frequency")
        period = 1.0 / frequency
        offsets = [period * i / n_offsets for i in range(n_offsets)]
    else:
        offsets = [0.0]
    worst = max(_measure_one(controller, frequency, condition, off)
                for off in offsets)
    return ReactionMeasurement(condition, worst)


def measure_all(controller: str, frequency: Optional[float] = None,
                n_offsets: int = 8) -> Dict[str, float]:
    """Worst-case latency for all five conditions; {condition: seconds}."""
    return {
        c: measure_reaction(controller, c, frequency, n_offsets).latency
        for c in CONDITIONS
    }


# ---------------------------------------------------------------------------
# Post-hoc reaction reads from recorded TraceSets
# ---------------------------------------------------------------------------
def reactions_from_trace(trace, stimulus: str, response: str,
                         stimulus_edge: str = "rise",
                         response_edge: str = "any",
                         t_start: float = 0.0) -> List[ReactionMeasurement]:
    """Stimulus-to-response latencies read from a recorded
    :class:`~repro.trace.TraceSet` (live-run observation, not the
    isolated Table I harness above).

    For every ``stimulus_edge`` of the ``stimulus`` digital channel at
    or after ``t_start``, the latency to the first ``response_edge`` of
    the ``response`` channel after it — e.g. ``hl`` rise to ``gp1``
    rise on a cached Fig. 6 run, with no re-simulation.  Stimulus edges
    with no subsequent response are skipped.
    """
    for name in (stimulus, response):
        if name not in trace:
            raise ValueError(
                f"trace has no channel {name!r} "
                f"(digital channels: "
                f"{[c for c in trace.channels if trace.probe(c).is_digital]})")
    stim = [t for t in trace.probe(stimulus).edges(stimulus_edge)
            if t >= t_start]
    resp = trace.probe(response).edges(response_edge)
    out: List[ReactionMeasurement] = []
    for t0 in stim:
        after = [t for t in resp if t > t0]
        if after:
            out.append(ReactionMeasurement(condition=stimulus,
                                           latency=after[0] - t0))
    return out


def worst_reaction_from_trace(trace, stimulus: str, response: str,
                              **kwargs) -> ReactionMeasurement:
    """The worst (largest) latency :func:`reactions_from_trace` finds.

    Raises :class:`ValueError` (naming both channels) when the trace
    contains no completed stimulus→response pair.
    """
    measurements = reactions_from_trace(trace, stimulus, response, **kwargs)
    if not measurements:
        raise ValueError(
            f"no {stimulus!r}->{response!r} reaction pairs in trace")
    return max(measurements, key=lambda m: m.latency)
