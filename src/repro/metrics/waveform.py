"""Waveform measurements: ripple, overshoot, dips, settling.

These extract the quantities the paper reads off its Fig. 6 waveforms:
steady-state voltage ripple, the startup overshoot and its OV episodes,
the load-step dip, and settling behaviour.

Every ``probe`` argument accepts either a live
:class:`~repro.sim.signal.AnalogProbe` or a
:class:`~repro.trace.ChannelView` from a :class:`~repro.trace.TraceSet`
(``trace.probe("v_load")``) — so the same measurements run on a live
system and on a cached traced result without re-simulating.  The
signal-window helpers (:func:`edge_count`, :func:`episodes`,
:func:`duty_in_window`) likewise accept a :class:`Signal` or a digital
ChannelView.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.signal import AnalogProbe, Signal


def _window_values(probe, t_start: float, t_end: float):
    """Windowed samples, raising a *named* error when the window is
    empty (the probe/channel name makes multi-signal pipelines
    debuggable)."""
    _, values = probe.window(t_start, t_end)
    if len(values) == 0:
        raise ValueError(
            f"{probe.name!r}: no samples in [{t_start}, {t_end}]")
    return values


def ripple(probe: AnalogProbe, t_start: float, t_end: float) -> float:
    """Peak-to-peak excursion of the traced waveform inside a window."""
    values = _window_values(probe, t_start, t_end)
    return max(values) - min(values)


def overshoot(probe: AnalogProbe, target: float, t_start: float,
              t_end: float) -> float:
    """How far the waveform exceeds ``target`` inside the window (>= 0)."""
    values = _window_values(probe, t_start, t_end)
    return max(0.0, max(values) - target)


def undershoot(probe: AnalogProbe, target: float, t_start: float,
               t_end: float) -> float:
    """How far the waveform drops below ``target`` inside the window."""
    values = _window_values(probe, t_start, t_end)
    return max(0.0, target - min(values))


def settling_time(probe: AnalogProbe, target: float, tolerance: float,
                  t_start: float = 0.0) -> Optional[float]:
    """First time after ``t_start`` from which the waveform stays within
    ``target +- tolerance`` until the end of the trace.  None if never."""
    times, values = probe.times, probe.values
    settled_at: Optional[float] = None
    for t, v in zip(times, values):
        if t < t_start:
            continue
        if abs(v - target) <= tolerance:
            if settled_at is None:
                settled_at = t
        else:
            settled_at = None
    return settled_at


def edge_count(signal: Signal, kind: str, t_start: float,
               t_end: float) -> int:
    """Number of ``kind`` edges of a traced signal inside the window."""
    return sum(1 for t in signal.edges(kind) if t_start <= t <= t_end)


def episodes(signal: Signal, t_start: float, t_end: float) -> List[Tuple[float, float]]:
    """High intervals of a traced signal clipped to the window."""
    out: List[Tuple[float, float]] = []
    history = signal.history
    if not history:
        return out
    prev_t, prev_v = history[0]
    start: Optional[float] = None
    if prev_v and prev_t <= t_start:
        start = t_start
    for t, v in history[1:]:
        if v and start is None and t <= t_end:
            start = max(t, t_start)
        elif not v and start is not None:
            end = min(t, t_end)
            if end > start:
                out.append((start, end))
            start = None
    if start is not None and t_end > start:
        out.append((start, t_end))
    return out


def duty_in_window(signal: Signal, t_start: float, t_end: float) -> float:
    """Fraction of the window the signal spends high."""
    span = t_end - t_start
    if span <= 0:
        raise ValueError(
            f"{signal.name!r}: empty window [{t_start}, {t_end}]")
    total = sum(e - s for s, e in episodes(signal, t_start, t_end))
    return total / span


def sample_series(probe: AnalogProbe, t_start: float, t_end: float,
                  n_points: int) -> Tuple[List[float], List[float]]:
    """Uniformly resample a traced waveform (for ASCII rendering)."""
    if n_points < 2:
        raise ValueError("need at least two points")
    ts = [t_start + (t_end - t_start) * i / (n_points - 1)
          for i in range(n_points)]
    return ts, [probe.value_at(t) for t in ts]


def ascii_waveform(probe: AnalogProbe, t_start: float, t_end: float,
                   width: int = 80, height: int = 12,
                   title: str = "") -> str:
    """Render a traced waveform as an ASCII chart (Fig. 6-style view)."""
    ts, vs = sample_series(probe, t_start, t_end, width)
    lo, hi = min(vs), max(vs)
    span = hi - lo or 1.0
    rows = [[" "] * width for _ in range(height)]
    for x, v in enumerate(vs):
        y = int((v - lo) / span * (height - 1))
        rows[height - 1 - y][x] = "*"
    lines = [title] if title else []
    lines.append(f"{hi:8.3f} +" + "-" * width + "+")
    for row in rows:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{lo:8.3f} +" + "-" * width + "+")
    lines.append(f"{'':9}{t_start * 1e6:<10.2f}{'time (us)':^{width - 20}}"
                 f"{t_end * 1e6:>10.2f}")
    return "\n".join(lines)
