"""``repro.obs`` — spans, metrics, and run receipts (stdlib-only).

One shared vocabulary for what the stack is doing and what it costs:

- :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms with deterministic cross-process
  merges (worker deltas fold into the coordinator);
- :mod:`repro.obs.spans` — a span tracer with contextvar propagation;
  spans recorded inside ``ProcessPoolExecutor`` workers ship back with
  each shard and are re-parented under the coordinator's sweep span;
- :mod:`repro.obs.export` — Prometheus text exposition (``GET
  /v1/metrics`` on the sweep server) and Chrome trace-event JSON
  (``Session.last_trace_events()``, loadable in ``chrome://tracing`` /
  Perfetto);
- :mod:`repro.obs.receipt` — per-sweep provenance receipts (config
  hashes, code fingerprint, cache hit ratio, phase wall times, artifact
  paths) written next to cache entries and returned in the serve job
  ``done`` event.

Observability is **provably inert**: nothing here flows into cache or
lockstep keys (machine-checked by lint rule D06), the ``REPRO_OBS=off``
kill switch restores the uninstrumented behaviour with zero clock
reads, and the differential tests lock results bit-identical on/off.
"""

from .export import chrome_trace_events, parse_prometheus_text, prometheus_text
from .metrics import (DEFAULT_BUCKETS, GLOBAL, Counter, Gauge, Histogram,
                      MetricsRegistry, NULL_INSTRUMENT)
from .receipt import (RECEIPT_SCHEMA, RECEIPTS_DIR, PhaseClock, build_receipt,
                      load_receipt, receipt_path, sweep_id_for, write_receipt)
from .spans import (Span, Trace, adopt_spans, current_trace, enabled,
                    ensure_trace, merge_metrics, metrics_baseline,
                    metrics_delta, new_trace, now, set_enabled, span)

__all__ = [
    "enabled", "set_enabled", "now",
    "counter", "gauge", "histogram",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "GLOBAL", "NULL_INSTRUMENT",
    "span", "Span", "Trace", "current_trace", "ensure_trace", "new_trace",
    "adopt_spans", "metrics_baseline", "metrics_delta", "merge_metrics",
    "prometheus_text", "parse_prometheus_text", "chrome_trace_events",
    "PhaseClock", "RECEIPT_SCHEMA", "RECEIPTS_DIR", "build_receipt",
    "write_receipt",
    "load_receipt", "receipt_path", "sweep_id_for",
]


def counter(name: str, help_text: str = "", **labels):
    """The named counter — or the shared null instrument when the kill
    switch is off, so call sites stay unconditional and inert."""
    if not enabled():
        return NULL_INSTRUMENT
    return GLOBAL.counter(name, help_text, **labels)


def gauge(name: str, help_text: str = "", **labels):
    if not enabled():
        return NULL_INSTRUMENT
    return GLOBAL.gauge(name, help_text, **labels)


def histogram(name: str, help_text: str = "", buckets=DEFAULT_BUCKETS,
              **labels):
    if not enabled():
        return NULL_INSTRUMENT
    return GLOBAL.histogram(name, help_text, buckets=buckets, **labels)
