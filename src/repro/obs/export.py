"""Export surfaces: Prometheus text exposition and Chrome trace events.

* :func:`prometheus_text` renders the registry in text exposition
  format 0.0.4 (the format every Prometheus scraper speaks) — served by
  the sweep server at ``GET /v1/metrics``.  Output is deterministic:
  families and series are emitted in sorted order.
* :func:`parse_prometheus_text` is the minimal inverse used by the CI
  smoke and the tests: sample lines back into a ``{series: value}``
  map, erroring on malformed lines — "the exposition parses" is an
  assertable property, not a hope.
* :func:`chrome_trace_events` converts spans into the Chrome
  trace-event JSON array form (``"X"`` complete events, microsecond
  timestamps) loadable in ``chrome://tracing`` / Perfetto.  Worker
  spans keep their real pid, so a sharded sweep renders as one
  coordinator track plus one track per worker process.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .metrics import GLOBAL, MetricsRegistry, _render_labels
from .spans import Span, enabled


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    snap = (registry or GLOBAL).snapshot()
    lines: List[str] = []
    for name in sorted(snap):
        family = snap[name]
        kind = family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        series = family["series"]
        for label in sorted(series):
            value = series[label]
            if kind == "histogram":
                cumulative = 0
                bounds = [*family["bounds"], float("inf")]
                for bound, count in zip(bounds, value["buckets"]):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    lines.append(
                        f"{name}_bucket{_with_le(label, le)} {cumulative}")
                lines.append(f"{name}_sum{label} {_fmt(value['sum'])}")
                lines.append(f"{name}_count{label} {value['count']}")
            else:
                lines.append(f"{name}{label} {_fmt(value)}")
    # surface the kill switch itself so scrapes can tell "off" from
    # "idle" (set at render time: the gauge is truthful even when
    # nothing else ran)
    state = 1 if enabled() else 0
    lines.append("# TYPE repro_obs_enabled gauge")
    lines.append(f"repro_obs_enabled {state}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _with_le(label: str, le: str) -> str:
    if not label:
        return '{le="' + le + '"}'
    return label[:-1] + ',le="' + le + '"}'


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Sample lines back into ``{"name{labels}": value}``.

    Raises :class:`ValueError` on any malformed sample line, so "the
    exposition parses" is a real assertion.  Comment lines must be
    well-formed ``# HELP`` / ``# TYPE`` markers.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        series, _, raw = line.rpartition(" ")
        if not series:
            raise ValueError(f"line {lineno}: no value on {line!r}")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw!r}") from None
        if series.count("{") != series.count("}"):
            raise ValueError(f"line {lineno}: unbalanced labels {series!r}")
        samples[series] = value
    return samples


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------
def chrome_trace_events(spans: Sequence[Union[Span, Dict[str, Any]]]
                        ) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event JSON objects (the array form).

    One ``"X"`` (complete) event per span, with microsecond epoch
    timestamps, the recording pid/tid, and the span/parent ids in
    ``args`` so tooling (and the tests) can rebuild the parent chain.
    Process-name metadata events label the coordinator and each worker
    track.
    """
    events: List[Dict[str, Any]] = []
    seen_procs: Dict[int, Optional[str]] = {}
    normalized = [s if isinstance(s, Span) else Span.from_dict(s)
                  for s in spans]
    for span in sorted(normalized, key=lambda s: (s.start, s.span_id)):
        seen_procs.setdefault(span.pid, span.worker)
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(0.0, span.end - span.start) * 1e6,
            "pid": span.pid,
            "tid": span.tid,
            "args": {**span.attrs, "span_id": span.span_id,
                     "parent_id": span.parent_id, "worker": span.worker},
        })
    meta = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": worker or "coordinator"},
    } for pid, worker in sorted(seen_procs.items())]
    return meta + events
