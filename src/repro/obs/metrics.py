"""Process-global metrics registry: counters, gauges, histograms.

Deliberately tiny and stdlib-only.  Three properties matter more than
feature count:

* **Deterministic merges.**  Histograms use *fixed* bucket bounds chosen
  at registration, so a snapshot taken in a worker process can be merged
  into the coordinator's registry bucket-for-bucket — no re-binning, no
  order sensitivity (:meth:`MetricsRegistry.merge` sums counters and
  bucket counts; gauges are excluded from cross-process merges because
  "last write" has no deterministic meaning across processes).
* **Inert when disabled.**  :func:`repro.obs.counter` and friends return
  a shared null instrument when the ``REPRO_OBS`` kill switch is off;
  nothing below ever runs on the hot path.
* **Pre-registered core series.**  Every metric the instrumented seams
  emit is registered at import, so a Prometheus scrape of a freshly
  booted server already exposes the full (zero-valued) catalogue — and
  the exposition surface is stable, not dependent on which code paths
  have run.

The registry is thread-safe (one lock; instruments are touched a few
times per sweep lane, never per solver tick).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: default latency bucket upper bounds, seconds (+Inf is implicit)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0)

_KINDS = ("counter", "gauge", "histogram")

#: label key type: sorted (name, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter (float increments allowed)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative histogram over fixed bucket bounds."""

    __slots__ = ("_lock", "bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if tuple(bounds) != tuple(sorted(bounds)):
            raise ValueError("histogram bucket bounds must be sorted")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        slot = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self.bucket_counts[slot] += 1
            self.total += value
            self.count += 1


class _NullInstrument:
    """Shared no-op stand-in handed out when observability is off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class _Family:
    """One named metric: kind, help text, bucket bounds, children by
    label set (the empty label set is the plain unlabelled series)."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Tuple[float, ...]):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelKey, Any] = {}

    def child(self, key: LabelKey):
        inst = self.children.get(key)
        if inst is None:
            if self.kind == "counter":
                inst = Counter()
            elif self.kind == "gauge":
                inst = Gauge()
            else:
                inst = Histogram(self.buckets)
            self.children[key] = inst
        return inst


class MetricsRegistry:
    """Thread-safe family registry with deterministic snapshot/merge."""

    def __init__(self, install_core: bool = True) -> None:
        self._lock = threading.Lock()
        # lint: guarded_by(self._lock: families registered from any thread)
        self._families: Dict[str, _Family] = {}
        if install_core:
            self.install_core()

    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                buckets: Tuple[float, ...]) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}")
            return family

    def counter(self, name: str, help_text: str = "",
                **labels: Any) -> Counter:
        family = self._family(name, "counter", help_text, ())
        with self._lock:
            return family.child(_label_key(labels))

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        family = self._family(name, "gauge", help_text, ())
        with self._lock:
            return family.child(_label_key(labels))

    def histogram(self, name: str, help_text: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        family = self._family(name, "histogram", help_text, tuple(buckets))
        with self._lock:
            return family.child(_label_key(labels))

    # ------------------------------------------------------------------
    # Snapshot / diff / merge (the worker -> coordinator protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every family, deterministic ordering
        (families and label keys sorted)."""
        out: Dict[str, Any] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            children: Dict[str, Any] = {}
            for key in sorted(family.children):
                inst = family.children[key]
                label = _render_labels(key)
                if family.kind == "histogram":
                    children[label] = {
                        "buckets": list(inst.bucket_counts),
                        "sum": inst.total,
                        "count": inst.count,
                    }
                else:
                    children[label] = inst.value
            out[name] = {"kind": family.kind, "help": family.help,
                         "bounds": list(family.buckets), "series": children}
        return out

    def diff(self, base: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Counter/histogram deltas since ``base`` (a prior
        :meth:`snapshot`).  Gauges are dropped: they carry no meaningful
        cross-process delta.  Used by forked workers, whose registry
        starts as a copy of the parent's — shipping a delta instead of a
        snapshot keeps the coordinator's merge double-count free."""
        base = base or {}
        delta: Dict[str, Any] = {}
        for name, family in self.snapshot().items():
            if family["kind"] == "gauge":
                continue
            base_series = (base.get(name) or {}).get("series", {})
            series: Dict[str, Any] = {}
            for label, value in family["series"].items():
                prior = base_series.get(label)
                if family["kind"] == "histogram":
                    prior = prior or {"buckets": [0] * len(value["buckets"]),
                                      "sum": 0.0, "count": 0}
                    changed = {
                        "buckets": [v - p for v, p in
                                    zip(value["buckets"], prior["buckets"])],
                        "sum": value["sum"] - prior["sum"],
                        "count": value["count"] - prior["count"],
                    }
                    if changed["count"]:
                        series[label] = changed
                else:
                    changed_value = value - (prior or 0.0)
                    if changed_value:
                        series[label] = changed_value
            if series:
                delta[name] = {"kind": family["kind"], "help": family["help"],
                               "bounds": family["bounds"], "series": series}
        return delta

    def merge(self, delta: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`diff` payload in: counters and bucket counts
        sum; bucket bounds must match exactly (they are fixed at
        registration, so merges are deterministic by construction)."""
        if not delta:
            return
        for name, family in sorted(delta.items()):
            kind = family["kind"]
            if kind == "gauge":
                continue
            bounds = tuple(family.get("bounds") or ())
            for label in sorted(family["series"]):
                value = family["series"][label]
                labels = _parse_labels(label)
                if kind == "histogram":
                    inst = self.histogram(name, family.get("help", ""),
                                          buckets=bounds or DEFAULT_BUCKETS,
                                          **labels)
                    if len(inst.bucket_counts) != len(value["buckets"]):
                        raise ValueError(
                            f"histogram {name!r} bucket-count mismatch in "
                            "merge: bounds must be identical")
                    with inst._lock:
                        for i, n in enumerate(value["buckets"]):
                            inst.bucket_counts[i] += n
                        inst.total += value["sum"]
                        inst.count += value["count"]
                else:
                    self.counter(name, family.get("help", ""),
                                 **labels).inc(value)

    def reset(self) -> None:
        """Drop every family (tests only)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    def install_core(self) -> None:
        """Pre-register the instrumented seams' full metric catalogue so
        the exposition surface is stable from process start."""
        c, g, h = self.counter, self.gauge, self.histogram
        c("repro_sweeps_total", "sweeps through Session.sweep")
        for source in ("cache", "computed"):
            c("repro_lanes_total", "landed sweep lanes by source",
              source=source)
        for outcome in ("hit", "miss"):
            c("repro_cache_load_total", "result-cache lookups by outcome",
              outcome=outcome)
        c("repro_cache_store_total", "result-cache write-backs")
        c("repro_inflight_claims_total",
          "in-flight registry claims won (this call computes the key)")
        c("repro_inflight_waits_total",
          "lanes served by waiting on a concurrent sweep's computation")
        c("repro_solver_ticks_total", "analog solver micro-steps, all lanes")
        c("repro_events_delivered_total",
          "discrete-event kernel events delivered, all lanes")
        for kind in ("simulated", "skipped"):
            c("repro_clock_edges_total", "controller clock edges by fate",
              kind=kind)
        c("repro_receipts_written_total", "sweep receipts written to disk")
        c("repro_spans_recorded_total", "trace spans recorded")
        for state in ("queued", "running", "done", "failed"):
            c("repro_serve_jobs_total", "serve jobs by state transition",
              state=state)
        c("repro_sse_events_dropped_total",
          "SSE events evicted from bounded job logs")
        g("repro_workers", "worker processes of the most recent sweep")
        g("repro_obs_enabled", "1 when the REPRO_OBS kill switch is on")
        h("repro_sweep_seconds", "Session.sweep wall time")
        h("repro_shard_seconds", "worker shard wall time")
        h("repro_lane_compute_seconds", "per-lane scalar compute wall time")
        h("repro_cache_load_seconds", "result-cache lookup wall time")
        h("repro_cache_store_seconds",
          "result-cache write-back wall time (includes trace serialization)")


# ---------------------------------------------------------------------------
# Label rendering (shared with the Prometheus exposition)
# ---------------------------------------------------------------------------
def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _parse_labels(label: str) -> Dict[str, str]:
    """Invert :func:`_render_labels` for the simple (unescaped) label
    values this package emits."""
    if not label:
        return {}
    out: Dict[str, str] = {}
    for pair in label.strip("{}").split(","):
        name, _, value = pair.partition("=")
        out[name] = value.strip('"')
    return out


#: the process-global registry behind :func:`repro.obs.counter` et al.
GLOBAL = MetricsRegistry()
