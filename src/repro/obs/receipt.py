"""Run receipts: one JSON provenance record per sweep.

A receipt answers "what exactly produced these numbers, and what did it
cost?" without rerunning anything: the resolved-config content hashes
(the same SHA-256 keys the result cache is addressed by), the code
fingerprint, the cache hit ratio, per-phase wall times that sum to the
sweep's total, the worker count, and artifact paths.  Receipts are
written next to the cache entries (``<cache_root>/receipts/``, atomic
replace) and attached to the serve job ``done`` event; the cache's
directory scans ignore them (entries require an ``.npz`` sibling).

:class:`PhaseClock` carves a sweep into *contiguous* named segments —
``tick(name)`` closes the previous segment as it opens the next, so the
segments partition the timeline exactly and their sum equals the total
by construction (the acceptance test locks this within 10% to allow for
the receipt-assembly tail).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .metrics import GLOBAL
from .spans import now

#: bump when the receipt layout changes incompatibly
RECEIPT_SCHEMA = 1

#: subdirectory of the cache root holding receipts
RECEIPTS_DIR = "receipts"


class PhaseClock:
    """Contiguous named wall-time segments over one sweep."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._mark = self._t0
        self._current: Optional[str] = None
        #: accumulated seconds per phase, insertion-ordered
        self.phases: Dict[str, float] = {}
        self.total: Optional[float] = None

    def tick(self, name: str) -> None:
        """Close the current phase (if any) and open ``name``.  A name
        may recur; its segments accumulate.  When no phase is open the
        new one absorbs the gap since the last boundary, so the segments
        always partition ``[t0, stop]`` exactly."""
        mark = time.perf_counter()
        if self._current is not None:
            self.phases[self._current] = (
                self.phases.get(self._current, 0.0) + (mark - self._mark))
            self._mark = mark
        self._current = name

    def stop(self) -> float:
        """Close the open phase and freeze the total (idempotent)."""
        if self.total is None:
            mark = time.perf_counter()
            if self._current is not None:
                self.phases[self._current] = (
                    self.phases.get(self._current, 0.0)
                    + (mark - self._mark))
                self._current = None
            self.total = mark - self._t0
        return self.total


def sweep_id_for(parts: Sequence[str]) -> str:
    """Stable short id for a sweep: SHA-256 over its lane identities
    (cache keys when caching, spec names otherwise)."""
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def receipt_path(cache_root: Path, sweep_id: str) -> Path:
    return Path(cache_root) / RECEIPTS_DIR / f"{sweep_id}.json"


def build_receipt(*, sweep_id: str, backend: str, workers: Optional[int],
                  specs: Sequence[str], keys: Optional[Sequence[str]],
                  fingerprint: Optional[str],
                  cache_stats: Mapping[str, Any],
                  phases: Mapping[str, float], wall_s: float,
                  counters: Mapping[str, int],
                  lanes: Sequence[Mapping[str, Any]],
                  artifacts: Mapping[str, Optional[str]]) -> Dict[str, Any]:
    """Assemble the receipt dict (schema v1).  Pure data in, pure data
    out — everything JSON-serializable, so the serve layer can embed it
    in the ``done`` event verbatim."""
    return {
        "schema": RECEIPT_SCHEMA,
        "kind": "sweep-receipt",
        "sweep_id": sweep_id,
        "backend": backend,
        "workers": workers,
        "n_lanes": len(lanes),
        "specs": list(specs),
        "keys": list(keys) if keys is not None else None,
        "code_fingerprint": fingerprint,
        "cache": dict(cache_stats),
        "phases": dict(phases),
        "wall_s": wall_s,
        "counters": dict(counters),
        "lanes": [dict(lane) for lane in lanes],
        "artifacts": dict(artifacts),
        "created_unix": now(),
    }


def write_receipt(cache_root: Path, receipt: Mapping[str, Any]) -> str:
    """Write the receipt under ``<cache_root>/receipts/`` (atomic
    replace, like cache entries) and return its path."""
    path = receipt_path(cache_root, receipt["sweep_id"])
    path.parent.mkdir(parents=True, exist_ok=True)
    # pid AND thread id: concurrent sweeps of the same specs (same
    # sweep_id) may race this write from sibling threads of one Session
    tmp = path.with_suffix(
        f".tmp.{os.getpid()}.{threading.get_ident()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(receipt, fh, sort_keys=True, indent=1)
    os.replace(tmp, path)
    GLOBAL.counter("repro_receipts_written_total").inc()
    return str(path)


def load_receipt(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
