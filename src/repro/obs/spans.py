"""Span tracer with context propagation across threads *and* processes.

A :class:`Trace` is one recording session (typically: one
``Session.sweep`` call, or one serve job).  The active trace and the
current parent span travel in :mod:`contextvars`, so nested ``with
obs.span(...)`` blocks build a parent chain without any plumbing through
call signatures — including across the session -> engine -> cache call
stack, which never mentions tracing.

Cross-process propagation is explicit, because worker processes cannot
share contextvars: :func:`repro.scenarios.parallel._run_shard` opens a
*fresh* trace in the worker, runs the shard under it, and ships
``trace.export()`` (plain dicts) back with the results; the coordinator
calls :meth:`Trace.adopt`, which re-numbers the worker's span ids into
the coordinator's id space and re-parents the worker's root spans under
the coordinator's current span — one coherent timeline per sweep.

Span timestamps are ``time.time()`` (epoch seconds): unlike
``perf_counter`` they are comparable across processes, which is what
lets worker spans land on the coordinator's timeline.  Wall-clock reads
are exactly what the determinism linter exists to reject in simulation
code — this module is the one place they belong, carried by the
module-scoped D02 allowlist (``LintConfig.wallclock_modules``), and rule
D06 separately proves no obs value flows back into cache/lockstep keys.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from .metrics import GLOBAL

#: values of ``REPRO_OBS`` that turn observability off
_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

#: tri-state override set by :func:`set_enabled` (None = follow the env)
_OVERRIDE: Optional[bool] = None
#: cached env parse (reset by :func:`set_enabled`)
_ENV_CACHE: Optional[bool] = None


def enabled() -> bool:
    """The ``REPRO_OBS`` kill switch: on unless the env says off (or a
    test said so via :func:`set_enabled`).  Cached after the first read;
    forked workers inherit the cache, spawned ones re-read the env."""
    global _ENV_CACHE
    if _OVERRIDE is not None:
        return _OVERRIDE
    if _ENV_CACHE is None:
        raw = os.environ.get("REPRO_OBS", "").strip().lower()
        _ENV_CACHE = raw not in _OFF_VALUES
    return _ENV_CACHE


def set_enabled(value: Optional[bool]) -> None:
    """Force observability on/off for this process (``None`` restores
    env-driven behaviour).  Also drops the env cache, so flipping
    ``REPRO_OBS`` between calls is honoured."""
    global _OVERRIDE, _ENV_CACHE
    _OVERRIDE = value
    _ENV_CACHE = None


def now() -> float:
    """Epoch seconds — the one sanctioned wall-clock read for
    observability payloads (receipts, span stamps).  Returns 0.0 when
    observability is off so disabled paths stay clock-free."""
    if not enabled():
        return 0.0
    return time.time()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
@dataclass
class Span:
    """One timed operation on the sweep timeline."""

    name: str
    start: float                       #: epoch seconds
    end: float                         #: epoch seconds
    span_id: int
    parent_id: Optional[int]
    pid: int
    tid: int
    worker: Optional[str] = None       #: shard label for adopted spans
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "start": self.start, "end": self.end,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "pid": self.pid, "tid": self.tid, "worker": self.worker,
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(name=payload["name"], start=payload["start"],
                   end=payload["end"], span_id=payload["span_id"],
                   parent_id=payload["parent_id"], pid=payload["pid"],
                   tid=payload["tid"], worker=payload.get("worker"),
                   attrs=dict(payload.get("attrs") or {}))


class Trace:
    """One recording session: an append-only span list plus the receipt
    the owning sweep attaches at the end (how the serve job layer gets a
    race-free per-job receipt off the shared session)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # lint: guarded_by(self._lock: appended from sweep + adoption paths)
        self._spans: List[Span] = []
        # lint: guarded_by(self._lock: monotonic span-id allocator)
        self._next_id = 0
        #: the owning sweep's receipt, set once at sweep end
        self.receipt: Optional[Dict[str, Any]] = None

    def next_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
        GLOBAL.counter("repro_spans_recorded_total").inc()

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def export(self) -> List[Dict[str, Any]]:
        """Picklable plain-dict form (the worker -> coordinator wire)."""
        return [span.to_dict() for span in self.spans()]

    def adopt(self, payload: Sequence[Mapping[str, Any]],
              parent_id: Optional[int], worker: Optional[str] = None) -> None:
        """Merge a worker trace in: re-number its span ids into this
        trace's id space and re-parent its roots under ``parent_id``
        (the coordinator span that was current when the shard landed)."""
        if not payload:
            return
        spans = [Span.from_dict(p) for p in payload]
        local_ids = {span.span_id for span in spans}
        with self._lock:
            base = self._next_id
            self._next_id = base + max(local_ids)
            for span in spans:
                span.span_id += base
                if span.parent_id in local_ids:
                    span.parent_id += base
                else:
                    span.parent_id = parent_id
                if worker is not None and span.worker is None:
                    span.worker = worker
                self._spans.append(span)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: the active trace / current parent span (per thread+task by design:
#: each serve job thread records into its own trace)
_TRACE: ContextVar[Optional[Trace]] = ContextVar("repro_obs_trace",
                                                 default=None)
_SPAN: ContextVar[Optional[int]] = ContextVar("repro_obs_span", default=None)


def current_trace() -> Optional[Trace]:
    return _TRACE.get() if enabled() else None


@contextlib.contextmanager
def span(name: str, metric: Optional[str] = None,
         **attrs: Any) -> Iterator[Optional[Dict[str, Any]]]:
    """Record a timed span under the current trace.

    Yields the span's attribute dict (mutable — set outcome fields
    inside the block), or ``None`` when no trace is active or the kill
    switch is off, in which case the block runs untouched with **zero**
    clock reads.  ``metric`` names a histogram that additionally
    observes the span's duration.
    """
    tr = _TRACE.get() if enabled() else None
    if tr is None:
        yield None
        return
    span_id = tr.next_id()
    parent_id = _SPAN.get()
    token = _SPAN.set(span_id)
    start = time.time()
    try:
        yield attrs
    finally:
        end = time.time()
        _SPAN.reset(token)
        tr.add(Span(name=name, start=start, end=end, span_id=span_id,
                    parent_id=parent_id, pid=os.getpid(),
                    tid=threading.get_ident(), attrs=attrs))
        if metric is not None:
            GLOBAL.histogram(metric).observe(end - start)


@contextlib.contextmanager
def ensure_trace() -> Iterator[Optional[Trace]]:
    """The ambient trace if one is active (a serve job wrapped this
    sweep), else a fresh trace activated for the block.  Yields ``None``
    when observability is off."""
    if not enabled():
        yield None
        return
    existing = _TRACE.get()
    if existing is not None:
        yield existing
        return
    tr = Trace()
    token = _TRACE.set(tr)
    # a fresh trace has no current span — clear any stale parent id
    # (forked workers inherit the coordinator's contextvars, and a
    # stale id would collide with worker-local ids during adoption)
    span_token = _SPAN.set(None)
    try:
        yield tr
    finally:
        _SPAN.reset(span_token)
        _TRACE.reset(token)


@contextlib.contextmanager
def new_trace() -> Iterator[Optional[Trace]]:
    """Always activate a fresh trace (serve jobs, worker shards) —
    shadows any ambient one for the block."""
    if not enabled():
        yield None
        return
    tr = Trace()
    token = _TRACE.set(tr)
    span_token = _SPAN.set(None)
    try:
        yield tr
    finally:
        _SPAN.reset(span_token)
        _TRACE.reset(token)


def adopt_spans(payload: Sequence[Mapping[str, Any]],
                worker: Optional[str] = None) -> None:
    """Merge a worker's exported spans into the current trace, parented
    under the current span.  No-op without an active trace."""
    tr = _TRACE.get() if enabled() else None
    if tr is None or not payload:
        return
    tr.adopt(payload, parent_id=_SPAN.get(), worker=worker)


# ---------------------------------------------------------------------------
# Worker-side metrics protocol
# ---------------------------------------------------------------------------
def metrics_baseline() -> Optional[Dict[str, Any]]:
    """Snapshot the registry before shard work (forked workers inherit
    the parent's counts; the baseline keeps the shipped delta clean).
    ``None`` when observability is off."""
    if not enabled():
        return None
    return GLOBAL.snapshot()


def metrics_delta(base: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Counter/histogram movement since :func:`metrics_baseline`."""
    if not enabled():
        return {}
    return GLOBAL.diff(base)


def merge_metrics(delta: Optional[Mapping[str, Any]]) -> None:
    """Fold a worker's :func:`metrics_delta` into this process."""
    if not enabled() or not delta:
        return
    GLOBAL.merge(delta)
