"""Batched scenario engine: sweeps of buck scenarios in lock-step.

The scaling substrate of the reproduction (see README, "Scenario
engine"): declare a parameter space with :class:`Sweep` /
:class:`ScenarioSpec`, execute it with
:meth:`repro.session.Session.sweep` (the deprecated :func:`run_sweep`
shim still works), and the vectorized backend advances all scenarios
together —
:class:`VectorizedPowerStage` integrates every lane's ODE as NumPy array
operations while each lane's discrete-event controller runs on its own
seeded :class:`~repro.sim.core.Simulator`, reacting to per-lane
comparator crossings.

- :mod:`repro.scenarios.spec` — specs, grid/random sweeps, seeding rules;
- :mod:`repro.scenarios.vector_stage` — the N-lane power-stage arrays;
- :mod:`repro.scenarios.vector_solver` — lock-step solver + comparators;
- :mod:`repro.scenarios.engine` — batching, results, cross-validation;
- :mod:`repro.scenarios.parallel` — process-pool sharding of batches
  (``run_sweep(..., workers=N)``), batch planner, picklable work units.
"""

from .engine import (
    CrossValidation,
    EdgeComparison,
    ScenarioLane,
    SteppingDrift,
    SweepPoint,
    VectorBatch,
    cross_validate,
    cross_validate_stepping,
    run_sweep,
)
from .parallel import BatchPlan, plan_batches, pool_map, run_sweep_parallel
from .spec import (
    Distribution,
    ScenarioSpec,
    Sweep,
    choice,
    lane_seed,
    log_uniform,
    uniform,
)
from .vector_solver import LaneSensors, VectorComparatorBank, VectorizedSolver
from .vector_stage import LanePhase, LaneStage, VectorizedPowerStage

__all__ = [
    "ScenarioSpec", "Sweep", "Distribution", "uniform", "log_uniform",
    "choice", "lane_seed",
    "run_sweep", "SweepPoint", "VectorBatch", "ScenarioLane",
    "cross_validate", "CrossValidation", "EdgeComparison",
    "cross_validate_stepping", "SteppingDrift",
    "BatchPlan", "plan_batches", "pool_map", "run_sweep_parallel",
    "VectorizedPowerStage", "LaneStage", "LanePhase",
    "VectorizedSolver", "VectorComparatorBank", "LaneSensors",
]
