"""Batched scenario engine: run many buck scenarios in lock-step.

The public front door is :meth:`repro.session.Session.sweep` — hand it a
:class:`~repro.scenarios.spec.Sweep` (or a list of
:class:`ScenarioSpec`) and get one :class:`~repro.system.RunResult` per
scenario, in spec order, optionally served from the session's
content-addressed result cache.  :func:`run_sweep` remains as a thin
deprecation shim delegating to a session.

Backends
--------
``vector`` (default)
    Scenarios are grouped into batches that share ``(n_phases, dt,
    sim_time, trace)`` and each batch advances through the
    :class:`~repro.scenarios.vector_solver.VectorizedSolver`: one NumPy
    RK2 step per micro-step for *all* lanes, with per-lane discrete-event
    controllers reacting to comparator crossings exactly as in the scalar
    co-simulation.
``scalar``
    One sequential :class:`~repro.system.BuckSystem` per scenario — the
    reference path, used by the cross-validation tests and available as a
    fallback.

Either backend shards across worker processes with ``workers=N``
(independent batches, reassembled in spec order, bit-identical to the
inline path — see :mod:`repro.scenarios.parallel`).

:func:`cross_validate` runs one spec through both backends with full
tracing and reports waveform and comparator-edge deviations; the
equivalence tests keep these within documented tolerances.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import (Any, Callable, List, Mapping, Optional, Sequence,
                    Union)

import numpy as np

from .. import obs
from ..analog.gate_driver import GateDriverBank
from ..analog.stepping import SteppingPolicy
from ..control.async_controller import AsyncMultiphaseController
from ..control.params import BuckControlParams
from ..control.sync_controller import SyncMultiphaseController
from ..sim.core import Simulator
from ..system import BuckSystem, RunResult, SystemConfig
from .parallel import plan_batches, run_sweep_parallel
from .spec import ScenarioSpec, Sweep
from .vector_solver import LaneSensors, VectorComparatorBank, VectorizedSolver
from .vector_stage import VectorizedPowerStage

Specs = Union[Sweep, Sequence[ScenarioSpec]]


class ScenarioLane:
    """Handle to one lane of a running batch (testbench access: sensors,
    gates, controller, simulator, and traced waveforms)."""

    def __init__(self, index: int, spec: ScenarioSpec, config: SystemConfig,
                 sim: Simulator, stage, sensors: LaneSensors,
                 gates: GateDriverBank, controller, solver: VectorizedSolver):
        self.index = index
        self.spec = spec
        self.config = config
        self.sim = sim
        self.stage = stage
        self.sensors = sensors
        self.gates = gates
        self.controller = controller
        self.solver = solver

    def v_waveform(self) -> np.ndarray:
        return self.solver.v_waveform(self.index)

    def i_waveform(self, phase: int) -> np.ndarray:
        return self.solver.i_waveform(self.index, phase)

    def waveform_times(self) -> np.ndarray:
        return self.solver.waveform_times(self.index)

    def trace_signals(self):
        """This lane's Fig. 6 digital signal set (the vector twin of
        :meth:`repro.system.BuckSystem.waveform_signals`)."""
        signals = [view.output for view in self.sensors.all_comparators()]
        signals += self.gates.gp + self.gates.gn
        if self.config.controller == "async":
            signals += self.controller.token_at
        else:
            signals += self.controller.activator.act
        return signals

    def trace_set(self):
        """The lane's full traced run as a
        :class:`~repro.trace.TraceSet`: compacted analog waveforms plus
        the digital signal channels — identical content (and ``meta``)
        to the scalar :meth:`~repro.system.BuckSystem.trace_set`
        representation."""
        from ..trace import add_signals
        ts = add_signals(self.solver.trace_set(self.index),
                         self.trace_signals())
        ts.meta["v_ref"] = self.sensors.refs.v_ref
        ts.meta["controller"] = self.config.controller
        return ts


class VectorBatch:
    """A set of scenarios advanced together by one vectorized solver.

    All lanes must share ``n_phases``, ``dt`` and ``sim_time`` (the
    lock-step constraints); everything else — controller kind and clock,
    coil, load, rails, timing parameters, seeds — varies per lane.
    Construction mirrors :class:`~repro.system.BuckSystem` wiring so the
    per-lane event schedules line up with the scalar path.
    """

    def __init__(self, specs: Sequence[ScenarioSpec],
                 configs: Sequence[SystemConfig], track_energy: bool = True):
        if len(specs) != len(configs):
            raise ValueError("specs and configs must pair up")
        if not configs:
            raise ValueError("batch needs at least one scenario")
        first = configs[0]
        stepping_keys = ("stepping", "dt_min", "dt_max", "rtol",
                         "atol_i", "atol_v")
        for cfg in configs:
            if cfg.n_phases != first.n_phases:
                raise ValueError("batch lanes must share n_phases")
            if cfg.dt != first.dt:
                raise ValueError("batch lanes must share dt")
            if cfg.sim_time != first.sim_time:
                raise ValueError("batch lanes must share sim_time")
            for key in stepping_keys:
                if getattr(cfg, key) != getattr(first, key):
                    raise ValueError(
                        f"batch lanes must share {key} (stepping policy)")
        self.configs = list(configs)
        self.sim_time = first.sim_time
        self.dt = first.dt
        n_phases = first.n_phases
        policy = SteppingPolicy.from_config(first)
        if policy.adaptive and any(cfg.sensor_delay <= 0 or cfg.t_gate <= 0
                                   for cfg in configs):
            raise ValueError(
                "adaptive stepping needs positive sensor_delay and t_gate "
                "(the guard window that keeps comparator edges exact is "
                "derived from them)")
        if any(cfg.sensor_delay == 0 or cfg.t_gate == 0 for cfg in configs):
            warnings.warn(
                "zero sensor/gate delay with backend='vector': events "
                "landing on the exact same timestamp as a solver micro-step "
                "may be ordered differently than on the scalar backend "
                "(scalar orders same-time events by scheduling sequence; "
                "the vector batch delivers them before the array step)",
                RuntimeWarning, stacklevel=3)

        self.sims = [Simulator(seed=cfg.seed) for cfg in configs]
        self.stage = VectorizedPowerStage(configs, track_energy=track_energy)
        self.bank = VectorComparatorBank(self.sims, configs, n_phases)
        self.solver = VectorizedSolver(
            self.sims, self.stage, self.bank, dt=self.dt,
            trace=any(cfg.trace for cfg in configs), policy=policy)
        self.lanes: List[ScenarioLane] = []
        for i, (spec, cfg) in enumerate(zip(specs, configs)):
            sim = self.sims[i]
            sensors = LaneSensors(self.bank, i)
            gates = GateDriverBank(sim, self.stage.lanes[i],
                                   t_gate=cfg.t_gate, trace=cfg.trace)
            if policy.adaptive:
                for driver in gates.drivers:
                    driver.on_commute = (
                        lambda when, lane=i: self.solver.note_commutation(
                            lane, when))
            params = cfg.params or BuckControlParams()
            if cfg.controller == "sync":
                controller = SyncMultiphaseController(
                    sim, sensors, gates, n_phases, cfg.fsm_frequency,
                    params=params, trace=cfg.trace, gating=cfg.gating,
                    crossing_bound=(
                        lambda lane=i: self.solver.lane_crossing_bound(lane)))
            else:
                controller = AsyncMultiphaseController(
                    sim, sensors, gates, n_phases, params=params,
                    timings=cfg.timings, trace=cfg.trace)
            self.lanes.append(ScenarioLane(i, spec, cfg, sim,
                                           self.stage.lanes[i], sensors,
                                           gates, controller, self.solver))
        self.solver.start()

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    def run(self, duration: Optional[float] = None,
            settle: Optional[float] = None) -> List[RunResult]:
        """Advance every lane and collect per-lane headline measurements.

        Settle semantics match :meth:`BuckSystem.run`: statistics except
        the peak current exclude the startup transient (first ``settle``
        seconds, default 20% of the run).
        """
        duration = duration if duration is not None else self.sim_time
        settle = settle if settle is not None else 0.2 * duration
        if settle < 0:
            raise ValueError(f"settle cannot be negative (got {settle:g})")
        if settle >= duration:
            raise ValueError(
                f"settle ({settle:g} s) must be smaller than the run "
                f"duration ({duration:g} s): the run would overshoot the "
                f"requested end time and leave a zero-span measurement "
                f"window")
        solver, stage = self.solver, self.stage
        t0 = solver.now
        loss0 = stage.coil_loss_j.sum(axis=1).copy()
        peak_startup = np.zeros(self.n_lanes)
        if settle > 0:
            solver.advance_to(t0 + settle)
            peak_startup = solver.peak_coil_current()
            solver.reset_measurements()
            loss0 = stage.coil_loss_j.sum(axis=1).copy()
        solver.advance_to(t0 + duration)

        span = duration - settle
        loss_w = ((stage.coil_loss_j.sum(axis=1) - loss0) / span
                  if span > 0 else np.zeros(self.n_lanes))
        ripple = solver.ripple()
        peak = np.maximum(peak_startup, solver.peak_coil_current())
        results = []
        for i, lane in enumerate(self.lanes):
            e_in = float(stage.energy_in_j[i])
            results.append(RunResult(
                controller=lane.config.controller,
                v_final=float(stage.v_out[i]),
                peak_coil_current=float(peak[i]),
                ripple=float(ripple[i]),
                coil_loss_w=float(loss_w[i]),
                efficiency=(float(stage.energy_out_j[i]) / e_in
                            if e_in > 0 else 0.0),
                ov_events=len(self.bank.outputs[i][2].edges("rise")),
                cycles=list(lane.controller.cycles_started),
                metastable_events=lane.controller.metastable_events(),
                solver_ticks=int(solver.tick_counts[i]),
                trace=lane.trace_set() if lane.config.trace else None,
                events_delivered=lane.sim.events_delivered,
                clock_edges_simulated=getattr(
                    lane.controller, "clock_edges_simulated", 0),
                clock_edges_skipped=getattr(
                    lane.controller, "clock_edges_skipped", 0),
            ))
        return results


@dataclass
class SweepPoint:
    """One scenario's spec, expanded config, result, and (optionally) the
    live lane/system handle for waveform-level inspection."""

    spec: ScenarioSpec
    config: SystemConfig
    result: RunResult
    handle: Optional[object] = None   #: ScenarioLane or BuckSystem when kept
    #: served without simulating: a cache hit, an in-flight dedupe against
    #: a concurrent sweep, or a duplicate spec within this sweep
    cached: bool = False
    #: the scenario's content cache key (set when the session caches; the
    #: sweep server hands it to clients for GET-by-key fetches)
    key: Optional[str] = None


def _as_specs(specs: Specs) -> List[ScenarioSpec]:
    if isinstance(specs, Sweep):
        return specs.specs()
    return list(specs)


def run_sweep(specs: Specs, backend: str = "vector",
              defaults: Optional[Mapping[str, Any]] = None,
              settle: Optional[float] = None, trace: bool = False,
              keep: bool = False, track_energy: bool = True,
              workers: Optional[int] = None,
              max_lanes_per_shard: Optional[int] = None) -> List[SweepPoint]:
    """Deprecated shim: delegate to a :class:`repro.session.Session`.

    New code should construct a session once and call
    :meth:`~repro.session.Session.sweep`::

        session = Session(backend=backend, workers=workers)
        points = session.sweep(specs)

    The shim builds a session from the legacy keyword knobs (cache mode
    resolved from the ``REPRO_CACHE`` environment variable, like the
    default session) and forwards the call.
    """
    warnings.warn(
        "run_sweep() is deprecated; use repro.session.Session.sweep() — "
        "Session(backend=..., workers=...).sweep(specs)",
        DeprecationWarning, stacklevel=2)
    from ..session import Session
    session = Session(backend=backend, workers=workers, defaults=defaults,
                      max_lanes_per_shard=max_lanes_per_shard)
    return session.sweep(specs, settle=settle, trace=trace, keep=keep,
                         track_energy=track_energy)


def _execute_sweep(spec_list: Sequence[ScenarioSpec],
                   configs: Sequence[SystemConfig], *,
                   backend: str = "vector",
                   settle: Optional[float] = None,
                   keep: bool = False, track_energy: bool = True,
                   workers: Optional[int] = None,
                   max_lanes_per_shard: Optional[int] = None,
                   on_result: Optional[Callable[[int, SweepPoint], None]]
                   = None) -> List[SweepPoint]:
    """Execute pre-expanded (spec, config) pairs and return one
    :class:`SweepPoint` per spec — the engine core behind
    :meth:`repro.session.Session.sweep`.

    Tracing is carried by each config's ``trace`` field (expanded by the
    caller): traced runs attach their :class:`~repro.trace.TraceSet` to
    the result on either backend, inline or sharded.

    Parameters
    ----------
    backend:
        ``"vector"`` (batched lock-step) or ``"scalar"`` (sequential
        reference path).
    settle:
        Passed through to the run (seconds of startup transient excluded
        from statistics); ``None`` means the 20% default.
    keep:
        Attach the live lane / system to each point for inspection.
    track_energy:
        Vector backend only: set False to skip energy/loss accumulation
        for sweeps that don't report ``coil_loss_w`` / ``efficiency``
        (waveforms and peaks are unaffected; those two fields read zero).
    workers:
        Shard independent batches across this many worker processes
        (``None``/``0``/``1``: run inline).  Results — including the
        :class:`~repro.trace.TraceSet` attached to traced runs, which is
        picklable and crosses the pipe intact — are bit-identical to the
        inline path and always returned in spec order.  Only
        ``keep=True`` is incompatible (live lane/system handles cannot
        cross processes).
    max_lanes_per_shard:
        Cap on lanes per executed batch; oversized lock-step groups are
        split into chunks of at most this many lanes (per-lane seeding
        keeps results identical).  Default: even split over ``workers``
        when sharding, no splitting inline.
    on_result:
        Per-lane landing hook, ``on_result(index, point)`` with ``index``
        into ``spec_list``.  Invoked on the calling thread as each lane's
        result lands: per lane after each batch inline, per lane of each
        *finished shard* when sharded (completion order, not spec order —
        the sharded path switches from ``pool.map`` to ``as_completed``
        so a slow shard never delays another shard's callbacks).  The
        hook only observes results; the returned list is bit-identical
        with or without it.
    """
    if backend not in ("vector", "scalar"):
        raise ValueError("backend must be 'vector' or 'scalar'")
    if workers is not None and workers < 0:
        raise ValueError("workers cannot be negative")
    parallel = workers is not None and workers > 1
    if parallel and keep:
        raise ValueError(
            "keep=True attaches live lane/system handles, which cannot "
            "cross process boundaries; run with workers=1 (or workers=None) "
            "to keep handles")
    spec_list = list(spec_list)
    configs = list(configs)
    points: List[Optional[SweepPoint]] = [None] * len(spec_list)

    def _land(i: int, point: SweepPoint) -> None:
        points[i] = point
        if on_result is not None:
            on_result(i, point)

    if parallel:
        run_sweep_parallel(
            spec_list, configs, backend=backend, settle=settle,
            track_energy=track_energy, workers=workers,
            max_lanes_per_shard=max_lanes_per_shard,
            on_result=lambda i, result: _land(
                i, SweepPoint(spec_list[i], configs[i], result)))
        return points  # type: ignore[return-value]

    if backend == "scalar":
        for i, (spec, cfg) in enumerate(zip(spec_list, configs)):
            with obs.span("lane.compute", index=i, spec=spec.name,
                          backend="scalar",
                          metric="repro_lane_compute_seconds"):
                system = BuckSystem(cfg)
                result = system.measure(settle=settle)
            _land(i, SweepPoint(spec, cfg, result,
                                system if keep else None))
        return points  # type: ignore[return-value]

    for plan in plan_batches(configs, max_lanes_per_shard):
        indices = plan.indices
        with obs.span("batch.run", lanes=len(indices), backend="vector",
                      metric="repro_lane_compute_seconds"):
            batch = VectorBatch([spec_list[i] for i in indices],
                                [configs[i] for i in indices],
                                track_energy=track_energy)
            results = batch.run(settle=settle)
        for lane_no, i in enumerate(indices):
            with obs.span("lane.collect", index=i, spec=spec_list[i].name):
                _land(i, SweepPoint(spec_list[i], configs[i],
                                    results[lane_no],
                                    batch.lanes[lane_no] if keep else None))
    return points  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Cross-validation: vectorized vs scalar
# ---------------------------------------------------------------------------
@dataclass
class EdgeComparison:
    """Edge-time agreement for one comparator output."""

    name: str
    count_scalar: int
    count_vector: int
    max_dt: float        #: worst |t_scalar - t_vector| over paired edges

    @property
    def counts_match(self) -> bool:
        return self.count_scalar == self.count_vector


@dataclass
class CrossValidation:
    """Waveform/event agreement report for one scenario run both ways."""

    spec: ScenarioSpec
    v_err: float                     #: max |V_out difference| over all samples
    i_err: float                     #: max |coil current difference|
    n_samples: int                   #: compared samples (the shared prefix)
    n_samples_scalar: int = 0
    n_samples_vector: int = 0
    edges: List[EdgeComparison] = field(default_factory=list)
    result_scalar: Optional[RunResult] = None
    result_vector: Optional[RunResult] = None

    @property
    def max_edge_dt(self) -> float:
        return max((e.max_dt for e in self.edges), default=0.0)

    @property
    def edge_counts_match(self) -> bool:
        return all(e.counts_match for e in self.edges)

    @property
    def sample_counts_match(self) -> bool:
        """Both backends took the same number of micro-steps."""
        return self.n_samples_scalar == self.n_samples_vector


@dataclass
class SteppingDrift:
    """Fixed-vs-adaptive agreement report for one scenario.

    The adaptive stepper is *not* bit-matched to the fixed grid — it
    takes different (error-controlled) steps — so agreement is bounded,
    not exact: the cross-validation suite asserts the drifts below stay
    inside documented tolerances.  Between the two adaptive backends,
    however, the stepping policy is plumbed identically, so
    ``backends_match`` locks scalar-vs-vector adaptive *exact* equality.
    """

    spec: ScenarioSpec
    result_fixed: RunResult          #: vector backend, fixed grid
    result_adaptive: RunResult       #: vector backend, adaptive grid
    result_adaptive_scalar: RunResult

    @property
    def tick_ratio(self) -> float:
        """Fixed-over-adaptive committed micro-step ratio (the speed win)."""
        return self.result_fixed.solver_ticks / self.result_adaptive.solver_ticks

    @property
    def peak_drift(self) -> float:
        return abs(self.result_fixed.peak_coil_current
                   - self.result_adaptive.peak_coil_current)

    @property
    def ripple_drift(self) -> float:
        return abs(self.result_fixed.ripple - self.result_adaptive.ripple)

    @property
    def v_final_drift(self) -> float:
        return abs(self.result_fixed.v_final - self.result_adaptive.v_final)

    @property
    def cycle_drift(self) -> float:
        """Relative total-cycle-count difference (controller activity)."""
        fixed = sum(self.result_fixed.cycles)
        adaptive = sum(self.result_adaptive.cycles)
        if fixed == 0:
            return float(adaptive != 0)
        return abs(fixed - adaptive) / fixed

    @property
    def backends_match(self) -> bool:
        """Adaptive scalar and adaptive vector agree: bit-for-bit on the
        state/peak/timing quantities and step counts; within float
        round-off on the energy accumulators, whose per-phase summation
        order differs between the backends (the same ulp-level slack the
        fixed-grid equivalence suite documents)."""
        a, s = self.result_adaptive, self.result_adaptive_scalar
        return (a.v_final == s.v_final
                and a.peak_coil_current == s.peak_coil_current
                and a.ripple == s.ripple
                and math.isclose(a.coil_loss_w, s.coil_loss_w,
                                 rel_tol=1e-9, abs_tol=1e-18)
                and math.isclose(a.efficiency, s.efficiency,
                                 rel_tol=1e-9, abs_tol=1e-18)
                and a.cycles == s.cycles
                and a.ov_events == s.ov_events
                and a.solver_ticks == s.solver_ticks)


def _respec(spec: ScenarioSpec, stepping: str) -> ScenarioSpec:
    return ScenarioSpec(name=f"{spec.name}[{stepping}]",
                        overrides=dict(spec.overrides, stepping=stepping),
                        seed=spec.seed)


def cross_validate_stepping(spec: ScenarioSpec,
                            defaults: Optional[Mapping[str, Any]] = None,
                            settle: Optional[float] = None) -> SteppingDrift:
    """Run ``spec`` on the fixed and adaptive grids and report the drift.

    Three runs: vector/fixed (the golden-locked reference), vector/
    adaptive, and scalar/adaptive (which must match vector/adaptive
    bit-for-bit — the policy is the same code path on both backends).
    """
    defaults = dict(defaults or {})
    spec_f = _respec(spec, "fixed")
    spec_a = _respec(spec, "adaptive")
    cfg_f = spec_f.to_config(**defaults)
    cfg_a = spec_a.to_config(**defaults)
    result_f = VectorBatch([spec_f], [cfg_f]).run(settle=settle)[0]
    result_a = VectorBatch([spec_a], [cfg_a]).run(settle=settle)[0]
    result_s = BuckSystem(spec_a.to_config(**defaults)).measure(settle=settle)
    return SteppingDrift(spec=spec, result_fixed=result_f,
                         result_adaptive=result_a,
                         result_adaptive_scalar=result_s)


def cross_validate(spec: ScenarioSpec,
                   defaults: Optional[Mapping[str, Any]] = None,
                   settle: Optional[float] = None) -> CrossValidation:
    """Run ``spec`` through both backends with tracing and compare."""
    defaults = dict(defaults or {})
    cfg_s = spec.to_config(trace=True, **defaults)
    system = BuckSystem(cfg_s)
    result_s = system.measure(settle=settle)

    cfg_v = spec.to_config(trace=True, **defaults)
    batch = VectorBatch([spec], [cfg_v])
    result_v = batch.run(settle=settle)[0]

    times_s = np.array(system.solver.v_probe.times)
    times_v = batch.solver.waveform_times()
    n = min(len(times_s), len(times_v))
    v_err = float(np.max(np.abs(
        np.array(system.solver.v_probe.values[:n]) - batch.solver.v_waveform(0)[:n])))
    i_err = 0.0
    for k in range(cfg_s.n_phases):
        scal = np.array(system.solver.i_probes[k].values[:n])
        vect = batch.solver.i_waveform(0, k)[:n]
        i_err = max(i_err, float(np.max(np.abs(scal - vect))))

    names = (["hl", "uv", "ov"]
             + [f"oc{k}" for k in range(cfg_s.n_phases)]
             + [f"zc{k}" for k in range(cfg_s.n_phases)])
    scalar_comps = system.sensors.all_comparators()
    edges = []
    for col, (name, comp) in enumerate(zip(names, scalar_comps)):
        e_s = comp.output.edges()
        e_v = batch.bank.outputs[0][col].edges()
        paired = min(len(e_s), len(e_v))
        max_dt = max((abs(a - b) for a, b in zip(e_s[:paired], e_v[:paired])),
                     default=0.0)
        edges.append(EdgeComparison(name, len(e_s), len(e_v), max_dt))

    return CrossValidation(spec=spec, v_err=v_err, i_err=i_err,
                           n_samples=n, n_samples_scalar=len(times_s),
                           n_samples_vector=len(times_v), edges=edges,
                           result_scalar=result_s, result_vector=result_v)
