"""Fused fixed-grid tick for the vector backend.

The fixed-mode hot loop of :class:`~repro.scenarios.vector_solver.
VectorizedSolver` performs, per micro-step: one RK2 array step of the
power stage, the waveform min/max statistics update, and one comparator
bank evaluation.  :func:`make_fixed_tick` packages those three into a
single callable so the loop makes one call per tick, with two
implementations behind it:

``numpy`` (always available)
    The exact ufunc sequence the solver historically ran — step, record,
    sample — with every attribute lookup hoisted to closure locals.
    Bit-for-bit the reference behaviour.

``numba`` (optional)
    A single JIT-compiled pass over the lane arrays fusing the RK2
    integration, body-diode clamp, soft-saturation derating, energy
    bookkeeping, min/max statistics, and the strict comparator
    comparisons into one loop nest — no per-tick ufunc dispatch, no
    intermediate arrays.  The per-element arithmetic replicates the
    ufunc chains operation for operation (same order, default IEEE
    semantics, no fastmath), so results are bit-identical to the numpy
    path; the equivalence suite locks this whenever numba is installed.

The numba path engages only when the package is importable (it is an
optional dependency — absent installs fall back silently) and the batch
qualifies: no sensor-noise lanes (their per-lane RNG draws stay on the
numpy path) and no waveform tracing inside the kernel (trace appends
run in the wrapper either way).  ``REPRO_NUMBA=0`` forces the numpy
path for A/B timing.

Rare or stateful work stays in Python on both paths: threshold-swap
level refreshes, comparator edge scheduling (only on actual crossings),
and the bank's double-buffer bookkeeping.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

try:  # optional dependency: absent installs use the numpy path
    import numba
    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less installs
    numba = None
    HAVE_NUMBA = False

#: hl, uv, ov comparator columns precede the per-phase oc/zc columns
V_COLS = 3


def numba_enabled() -> bool:
    """Whether the fused numba kernel may be used in this process."""
    return HAVE_NUMBA and os.environ.get("REPRO_NUMBA", "").strip() != "0"


def make_fixed_tick(solver) -> Callable[[float, float], None]:
    """Build the per-tick callable for ``solver`` (fixed stepping).

    ``tick(t, t_next)`` advances the stage by ``solver.dt`` from ``t``,
    updates the waveform statistics at ``t_next``, and evaluates the
    comparator bank at ``t_next`` — exactly what the unfused loop body
    did.  The caller owns the tick counter and the event pump.
    """
    if numba_enabled() and _kernel_eligible(solver):
        return _make_numba_tick(solver)
    return _make_numpy_tick(solver)


def _make_numpy_tick(solver) -> Callable[[float, float], None]:
    """The reference path: step + record + sample, lookups hoisted."""
    stage = solver.stage
    bank = solver.bank
    step = stage.step
    record = solver._record
    sample = bank.sample if bank is not None else None
    dt = solver.dt

    if sample is None:
        def tick(t: float, t_next: float) -> None:
            step(t, dt)
            record(t_next)
    else:
        def tick(t: float, t_next: float) -> None:
            step(t, dt)
            record(t_next)
            sample(t_next, stage.v_out, stage.current)
    return tick


def _kernel_eligible(solver) -> bool:
    """The fused kernel handles the common batch shape; anything with
    per-lane RNG draws inside the tick stays on the numpy path."""
    bank = solver.bank
    if bank is not None and bank._noise_lanes:
        return False
    return True


# ---------------------------------------------------------------------------
# Fused numba kernel (compiled lazily, only when numba is importable)
# ---------------------------------------------------------------------------
_KERNEL = None


def _get_kernel():  # pragma: no cover - requires the optional numba dep
    global _KERNEL
    if _KERNEL is not None:
        return _KERNEL

    @numba.njit(cache=True)
    def kernel(dt, i0, v0, A, B, off_b, pmos_b,
               vin_pvd, nvd, n_dcr, inductance, i_sat, dcr, vin_half,
               c_out, r1, r2, track_energy,
               coil_loss, energy_in, energy_out,
               v_max, v_min, i_max, i_min,
               i1, v1, x, level, state, cmp_, changed):
        """One fused fixed tick over every lane.

        Per-element arithmetic mirrors ``VectorizedPowerStage.step`` and
        ``VectorComparatorBank.sample`` operation for operation: the
        ufunc chains are element-independent (reductions over the small
        phase axis are sequential), so evaluating each element's chain
        inside one loop produces bit-identical results.
        """
        n_lanes, p = i0.shape
        n_cols = level.shape[1]
        half = 0.5 * dt
        any_changed = False
        for n in range(n_lanes):
            v = v0[n]
            # ---- k1 at (t, i0, v0) ----------------------------------
            sum_i = 0.0
            k1_i = np.empty(p)
            for k in range(p):
                i = i0[n, k]
                sum_i += i
                if off_b[n, k]:
                    if i == 0.0:
                        k1_i[k] = 0.0
                        continue
                    drive = (vin_pvd[n, k] if i < 0.0 else nvd[n, k]) \
                        + n_dcr[n, k] * i
                else:
                    drive = A[n, k] + B[n, k] * i
                od = abs(i) / i_sat[n, k]
                l_eff = inductance[n, k] if od <= 1.0 \
                    else inductance[n, k] * (0.4 + 0.6 / max(od, 1.0))
                k1_i[k] = (drive - v) / l_eff
            k1_v = (sum_i - v / r1[n]) / c_out[n]
            # ---- k2 at the midpoint ---------------------------------
            mid_v = v + k1_v * half
            sum_m = 0.0
            k2_i = np.empty(p)
            mid = np.empty(p)
            for k in range(p):
                m = i0[n, k] + k1_i[k] * half
                mid[k] = m
                sum_m += m
            for k in range(p):
                m = mid[k]
                if off_b[n, k]:
                    if m == 0.0:
                        k2_i[k] = 0.0
                        continue
                    drive = (vin_pvd[n, k] if m < 0.0 else nvd[n, k]) \
                        + n_dcr[n, k] * m
                else:
                    drive = A[n, k] + B[n, k] * m
                od = abs(m) / i_sat[n, k]
                l_eff = inductance[n, k] if od <= 1.0 \
                    else inductance[n, k] * (0.4 + 0.6 / max(od, 1.0))
                k2_i[k] = (drive - mid_v) / l_eff
            k2_v = (sum_m - mid_v / r2[n]) / c_out[n]
            vn = v + k2_v * dt
            # ---- commit, body-diode clamp, energy -------------------
            for k in range(p):
                i_old = i0[n, k]
                i_new = i_old + k2_i[k] * dt
                if off_b[n, k] and (i_old * i_new <= 0.0
                                    or abs(i_new) > abs(i_old)):
                    i_new = i_new * 0.0
                i1[n, k] = i_new
            if track_energy:
                e_in = 0.0
                for k in range(p):
                    i_old = i0[n, k]
                    i_new = i1[n, k]
                    coil_loss[n, k] += ((i_old * i_old + i_new * i_new)
                                        * 0.5 * dcr[n, k]) * dt
                    if pmos_b[n, k]:
                        e_in += (vin_half[n, 0] * (i_old + i_new)) * dt
                energy_in[n] += e_in
                energy_out[n] += ((v * v + vn * vn) * 0.5 / r1[n]) * dt
            v1[n] = vn
            # ---- waveform statistics --------------------------------
            if vn > v_max[n]:
                v_max[n] = vn
            if vn < v_min[n]:
                v_min[n] = vn
            for k in range(p):
                i_new = i1[n, k]
                if i_new > i_max[n, k]:
                    i_max[n, k] = i_new
                if i_new < i_min[n, k]:
                    i_min[n, k] = i_new
            # ---- comparator bank: fill + strict compare -------------
            if n_cols:
                for c in range(V_COLS):
                    x[n, c] = vn
                for k in range(p):
                    x[n, V_COLS + k] = i1[n, k]
                    x[n, V_COLS + p + k] = i1[n, k]
                for c in range(n_cols):
                    xv = x[n, c]
                    if 2 <= c < V_COLS + p:       # ov, oc: above-threshold
                        hit = xv > level[n, c]
                    else:                          # hl, uv, zc: below
                        hit = xv < level[n, c]
                    cmp_[n, c] = hit
                    ch = hit != state[n, c]
                    changed[n, c] = ch
                    if ch:
                        any_changed = True
        return any_changed

    _KERNEL = kernel
    return _KERNEL


def _make_numba_tick(solver):  # pragma: no cover - requires numba
    """Wrapper owning the Python-side bookkeeping around the kernel."""
    stage = solver.stage
    bank = solver.bank
    buffers = solver._buffers
    dt = solver.dt
    kernel = _get_kernel()
    track = stage.track_energy
    resistance = stage.resistance
    n_cols = bank.n_cols if bank is not None else 0
    # kernel scratch when there is no bank to provide the sample buffers
    if bank is None:
        n = stage.n_lanes
        empty = np.empty((n, 0))
        ebool = np.empty((n, 0), dtype=bool)

    def tick(t: float, t_next: float) -> None:
        if bank is not None:
            if bank._dirty:
                bank.refresh_levels()
            x = bank._bufs[bank._cur]
            level, state = bank._level, bank.state
            cmp_, changed = bank._cmp, bank._b2
        else:
            x = level = empty
            state = cmp_ = changed = ebool
        r1 = resistance(t)
        r2 = resistance(t + 0.5 * dt)
        i0, v0 = stage.current, stage.v_out
        i1, v1 = stage._next_i, stage._next_v
        any_changed = kernel(
            dt, i0, v0, stage._A, stage._B, stage._off_b,
            stage.pmos_on, stage._vin_pvd, stage._nvd, stage._n_dcr,
            stage.inductance, stage.i_sat, stage.dcr, stage._vin_half,
            stage.c_out, r1, r2, track,
            stage.coil_loss_j, stage.energy_in_j, stage.energy_out_j,
            solver.v_max, solver.v_min, solver.i_max, solver.i_min,
            i1, v1, x, level, state, cmp_, changed)
        # commit by buffer swap, like VectorizedPowerStage.step
        stage.current, stage._next_i = i1, i0
        stage.v_out, stage._next_v = v1, v0
        if buffers is not None:
            buffers.append(t_next, v1, i1)
        if bank is not None:
            if any_changed:
                bank._schedule_edges(t_next, x, cmp_, changed)
                adj_on, th_, lvl = bank._adj_on, bank.threshold, bank._level
                for li, c in np.argwhere(changed):
                    lvl[li, c] = adj_on[li, c] if cmp_[li, c] else th_[li, c]
                np.copyto(state, cmp_, where=changed)
            bank._prev_x = x
            bank._cur = 1 - bank._cur
            bank._prev_t = t_next
    return tick
