"""Process-parallel sharding of :func:`~repro.scenarios.engine.run_sweep`.

The vectorized backend already collapses N scenarios into one array
integration, but every lane still owns a discrete-event simulator whose
controller work is pure Python — the serial floor (~40-60% of a vector
batch at light load) that one process cannot reclaim.  Batches are
mutually independent, so this module shards them across a
:class:`~concurrent.futures.ProcessPoolExecutor`:

1. :func:`plan_batches` — the *planner* shared with the inline engine
   path: group specs by the lock-step key ``(n_phases, dt, sim_time,
   trace)``, then slice oversized groups into ``max_lanes_per_shard``
   chunks.  Per-lane seeding makes every lane's trajectory independent of
   its batch neighbours, so chunking cannot change results.
2. :func:`encode_spec` / :func:`encode_config` — picklable work units:
   specs and expanded :class:`~repro.system.SystemConfig` fields travel
   as plain dicts of primitives; model objects (coil, load profile,
   references, controller params, async timings) are re-built in the
   child, so nothing unpicklable ever crosses the pipe.
3. :func:`run_sweep_parallel` — executes one shard per work unit and
   reassembles the per-lane :class:`~repro.system.RunResult` list in spec
   order (``pool.map`` preserves submission order), bit-identical to the
   inline ``workers=1`` path.

Live handles (``keep=True`` lanes) cannot cross process boundaries; the
engine front door raises before reaching this module.  Traced sweeps
*do* shard: each worker attaches the lane's columnar
:class:`~repro.trace.TraceSet` to its :class:`RunResult`, and TraceSets
pickle bit-exactly, so ``trace=True, workers=N`` waveforms are
identical to the inline path's.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, TypeVar)

from .. import obs
from ..analog.coil import Coil
from ..analog.load import LoadProfile
from ..analog.sensors import BuckReferences
from ..control.async_controller import AsyncTimings
from ..control.params import BuckControlParams
from ..system import RunResult, SystemConfig
from .spec import ScenarioSpec

T = TypeVar("T")
R = TypeVar("R")


# ---------------------------------------------------------------------------
# Batch planning (shared by the inline engine path and the sharder)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BatchPlan:
    """One executable batch: the sweep indices it covers, in spec order."""

    indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def lockstep_key(config: SystemConfig) -> Tuple:
    """The grouping key lanes must share to advance in one vector batch.

    The stepping-policy fields are part of the key: fixed and adaptive
    lanes run different solver loops and must not share a batch (adaptive
    lanes still advance on per-lane grids inside their batch, so batch
    composition never affects results — the key only keeps the loop and
    its tolerances uniform).

    Every other :class:`SystemConfig` field is deliberately unkeyed: it
    is per-lane state (each lane owns its controller, analog arrays, and
    event timing), so lanes differing in it still advance in lock step —
    the parallel determinism tests lock lane-composition independence.
    The allowlist below is machine-checked by ``repro.lint`` (rule K02).
    """
    # lint: nokey(controller, fsm_frequency, params, timings: per-lane FSMs)
    # lint: nokey(coil, inductance, v_in, c_out, v_out0: per-lane arrays)
    # lint: nokey(load, refs: per-lane analog models)
    # lint: nokey(sensor_delay, sensor_noise, seed: per-lane noise/timing)
    # lint: nokey(t_gate: per-lane measurement window)
    # lint: nokey(gating: per-lane event pacing; results bit-identical)
    return (config.n_phases, config.dt, config.sim_time, config.trace,
            config.stepping, config.dt_min, config.dt_max, config.rtol,
            config.atol_i, config.atol_v)


def plan_batches(configs: Sequence[SystemConfig],
                 max_lanes_per_shard: Optional[int] = None) -> List[BatchPlan]:
    """Group sweep entries into executable batches.

    Entries sharing the lock-step key form one batch (first-occurrence
    order, indices ascending within each batch).  When
    ``max_lanes_per_shard`` is given, oversized batches are sliced into
    contiguous chunks of at most that many lanes — per-lane seeding makes
    lane trajectories independent of their batch neighbours, so chunking
    never changes results (see the parallel determinism tests).
    """
    if max_lanes_per_shard is not None and max_lanes_per_shard < 1:
        raise ValueError("max_lanes_per_shard must be at least 1")
    groups: Dict[Tuple, List[int]] = {}
    for i, cfg in enumerate(configs):
        groups.setdefault(lockstep_key(cfg), []).append(i)
    plans: List[BatchPlan] = []
    for indices in groups.values():
        if max_lanes_per_shard is None:
            plans.append(BatchPlan(tuple(indices)))
            continue
        for start in range(0, len(indices), max_lanes_per_shard):
            plans.append(BatchPlan(
                tuple(indices[start:start + max_lanes_per_shard])))
    return plans


# ---------------------------------------------------------------------------
# Spec / config serialization (picklable work units)
# ---------------------------------------------------------------------------
#: model classes rebuilt in the worker from their dataclass fields
_MODELS: Dict[str, type] = {
    "coil": Coil,
    "refs": BuckReferences,
    "params": BuckControlParams,
    "timings": AsyncTimings,
}

_MODEL_TAG = "__model__"


def encode_value(value: Any) -> Any:
    """Flatten one override/config value into pickle-safe primitives."""
    if isinstance(value, Coil):
        return {_MODEL_TAG: "coil", **asdict(value)}
    if isinstance(value, LoadProfile):
        return {_MODEL_TAG: "load", "steps": value.steps()}
    if isinstance(value, BuckReferences):
        return {_MODEL_TAG: "refs", **asdict(value)}
    if isinstance(value, BuckControlParams):
        return {_MODEL_TAG: "params", **asdict(value)}
    if isinstance(value, AsyncTimings):
        return {_MODEL_TAG: "timings", **asdict(value)}
    return value


def decode_value(value: Any) -> Any:
    """Rebuild a model object from its :func:`encode_value` form."""
    if isinstance(value, Mapping) and _MODEL_TAG in value:
        kind = value[_MODEL_TAG]
        fields = {k: v for k, v in value.items() if k != _MODEL_TAG}
        if kind == "load":
            return LoadProfile([tuple(step) for step in fields["steps"]])
        return _MODELS[kind](**fields)
    return value


def encode_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "overrides": {k: encode_value(v) for k, v in spec.overrides.items()},
        "seed": spec.seed,
    }


def decode_spec(payload: Mapping[str, Any]) -> ScenarioSpec:
    return ScenarioSpec(
        name=payload["name"],
        overrides={k: decode_value(v)
                   for k, v in payload["overrides"].items()},
        seed=payload["seed"],
    )


def encode_config(config: SystemConfig) -> Dict[str, Any]:
    return {name: encode_value(getattr(config, name))
            for name in SystemConfig.__dataclass_fields__}


def decode_config(payload: Mapping[str, Any]) -> SystemConfig:
    return SystemConfig(**{k: decode_value(v) for k, v in payload.items()})


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------
@dataclass
class _ShardWork:
    """Everything one worker needs to run one batch (plain primitives)."""

    backend: str
    settle: Optional[float]
    track_energy: bool
    specs: List[Dict[str, Any]]
    configs: List[Dict[str, Any]]
    #: shard number and original sweep indices — observability labels
    #: only; results are placed by the coordinator's plan, never these
    shard: int = 0
    indices: Tuple[int, ...] = ()


def _run_shard(work: _ShardWork) -> Tuple[List[RunResult],
                                          List[Dict[str, Any]],
                                          Dict[str, Any]]:
    """Worker entry point: rebuild the batch and run it to completion.

    Returns ``(results, spans, metrics_delta)``: the per-lane results
    plus the worker-side observability payload — exported spans from a
    fresh worker trace and the counter/histogram movement since the
    shard started (forked workers inherit the parent's counts; the
    baseline keeps the delta clean).  Both extras are empty when the
    kill switch is off.
    """
    # Imported lazily: engine imports this module for the shared planner.
    from .. import obs
    from ..system import BuckSystem
    from .engine import VectorBatch

    specs = [decode_spec(s) for s in work.specs]
    configs = [decode_config(c) for c in work.configs]
    base = obs.metrics_baseline()
    with obs.new_trace() as tr:
        with obs.span("shard.run", shard=work.shard, lanes=len(specs),
                      backend=work.backend,
                      metric="repro_shard_seconds"):
            if work.backend == "scalar":
                results = []
                for lane_no, cfg in enumerate(configs):
                    index = (work.indices[lane_no]
                             if lane_no < len(work.indices) else lane_no)
                    with obs.span("lane.compute", index=index,
                                  spec=specs[lane_no].name,
                                  backend="scalar",
                                  metric="repro_lane_compute_seconds"):
                        results.append(
                            BuckSystem(cfg).measure(settle=work.settle))
            else:
                with obs.span("batch.run", lanes=len(specs),
                              backend="vector",
                              metric="repro_lane_compute_seconds"):
                    batch = VectorBatch(specs, configs,
                                        track_energy=work.track_energy)
                    results = batch.run(settle=work.settle)
                for lane_no, spec in enumerate(specs):
                    index = (work.indices[lane_no]
                             if lane_no < len(work.indices) else lane_no)
                    with obs.span("lane.collect", index=index,
                                  spec=spec.name):
                        pass
        spans = tr.export() if tr is not None else []
    return results, spans, obs.metrics_delta(base)


def run_sweep_parallel(specs: Sequence[ScenarioSpec],
                       configs: Sequence[SystemConfig],
                       backend: str = "vector",
                       settle: Optional[float] = None,
                       track_energy: bool = True,
                       workers: int = 2,
                       max_lanes_per_shard: Optional[int] = None,
                       on_result: Optional[Callable[[int, RunResult], None]]
                       = None) -> List[RunResult]:
    """Shard the sweep across worker processes; results in spec order.

    ``max_lanes_per_shard`` defaults to an even split of the whole sweep
    over ``workers`` (so one homogeneous batch fans out across the pool).
    The reassembled results are bit-identical to the inline path: lanes
    are seeded independently of batch composition and shards are indexed
    by their plan, so completion order cannot perturb placement.

    ``on_result(index, result)`` is invoked on the calling thread for
    every lane of each shard as that shard *completes* (futures consumed
    via ``as_completed``), so progress flows even while slower shards
    are still running; callback order across shards is completion order,
    never spec order.  The returned list is unaffected by the hook.
    """
    if workers < 2:
        raise ValueError("run_sweep_parallel needs workers >= 2; "
                         "use the inline engine path otherwise")
    if len(specs) != len(configs):
        raise ValueError("specs and configs must pair up")
    if max_lanes_per_shard is None:
        max_lanes_per_shard = max(1, math.ceil(len(configs) / workers))
    plans = plan_batches(configs, max_lanes_per_shard)
    work = [
        _ShardWork(backend=backend, settle=settle, track_energy=track_energy,
                   specs=[encode_spec(specs[i]) for i in plan.indices],
                   configs=[encode_config(configs[i]) for i in plan.indices],
                   shard=shard_no, indices=plan.indices)
        for shard_no, plan in enumerate(plans)
    ]
    results: List[Optional[RunResult]] = [None] * len(configs)
    with ProcessPoolExecutor(max_workers=min(workers, len(plans))) as pool:
        futures = {pool.submit(_run_shard, unit): (plan, unit.shard)
                   for plan, unit in zip(plans, work)}
        for future in as_completed(futures):
            plan, shard_no = futures[future]
            shard, spans, delta = future.result()
            obs.adopt_spans(spans, worker=f"shard-{shard_no}")
            obs.merge_metrics(delta)
            for index, result in zip(plan.indices, shard):
                with obs.span("lane.land", index=index, shard=shard_no):
                    results[index] = result
                    if on_result is not None:
                        on_result(index, result)
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Generic order-preserving pool map (used by the Table I harness)
# ---------------------------------------------------------------------------
def pool_map(fn: Callable[[T], R], items: Sequence[T],
             workers: Optional[int] = None) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Runs inline for ``workers in (None, 0, 1)`` (or a single item);
    otherwise fans out over a process pool.  ``fn`` and the items must be
    picklable (a module-level function of plain values).
    """
    if workers is not None and workers < 0:
        raise ValueError("workers cannot be negative")
    items = list(items)
    if workers in (None, 0, 1) or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


def workers_from_env(var: str = "REPRO_SWEEP_WORKERS") -> Optional[int]:
    """Worker count from the environment: unset/empty/``0`` means inline
    (``None``).  Used by the benchmark harnesses so one CI variable
    shards every sweep."""
    raw = os.environ.get(var, "").strip()
    if not raw:
        return None
    count = int(raw)
    if count < 0:
        raise ValueError(f"{var} cannot be negative (got {count})")
    return count or None
