"""Scenario specifications and sweep (parameter-space) builders.

A :class:`ScenarioSpec` names one simulation scenario as a flat set of
overrides on top of :class:`repro.system.SystemConfig`.  A :class:`Sweep`
enumerates a whole parameter space — cartesian grids, random draws, or a
mix — into a deterministic, seeded list of specs that the batched engine
(:func:`repro.scenarios.engine.run_sweep`) executes.

Spec format
-----------
Override keys are :class:`SystemConfig` field names (``controller``,
``fsm_frequency``, ``inductance``, ``sim_time``, ``dt``, ``seed``, …) plus
a few convenience pseudo-keys:

``r_load``
    Constant load resistance in ohm; expands to
    ``load=LoadProfile.constant(r_load)``.
``l_uh``
    Coil inductance in microhenry; expands to ``coil=make_coil(l_uh*UH)``.
``pmin``, ``nmin``, ``pext``, ``phase_dwell``
    Controller timing constants; collected into a
    :class:`~repro.control.params.BuckControlParams` (only when no explicit
    ``params`` override is given).
``x_*``
    Free-form extras: carried on the spec (for custom runners like the
    Table I harness) but ignored by :meth:`ScenarioSpec.to_config`.

Grid axes accept three value forms: plain values (assigned to the axis
key), mappings (merged into the overrides — for joint parameters like
``{"controller": "sync", "fsm_frequency": ...}``), and ``(label,
mapping)`` tuples (merged, with ``label`` used in the spec name).

Seeding rules
-------------
Sweeps are pure functions of ``(base, axes, seed)``:

- grid points inherit the base config seed (so grid lanes are directly
  comparable) unless ``seed`` itself is swept as an axis;
- random draws use one lane RNG per point, derived from the sweep master
  seed and the point index via :func:`lane_seed` (splitmix-style mixing),
  so inserting or removing points never perturbs the other lanes' draws;
- each random point's config seed is its lane seed, making stochastic
  elements (sensor noise, metastability resolution) reproducible per lane.

Building the same sweep twice therefore yields identical specs, and the
engine guarantees identical results (see the determinism tests).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..analog.coil import make_coil
from ..analog.load import LoadProfile
from ..control.params import BuckControlParams
from ..sim.units import UH
from ..system import SystemConfig

#: override keys routed into BuckControlParams instead of SystemConfig
PARAM_KEYS = ("pmin", "nmin", "pext", "phase_dwell")

#: pseudo-keys expanded by :meth:`ScenarioSpec.to_config`
PSEUDO_KEYS = ("r_load", "l_uh") + PARAM_KEYS

_CONFIG_KEYS = frozenset(SystemConfig.__dataclass_fields__)


def lane_seed(master_seed: int, index: int) -> int:
    """Derive a per-lane seed from the sweep master seed and lane index.

    Splitmix64-style finalizer: well-spread, stable across lane insertion
    (lane ``i`` always gets the same seed for a given master seed).
    """
    z = (master_seed * 0x9E3779B97F4A7C15 + (index + 1) * 0xBF58476D1CE4E5B9)
    z &= 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF


@dataclass
class ScenarioSpec:
    """One named scenario: overrides applied on top of the defaults.

    ``overrides`` maps :class:`SystemConfig` fields / pseudo-keys to
    values; :meth:`to_config` performs the expansion.
    """

    name: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None   #: overrides ``SystemConfig.seed`` when set

    def __post_init__(self) -> None:
        unknown = [k for k in self.overrides
                   if k not in _CONFIG_KEYS and k not in PSEUDO_KEYS
                   and not k.startswith("x_")]
        if unknown:
            raise ValueError(
                f"spec {self.name!r}: unknown override keys {unknown}; "
                f"valid keys are SystemConfig fields, {list(PSEUDO_KEYS)}, "
                f"and free-form 'x_*' extras")

    def to_config(self, trace: bool = False, **defaults: Any) -> SystemConfig:
        """Expand this spec into a :class:`SystemConfig`.

        ``defaults`` are config fields applied below the spec's own
        overrides (sweep-level base settings).

        Raises
        ------
        ValueError
            When overrides conflict: a pseudo-key and the config field it
            expands to are both given (``l_uh`` vs ``coil``, ``r_load``
            vs ``load``), or timing pseudo-keys (``pmin``/``nmin``/
            ``pext``/``phase_dwell``) appear next to an explicit
            ``params`` — resolving either silently would let dict order
            pick the winner (or drop the timing keys entirely).
        """
        for pseudo, target in (("l_uh", "coil"), ("r_load", "load")):
            if pseudo in self.overrides and target in self.overrides:
                raise ValueError(
                    f"spec {self.name!r}: conflicting overrides {pseudo!r} "
                    f"and {target!r} both set the {target!r} config field; "
                    f"give exactly one of them")
        fields: Dict[str, Any] = dict(defaults)
        params_kw: Dict[str, Any] = {}
        for key, value in self.overrides.items():
            if key.startswith("x_"):
                continue
            if key == "r_load":
                fields["load"] = LoadProfile.constant(value)
            elif key == "l_uh":
                fields["coil"] = make_coil(value * UH)
            elif key in PARAM_KEYS:
                params_kw[key] = value
            else:
                fields[key] = value
        if params_kw:
            if "params" in fields:
                where = ("override" if "params" in self.overrides
                         else "default")
                raise ValueError(
                    f"spec {self.name!r}: timing overrides "
                    f"{sorted(params_kw)} conflict with the explicit "
                    f"'params' {where}; set the constants on the "
                    f"BuckControlParams instead")
            fields["params"] = BuckControlParams(**params_kw)
        if self.seed is not None:
            fields["seed"] = self.seed
        fields.setdefault("trace", trace)
        return SystemConfig(**fields)


class Distribution:
    """A seeded random draw for :meth:`Sweep.random` axes."""

    def sample(self, rng: random.Random) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class uniform(Distribution):
    """Uniform draw in ``[lo, hi]``."""

    lo: float
    hi: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)


@dataclass(frozen=True)
class log_uniform(Distribution):
    """Log-uniform draw in ``[lo, hi]`` (both must be positive)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi <= 0:
            raise ValueError("log_uniform bounds must be positive")

    def sample(self, rng: random.Random) -> float:
        return math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))


@dataclass(frozen=True)
class choice(Distribution):
    """Uniform draw from a finite set of values."""

    values: Sequence[Any]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("choice needs at least one value")

    def sample(self, rng: random.Random) -> Any:
        return self.values[rng.randrange(len(self.values))]


class Sweep:
    """Declarative parameter-space builder.

    Examples
    --------
    A Fig. 7-style grid (all combinations, shared base seed)::

        specs = (Sweep(base={"sim_time": 10e-6}, seed=0)
                 .grid(controller=["sync", "async"], l_uh=[1.0, 4.7, 10.0])
                 .specs())

    A random tolerance study (per-lane derived seeds)::

        specs = (Sweep(seed=42)
                 .random(16, l_uh=log_uniform(1.0, 10.0),
                         r_load=uniform(3.0, 15.0))
                 .specs())
    """

    def __init__(self, base: Optional[Mapping[str, Any]] = None,
                 seed: int = 0, name: str = "sweep"):
        self.base: Dict[str, Any] = dict(base or {})
        self.seed = seed
        self.name = name
        self._blocks: List[List[ScenarioSpec]] = []
        # validate base keys eagerly (reuses ScenarioSpec's check)
        ScenarioSpec(name="base", overrides=dict(self.base))

    # ------------------------------------------------------------------
    def grid(self, **axes: Iterable[Any]) -> "Sweep":
        """Append the cartesian product of the given axes.

        Axis order follows keyword order; the product iterates the last
        axis fastest (like nested loops).  Chainable.
        """
        if not axes:
            raise ValueError("grid needs at least one axis")
        keys = list(axes)
        value_lists = [list(axes[k]) for k in keys]
        for vals in value_lists:
            if not vals:
                raise ValueError("grid axes cannot be empty")
        block: List[ScenarioSpec] = []
        for combo in itertools.product(*value_lists):
            overrides = dict(self.base)
            labels = []
            for k, v in zip(keys, combo):
                if (isinstance(v, tuple) and len(v) == 2
                        and isinstance(v[0], str) and isinstance(v[1], Mapping)):
                    overrides.update(v[1])
                    labels.append(f"{k}={v[0]}")
                elif isinstance(v, Mapping):
                    overrides.update(v)
                    labels.append(f"{k}={{{','.join(map(str, v))}}}")
                else:
                    overrides[k] = v
                    labels.append(f"{k}={_fmt(v)}")
            block.append(ScenarioSpec(name=f"{self.name}[{','.join(labels)}]",
                                      overrides=overrides))
        self._blocks.append(block)
        return self

    def random(self, n: int, **draws: Any) -> "Sweep":
        """Append ``n`` random points; each ``draws`` value is a
        :class:`Distribution` or a ``rng -> value`` callable.  Chainable.
        """
        if n < 1:
            raise ValueError("need at least one random point")
        if not draws:
            raise ValueError("random needs at least one drawn axis")
        offset = sum(len(b) for b in self._blocks)
        block: List[ScenarioSpec] = []
        for i in range(n):
            seed = lane_seed(self.seed, offset + i)
            rng = random.Random(seed)
            overrides = dict(self.base)
            for key in draws:   # keyword order, deterministic
                dist = draws[key]
                if isinstance(dist, Distribution):
                    overrides[key] = dist.sample(rng)
                elif callable(dist):
                    overrides[key] = dist(rng)
                else:
                    raise TypeError(
                        f"random axis {key!r} must be a Distribution or "
                        f"callable, got {type(dist).__name__}")
            block.append(ScenarioSpec(name=f"{self.name}[rand{offset + i}]",
                                      overrides=overrides, seed=seed))
        self._blocks.append(block)
        return self

    def point(self, name: Optional[str] = None, **overrides: Any) -> "Sweep":
        """Append a single explicit point.  Chainable."""
        merged = dict(self.base)
        merged.update(overrides)
        label = name or f"{self.name}[{len(self._blocks)}]"
        self._blocks.append([ScenarioSpec(name=label, overrides=merged)])
        return self

    def specs(self) -> List[ScenarioSpec]:
        """All points appended so far, in order."""
        if not self._blocks:
            return [ScenarioSpec(name=f"{self.name}[base]",
                                 overrides=dict(self.base))]
        return [spec for block in self._blocks for spec in block]

    def __len__(self) -> int:
        return sum(len(b) for b in self._blocks) or 1


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
