"""Vectorized analog solver: lock-step micro-stepping of N lanes.

:class:`VectorizedSolver` replaces N per-lane solver tick events (the hot
path of the scalar :class:`~repro.analog.solver.AnalogSolver`) with one
array step per ``dt``: advance the :class:`VectorizedPowerStage`, update
per-lane waveform statistics, and evaluate every lane's comparators as
one array comparison.  Only actual threshold crossings fall back to
per-lane Python work — the crossing instant is interpolated inside the
step (exactly like the scalar :class:`~repro.analog.sensors.Comparator`)
and the output edge is scheduled on *that lane's* discrete-event
simulator, where the lane's controller reacts through the ordinary
event-driven machinery.

Vectorized-vs-scalar caveats
----------------------------
- With noiseless sensors the arithmetic is operation-for-operation
  identical to the scalar path, so waveforms and comparator edge times
  agree to floating-point accuracy (enforced by the equivalence tests).
- With ``sensor_noise > 0`` the comparator jitter is drawn from a batch
  NumPy generator instead of each lane's ``Simulator.rng``: runs remain
  deterministic and per-lane reproducible, but the noise *realization*
  differs from the scalar path's.
- Events that land on the exact same timestamp as a solver micro-step
  are delivered before the array step, while the scalar kernel orders
  same-time events by scheduling sequence.  With the default sub-step
  sensor/gate delays the orderings coincide; pathological zero-delay
  configurations may reorder same-instant events between backends.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..analog.sensors import BuckReferences
from ..sim.core import Simulator
from ..sim.signal import Signal
from ..system import SystemConfig

#: fixed comparator column order: voltage monitors, then per-phase OC/ZC
#: (matches :meth:`repro.analog.sensors.SensorBank.all_comparators`)
V_COLS = 3  # hl, uv, ov


class _LaneComparatorView:
    """Controller-facing stand-in for one scalar ``Comparator``: just the
    output signal (plus the live threshold, for introspection)."""

    __slots__ = ("bank", "lane", "col", "output")

    def __init__(self, bank: "VectorComparatorBank", lane: int, col: int,
                 output: Signal):
        self.bank = bank
        self.lane = lane
        self.col = col
        self.output = output

    @property
    def threshold(self) -> float:
        return float(self.bank.threshold[self.lane, self.col])


class LaneSensors:
    """Per-lane sensor surface (hl/uv/ov/oc/zc + OV-mode swap), backed by
    the shared :class:`VectorComparatorBank` arrays.  Implements the
    contract of :class:`repro.analog.sensors.SensorBank` that both
    controllers consume (see :mod:`repro.control.params`)."""

    def __init__(self, bank: "VectorComparatorBank", lane: int):
        self._bank = bank
        self.lane = lane
        self.refs = bank.refs[lane]
        n_phases = bank.n_phases
        self.hl = bank.view(lane, 0)
        self.uv = bank.view(lane, 1)
        self.ov = bank.view(lane, 2)
        self.oc = [bank.view(lane, V_COLS + k) for k in range(n_phases)]
        self.zc = [bank.view(lane, V_COLS + n_phases + k)
                   for k in range(n_phases)]
        self._ov_mode = [False] * n_phases

    def set_ov_mode(self, phase_index: int, on: bool) -> None:
        """Swap phase ``phase_index``'s OC/ZC references for OV operation."""
        if self._ov_mode[phase_index] == on:
            return
        self._ov_mode[phase_index] = on
        r = self.refs
        bank, i = self._bank, self.lane
        bank.threshold[i, V_COLS + phase_index] = r.i_0 if on else r.i_max
        bank.threshold[i, V_COLS + bank.n_phases + phase_index] = \
            r.i_neg if on else r.i_0
        bank.mark_thresholds_dirty()

    def ov_mode(self, phase_index: int) -> bool:
        return self._ov_mode[phase_index]

    def all_comparators(self) -> List[_LaneComparatorView]:
        return [self.hl, self.uv, self.ov] + self.oc + self.zc


class VectorComparatorBank:
    """All comparators of all lanes as ``(N, C)`` arrays.

    ``C = 3 + 2 * n_phases`` columns: ``hl, uv, ov, oc_0..oc_{P-1},
    zc_0..zc_{P-1}``.  Thresholds, hysteresis, state, and previous samples
    live in arrays; output edges are scheduled on each lane's simulator
    with the scalar model's sub-step crossing interpolation.
    """

    def __init__(self, sims: Sequence[Simulator],
                 configs: Sequence[SystemConfig], n_phases: int):
        n = len(sims)
        c = V_COLS + 2 * n_phases
        self.sims = list(sims)
        self.n_lanes = n
        self.n_phases = n_phases
        self.n_cols = c
        self.refs: List[BuckReferences] = [
            cfg.refs or BuckReferences() for cfg in configs]

        self.threshold = np.empty((n, c))
        self.hysteresis = np.empty((n, c))
        #: polarity per column: output high while quantity above threshold
        self.dir_above = np.zeros(c, dtype=bool)
        self.dir_above[2] = True                      # ov
        self.dir_above[V_COLS:V_COLS + n_phases] = True   # oc
        for i, r in enumerate(self.refs):
            self.threshold[i, :V_COLS] = (r.v_min, r.v_ref, r.v_max)
            self.threshold[i, V_COLS:V_COLS + n_phases] = r.i_max
            self.threshold[i, V_COLS + n_phases:] = r.i_0
            self.hysteresis[i, :V_COLS] = r.v_hyst
            self.hysteresis[i, V_COLS:] = r.i_hyst

        self.delay = np.array([cfg.sensor_delay for cfg in configs])
        self.noise = np.array([cfg.sensor_noise for cfg in configs])
        # Per-lane noise generators, seeded from each lane's config seed:
        # a lane's jitter stream never depends on its batch neighbours.
        self._noise_lanes = [int(i) for i in np.nonzero(self.noise != 0.0)[0]]
        self._noise_rngs = {
            i: np.random.Generator(np.random.PCG64(configs[i].seed))
            for i in self._noise_lanes
        }

        self.state = np.zeros((n, c), dtype=bool)
        self._prev_t: Optional[float] = None
        # double-buffered sample matrices with pre-created views (column
        # blocks for the fill and the per-polarity comparisons)
        self._bufs = [np.empty((n, c)), np.empty((n, c))]
        p = n_phases
        self._buf_views = [
            (b, b[:, :V_COLS], b[:, V_COLS:V_COLS + p], b[:, V_COLS + p:],
             b[:, :2], b[:, 2:V_COLS + p])
            for b in self._bufs
        ]
        self._cur = 0
        self._prev_x = self._bufs[1]
        # hysteresis always widens the high region: the latched trip level
        # is threshold-hyst for ABOVE comparators, threshold+hyst for BELOW
        self._hyst_eff = np.where(self.dir_above[None, :],
                                  -self.hysteresis, self.hysteresis)
        self._level_on = self.threshold + self._hyst_eff
        # The scalar hold decision is non-strict (``x >= level`` for ABOVE,
        # ``x <= level`` for BELOW) while the trip decision is strict.  A
        # single strict comparison serves both by nudging the latched
        # level one ulp toward the held region: x >= L  <=>  x > pred(L).
        self._adj_dir = np.where(self.dir_above[None, :], -np.inf, np.inf)
        self._adj_on = np.nextafter(self._level_on, self._adj_dir)
        self._dirty = False
        # active strict-comparison level per comparator; maintained
        # incrementally (changes only on state flips and threshold swaps)
        self._level = self.threshold.copy()
        self._cmp = np.empty((n, c), dtype=bool)
        self._b2 = np.empty((n, c), dtype=bool)
        self._lvl_low = self._level[:, :2]
        self._lvl_abv = self._level[:, 2:V_COLS + p]
        self._lvl_zc = self._level[:, V_COLS + p:]
        self._cmp_low = self._cmp[:, :2]
        self._cmp_abv = self._cmp[:, 2:V_COLS + p]
        self._cmp_zc = self._cmp[:, V_COLS + p:]

        #: callback(lane_index, fire_time) invoked on every scheduled edge
        #: (the lock-step solver uses it to keep its event heap current)
        self.on_schedule = None

        names = (["hl", "uv", "ov"]
                 + [f"oc{k}" for k in range(n_phases)]
                 + [f"zc{k}" for k in range(n_phases)])
        self.outputs: List[List[Signal]] = [
            [Signal(sims[i], name, init=False, trace=configs[i].trace)
             for name in names]
            for i in range(n)
        ]
        self._views = {}

    def view(self, lane: int, col: int) -> _LaneComparatorView:
        key = (lane, col)
        if key not in self._views:
            self._views[key] = _LaneComparatorView(
                self, lane, col, self.outputs[lane][col])
        return self._views[key]

    def mark_thresholds_dirty(self) -> None:
        """Re-derive the cached trip levels after a threshold swap."""
        self._dirty = True

    # ------------------------------------------------------------------
    def sample(self, t: float, v_out: np.ndarray, currents: np.ndarray) -> None:
        """Evaluate every comparator at time ``t`` (one solver step)."""
        cur = self._cur
        x, xv, xoc, xzc, xlow, xabv = self._buf_views[cur]
        xv[:] = v_out[:, None]
        xoc[:] = currents
        xzc[:] = currents

        state = self.state
        if self._noise_lanes:
            th = self.threshold.copy()
            for i in self._noise_lanes:
                th[i] += (self.noise[i]
                          * self._noise_rngs[i].standard_normal(self.n_cols))
            # write through self._level so the block views stay coherent
            level = self._level
            np.copyto(level, th)
            np.copyto(level, np.nextafter(th + self._hyst_eff, self._adj_dir),
                      where=state)
        elif self._dirty:
            np.add(self.threshold, self._hyst_eff, out=self._level_on)
            np.nextafter(self._level_on, self._adj_dir, out=self._adj_on)
            level = self._level
            np.copyto(level, self.threshold)
            np.copyto(level, self._adj_on, where=state)
            self._dirty = False
        else:
            level = self._level
        # One strict comparison per polarity block decides trip AND hold
        # (held entries compare against the ulp-nudged level; the ABOVE
        # columns ov, oc_0..oc_{P-1} are contiguous by construction).
        cmp_ = self._cmp
        np.less(xlow, self._lvl_low, out=self._cmp_low)          # hl, uv
        np.greater(xabv, self._lvl_abv, out=self._cmp_abv)       # ov, oc
        np.less(xzc, self._lvl_zc, out=self._cmp_zc)             # zc
        new_state = cmp_

        changed = np.not_equal(new_state, state, out=self._b2)
        if changed.any():
            self._schedule_edges(t, x, new_state, changed)
            if not self._noise_lanes:
                adj_on, th_ = self._adj_on, self.threshold
                lvl = self._level
                for i, c in np.argwhere(changed):
                    lvl[i, c] = adj_on[i, c] if new_state[i, c] else th_[i, c]
            np.copyto(state, new_state)
        self._prev_x = x
        self._cur = 1 - cur
        self._prev_t = t

    def _schedule_edges(self, t: float, x: np.ndarray, new_state: np.ndarray,
                        changed: np.ndarray) -> None:
        prev_t = self._prev_t
        for i, c in np.argwhere(changed):
            xv = float(x[i, c])
            cross_t = t
            if prev_t is not None:
                prev_x = float(self._prev_x[i, c])
                if prev_x != xv:
                    # interpolate against the clean threshold, like the
                    # scalar comparator
                    frac = (float(self.threshold[i, c]) - prev_x) / (xv - prev_x)
                    if 0.0 <= frac <= 1.0:
                        cross_t = prev_t + frac * (t - prev_t)
            fire_at = max(t, cross_t + float(self.delay[i]))
            out = self.outputs[i][c]
            value = bool(new_state[i, c])
            self.sims[i].schedule_at(fire_at, lambda o=out, v=value: o._apply(v))
            if self.on_schedule is not None:
                self.on_schedule(int(i), fire_at)


@dataclass
class _TraceBuffers:
    times: list
    v: list        # per-step (N,) copies
    i: list        # per-step (N, P) copies


class VectorizedSolver:
    """Lock-step co-simulation driver for a batch of scenarios.

    Parameters
    ----------
    sims:
        One :class:`Simulator` per lane (each owns that lane's controller
        and gate-driver events).
    stage:
        The shared :class:`VectorizedPowerStage`.
    bank:
        The shared :class:`VectorComparatorBank` (may be ``None`` for
        open-loop integration).
    dt:
        Micro-step, identical for every lane (batching constraint).
    trace:
        Keep full waveforms (per-step ``(N,)`` voltage and ``(N, P)``
        current snapshots) in addition to the running statistics.
    """

    def __init__(self, sims: Sequence[Simulator], stage, bank, dt: float,
                 trace: bool = False):
        if dt <= 0:
            raise ValueError("solver step must be positive")
        self.sims = list(sims)
        self.stage = stage
        self.bank = bank
        self.dt = dt
        self.trace = trace
        n, p = stage.n_lanes, stage.n_phases
        self.v_max = np.full(n, -np.inf)
        self.v_min = np.full(n, np.inf)
        self.i_max = np.full((n, p), -np.inf)
        self.i_min = np.full((n, p), np.inf)
        self._buffers = _TraceBuffers([], [], []) if trace else None
        self.now = 0.0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Record the initial state and take the t=0 comparator sample."""
        if self._started:
            raise RuntimeError("solver already started")
        self._started = True
        self._record(self.now)
        if self.bank is not None:
            self.bank.sample(self.now, self.stage.v_out, self.stage.current)

    def advance_to(self, t_end: float) -> None:
        """Run all lanes in lock-step until ``t_end``.

        Tick times accumulate as repeated float additions of ``dt`` —
        matching the scalar solver's self-rescheduling — so the two
        backends execute the same number of micro-steps.
        """
        if not self._started:
            raise RuntimeError("call start() first")
        t = self.now
        dt = self.dt
        stage = self.stage
        bank = self.bank
        step = stage.step
        record = self._record
        sample = bank.sample if bank is not None else None
        sims = self.sims
        queues = [sim._queue for sim in sims]

        # Lazy min-heap of (next event time, lane): one comparison per tick
        # instead of a scan over every lane.  Entries may be stale (events
        # fire or get cancelled); each pop re-checks the lane's real queue.
        # Lanes only gain events while their own handlers run or when the
        # comparator bank schedules an edge — the on_schedule hook covers
        # the latter, the post-run re-push the former.
        heads = [(q[0][0], i) for i, q in enumerate(queues) if q]
        heapq.heapify(heads)
        push = heapq.heappush
        pop = heapq.heappop
        if bank is not None:
            bank.on_schedule = lambda lane, when: push(heads, (when, lane))
        try:
            while True:
                t_next = t + dt
                if t_next > t_end:
                    break
                while heads and heads[0][0] <= t_next:
                    _, lane = pop(heads)
                    q = queues[lane]
                    if q and q[0][0] <= t_next:
                        sims[lane].run_until(t_next)
                    if q:
                        push(heads, (q[0][0], lane))
                step(t, dt)
                record(t_next)
                if sample is not None:
                    sample(t_next, stage.v_out, stage.current)
                t = t_next
            self.now = t
            for sim in sims:
                sim.run_until(t_end)
        finally:
            if bank is not None:
                bank.on_schedule = None

    def _record(self, t: float) -> None:
        v, i = self.stage.v_out, self.stage.current
        np.maximum(self.v_max, v, out=self.v_max)
        np.minimum(self.v_min, v, out=self.v_min)
        np.maximum(self.i_max, i, out=self.i_max)
        np.minimum(self.i_min, i, out=self.i_min)
        if self._buffers is not None:
            self._buffers.times.append(t)
            self._buffers.v.append(v.copy())
            self._buffers.i.append(i.copy())

    # ------------------------------------------------------------------
    # Measurements (vector counterparts of AnalogSolver's helpers)
    # ------------------------------------------------------------------
    def peak_coil_current(self) -> np.ndarray:
        """Per-lane largest instantaneous |coil current| on any phase."""
        peak = np.maximum(np.abs(self.i_max), np.abs(self.i_min))
        return peak.max(axis=1)

    def ripple(self) -> np.ndarray:
        """Per-lane recorded V_out peak-to-peak (0 where nothing recorded)."""
        return np.where(self.v_max >= self.v_min, self.v_max - self.v_min, 0.0)

    def reset_measurements(self) -> None:
        """Restart the running statistics (e.g. after the startup
        transient); traced waveforms are preserved."""
        self.v_max.fill(-np.inf)
        self.v_min.fill(np.inf)
        self.i_max.fill(-np.inf)
        self.i_min.fill(np.inf)

    # ------------------------------------------------------------------
    # Traced waveforms
    # ------------------------------------------------------------------
    def waveform_times(self) -> np.ndarray:
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return np.array(self._buffers.times)

    def v_waveform(self, lane: int) -> np.ndarray:
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return np.array([row[lane] for row in self._buffers.v])

    def i_waveform(self, lane: int, phase: int) -> np.ndarray:
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return np.array([row[lane, phase] for row in self._buffers.i])
