"""Vectorized analog solver: lock-step micro-stepping of N lanes.

:class:`VectorizedSolver` replaces N per-lane solver tick events (the hot
path of the scalar :class:`~repro.analog.solver.AnalogSolver`) with one
array step per ``dt``: advance the :class:`VectorizedPowerStage`, update
per-lane waveform statistics, and evaluate every lane's comparators as
one array comparison.  Only actual threshold crossings fall back to
per-lane Python work — the crossing instant is interpolated inside the
step (exactly like the scalar :class:`~repro.analog.sensors.Comparator`)
and the output edge is scheduled on *that lane's* discrete-event
simulator, where the lane's controller reacts through the ordinary
event-driven machinery.

Vectorized-vs-scalar caveats
----------------------------
- With noiseless sensors the arithmetic is operation-for-operation
  identical to the scalar path, so waveforms and comparator edge times
  agree to floating-point accuracy (enforced by the equivalence tests).
- With ``sensor_noise > 0`` the comparator jitter is drawn from a batch
  NumPy generator instead of each lane's ``Simulator.rng``: runs remain
  deterministic and per-lane reproducible, but the noise *realization*
  differs from the scalar path's.
- Events that land on the exact same timestamp as a solver micro-step
  are delivered before the array step, while the scalar kernel orders
  same-time events by scheduling sequence.  With the default sub-step
  sensor/gate delays the orderings coincide; pathological zero-delay
  configurations may reorder same-instant events between backends.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence

import numpy as np

from ..analog.sensors import BuckReferences
from ..analog.stepping import GROWTH, SAFETY, SteppingPolicy
from ..sim.core import Simulator
from ..sim.signal import Signal
from ..system import SystemConfig
from ..trace import BatchTraceRecorder, TraceSet

#: fixed comparator column order: voltage monitors, then per-phase OC/ZC
#: (matches :meth:`repro.analog.sensors.SensorBank.all_comparators`)
V_COLS = 3  # hl, uv, ov


class _LaneComparatorView:
    """Controller-facing stand-in for one scalar ``Comparator``: just the
    output signal (plus the live threshold, for introspection)."""

    __slots__ = ("bank", "lane", "col", "output")

    def __init__(self, bank: "VectorComparatorBank", lane: int, col: int,
                 output: Signal):
        self.bank = bank
        self.lane = lane
        self.col = col
        self.output = output

    @property
    def threshold(self) -> float:
        return float(self.bank.threshold[self.lane, self.col])


class LaneSensors:
    """Per-lane sensor surface (hl/uv/ov/oc/zc + OV-mode swap), backed by
    the shared :class:`VectorComparatorBank` arrays.  Implements the
    contract of :class:`repro.analog.sensors.SensorBank` that both
    controllers consume (see :mod:`repro.control.params`)."""

    def __init__(self, bank: "VectorComparatorBank", lane: int):
        self._bank = bank
        self.lane = lane
        self.refs = bank.refs[lane]
        n_phases = bank.n_phases
        self.hl = bank.view(lane, 0)
        self.uv = bank.view(lane, 1)
        self.ov = bank.view(lane, 2)
        self.oc = [bank.view(lane, V_COLS + k) for k in range(n_phases)]
        self.zc = [bank.view(lane, V_COLS + n_phases + k)
                   for k in range(n_phases)]
        self._ov_mode = [False] * n_phases

    def set_ov_mode(self, phase_index: int, on: bool) -> None:
        """Swap phase ``phase_index``'s OC/ZC references for OV operation."""
        if self._ov_mode[phase_index] == on:
            return
        self._ov_mode[phase_index] = on
        r = self.refs
        bank, i = self._bank, self.lane
        bank.threshold[i, V_COLS + phase_index] = r.i_0 if on else r.i_max
        bank.threshold[i, V_COLS + bank.n_phases + phase_index] = \
            r.i_neg if on else r.i_0
        bank.mark_thresholds_dirty()

    def ov_mode(self, phase_index: int) -> bool:
        return self._ov_mode[phase_index]

    def all_comparators(self) -> List[_LaneComparatorView]:
        return [self.hl, self.uv, self.ov] + self.oc + self.zc


class VectorComparatorBank:
    """All comparators of all lanes as ``(N, C)`` arrays.

    ``C = 3 + 2 * n_phases`` columns: ``hl, uv, ov, oc_0..oc_{P-1},
    zc_0..zc_{P-1}``.  Thresholds, hysteresis, state, and previous samples
    live in arrays; output edges are scheduled on each lane's simulator
    with the scalar model's sub-step crossing interpolation.
    """

    def __init__(self, sims: Sequence[Simulator],
                 configs: Sequence[SystemConfig], n_phases: int):
        n = len(sims)
        c = V_COLS + 2 * n_phases
        self.sims = list(sims)
        self.n_lanes = n
        self.n_phases = n_phases
        self.n_cols = c
        self.refs: List[BuckReferences] = [
            cfg.refs or BuckReferences() for cfg in configs]

        self.threshold = np.empty((n, c))
        self.hysteresis = np.empty((n, c))
        #: polarity per column: output high while quantity above threshold
        self.dir_above = np.zeros(c, dtype=bool)
        self.dir_above[2] = True                      # ov
        self.dir_above[V_COLS:V_COLS + n_phases] = True   # oc
        for i, r in enumerate(self.refs):
            self.threshold[i, :V_COLS] = (r.v_min, r.v_ref, r.v_max)
            self.threshold[i, V_COLS:V_COLS + n_phases] = r.i_max
            self.threshold[i, V_COLS + n_phases:] = r.i_0
            self.hysteresis[i, :V_COLS] = r.v_hyst
            self.hysteresis[i, V_COLS:] = r.i_hyst

        self.delay = np.array([cfg.sensor_delay for cfg in configs])
        self.noise = np.array([cfg.sensor_noise for cfg in configs])
        # Per-lane noise generators, seeded from each lane's config seed:
        # a lane's jitter stream never depends on its batch neighbours.
        self._noise_lanes = [int(i) for i in np.nonzero(self.noise != 0.0)[0]]
        self._noise_rngs = {
            i: np.random.Generator(np.random.PCG64(configs[i].seed))
            for i in self._noise_lanes
        }

        self.state = np.zeros((n, c), dtype=bool)
        self._prev_t: Optional[float] = None
        # double-buffered sample matrices with pre-created views (column
        # blocks for the fill and the per-polarity comparisons)
        self._bufs = [np.empty((n, c)), np.empty((n, c))]
        p = n_phases
        self._buf_views = [
            (b, b[:, :V_COLS], b[:, V_COLS:V_COLS + p], b[:, V_COLS + p:],
             b[:, :2], b[:, 2:V_COLS + p])
            for b in self._bufs
        ]
        self._cur = 0
        self._prev_x = self._bufs[1]
        # hysteresis always widens the high region: the latched trip level
        # is threshold-hyst for ABOVE comparators, threshold+hyst for BELOW
        self._hyst_eff = np.where(self.dir_above[None, :],
                                  -self.hysteresis, self.hysteresis)
        self._level_on = self.threshold + self._hyst_eff
        # The scalar hold decision is non-strict (``x >= level`` for ABOVE,
        # ``x <= level`` for BELOW) while the trip decision is strict.  A
        # single strict comparison serves both by nudging the latched
        # level one ulp toward the held region: x >= L  <=>  x > pred(L).
        self._adj_dir = np.where(self.dir_above[None, :], -np.inf, np.inf)
        self._adj_on = np.nextafter(self._level_on, self._adj_dir)
        self._dirty = False
        # active strict-comparison level per comparator; maintained
        # incrementally (changes only on state flips and threshold swaps)
        self._level = self.threshold.copy()
        self._cmp = np.empty((n, c), dtype=bool)
        self._b2 = np.empty((n, c), dtype=bool)
        self._lvl_low = self._level[:, :2]
        self._lvl_abv = self._level[:, 2:V_COLS + p]
        self._lvl_zc = self._level[:, V_COLS + p:]
        self._cmp_low = self._cmp[:, :2]
        self._cmp_abv = self._cmp[:, 2:V_COLS + p]
        self._cmp_zc = self._cmp[:, V_COLS + p:]

        #: callback(lane_index, fire_time) invoked on every scheduled edge
        #: (the lock-step solver uses it to keep its event heap current)
        self.on_schedule = None

        names = (["hl", "uv", "ov"]
                 + [f"oc{k}" for k in range(n_phases)]
                 + [f"zc{k}" for k in range(n_phases)])
        self.outputs: List[List[Signal]] = [
            [Signal(sims[i], name, init=False, trace=configs[i].trace)
             for name in names]
            for i in range(n)
        ]
        self._views = {}

    def view(self, lane: int, col: int) -> _LaneComparatorView:
        key = (lane, col)
        if key not in self._views:
            self._views[key] = _LaneComparatorView(
                self, lane, col, self.outputs[lane][col])
        return self._views[key]

    def mark_thresholds_dirty(self) -> None:
        """Re-derive the cached trip levels after a threshold swap."""
        self._dirty = True

    def refresh_levels(self) -> None:
        """Rebuild the active strict-comparison levels (noiseless path;
        noisy lanes re-derive their levels on every sample instead)."""
        np.add(self.threshold, self._hyst_eff, out=self._level_on)
        np.nextafter(self._level_on, self._adj_dir, out=self._adj_on)
        level = self._level
        np.copyto(level, self.threshold)
        np.copyto(level, self._adj_on, where=self.state)
        self._dirty = False

    # ------------------------------------------------------------------
    def sample(self, t, v_out: np.ndarray, currents: np.ndarray,
               active: Optional[np.ndarray] = None) -> None:
        """Evaluate every comparator at time ``t`` (one solver step).

        ``t`` is a scalar in lock-step operation or an ``(N,)`` array of
        per-lane sample times (adaptive stepping).  ``active`` masks the
        lanes that actually advanced this iteration: inactive lanes are
        excluded from noise draws and edge detection, so a lane's jitter
        stream and edge history stay pure functions of its own steps.
        """
        cur = self._cur
        x, xv, xoc, xzc, xlow, xabv = self._buf_views[cur]
        xv[:] = v_out[:, None]
        xoc[:] = currents
        xzc[:] = currents

        state = self.state
        if self._noise_lanes:
            th = self.threshold.copy()
            for i in self._noise_lanes:
                if active is not None and not active[i]:
                    continue
                th[i] += (self.noise[i]
                          * self._noise_rngs[i].standard_normal(self.n_cols))
            # write through self._level so the block views stay coherent
            level = self._level
            np.copyto(level, th)
            np.copyto(level, np.nextafter(th + self._hyst_eff, self._adj_dir),
                      where=state)
        elif self._dirty:
            self.refresh_levels()
            level = self._level
        else:
            level = self._level
        # One strict comparison per polarity block decides trip AND hold
        # (held entries compare against the ulp-nudged level; the ABOVE
        # columns ov, oc_0..oc_{P-1} are contiguous by construction).
        cmp_ = self._cmp
        np.less(xlow, self._lvl_low, out=self._cmp_low)          # hl, uv
        np.greater(xabv, self._lvl_abv, out=self._cmp_abv)       # ov, oc
        np.less(xzc, self._lvl_zc, out=self._cmp_zc)             # zc
        new_state = cmp_

        changed = np.not_equal(new_state, state, out=self._b2)
        if active is not None:
            np.logical_and(changed, active[:, None], out=changed)
        if changed.any():
            self._schedule_edges(t, x, new_state, changed)
            if not self._noise_lanes:
                adj_on, th_ = self._adj_on, self.threshold
                lvl = self._level
                for i, c in np.argwhere(changed):
                    lvl[i, c] = adj_on[i, c] if new_state[i, c] else th_[i, c]
            np.copyto(state, new_state, where=changed)
        self._prev_x = x
        self._cur = 1 - cur
        self._prev_t = np.array(t, copy=True) if np.ndim(t) else t

    def _schedule_edges(self, t, x: np.ndarray, new_state: np.ndarray,
                        changed: np.ndarray) -> None:
        prev_t = self._prev_t
        t_arr = np.ndim(t) != 0
        for i, c in np.argwhere(changed):
            t_i = float(t[i]) if t_arr else t
            xv = float(x[i, c])
            cross_t = t_i
            if prev_t is not None:
                prev_ti = (float(prev_t[i]) if np.ndim(prev_t) else prev_t)
                prev_x = float(self._prev_x[i, c])
                if prev_x != xv:
                    # interpolate against the clean threshold, like the
                    # scalar comparator
                    frac = (float(self.threshold[i, c]) - prev_x) / (xv - prev_x)
                    if 0.0 <= frac <= 1.0:
                        cross_t = prev_ti + frac * (t_i - prev_ti)
            fire_at = max(t_i, cross_t + float(self.delay[i]))
            out = self.outputs[i][c]
            value = bool(new_state[i, c])
            self.sims[i].schedule_at(fire_at, lambda o=out, v=value: o._apply(v))
            if self.on_schedule is not None:
                self.on_schedule(int(i), fire_at)


class VectorizedSolver:
    """Lock-step co-simulation driver for a batch of scenarios.

    Parameters
    ----------
    sims:
        One :class:`Simulator` per lane (each owns that lane's controller
        and gate-driver events).
    stage:
        The shared :class:`VectorizedPowerStage`.
    bank:
        The shared :class:`VectorComparatorBank` (may be ``None`` for
        open-loop integration).
    dt:
        Micro-step, identical for every lane (batching constraint).
    trace:
        Keep full waveforms (per-step ``(N,)`` voltage and ``(N, P)``
        current snapshots) in addition to the running statistics.
    policy:
        The :class:`~repro.analog.stepping.SteppingPolicy`; ``None``
        means fixed stepping at ``dt``.  In adaptive mode every lane
        advances on its **own** error-controlled step grid (one array
        step per iteration with a per-lane ``dt`` vector): each lane's
        step sequence is a pure function of that lane's state, never of
        its batch neighbours, which keeps results bit-identical across
        batch compositions — and therefore across the inline, sharded,
        and cached execution paths.
    """

    def __init__(self, sims: Sequence[Simulator], stage, bank, dt: float,
                 trace: bool = False,
                 policy: Optional[SteppingPolicy] = None):
        if dt <= 0:
            raise ValueError("solver step must be positive")
        self.sims = list(sims)
        self.stage = stage
        self.bank = bank
        self.dt = dt
        self.trace = trace
        self.policy = policy if policy is not None else SteppingPolicy.fixed(dt)
        n, p = stage.n_lanes, stage.n_phases
        self.v_max = np.full(n, -np.inf)
        self.v_min = np.full(n, np.inf)
        self.i_max = np.full((n, p), -np.inf)
        self.i_min = np.full((n, p), np.inf)
        #: per-lane committed micro-step counts
        self.tick_counts = np.zeros(n, dtype=np.int64)
        self._buffers = BatchTraceRecorder(n, p) if trace else None
        self.now = 0.0
        self._started = False
        #: fused fixed-grid tick (built on first advance_to; see
        #: :mod:`repro.scenarios.fastpath`)
        self._tick_fixed = None
        if self.policy.adaptive:
            pol = self.policy
            self._prop = np.full(n, min(max(dt, pol.dt_min), pol.dt_max))
            self._lane_t = np.zeros(n)
            self._commutes: List[List[float]] = [[] for _ in range(n)]
            self._t_tgt: Optional[np.ndarray] = None
            delays = (bank.delay if bank is not None else np.full(n, dt))
            self._guards = np.where(delays > 0,
                                    np.minimum(dt, delays), dt)
            self._err_i = np.empty(n)
            self._err_v = np.empty(n)
            self._didt = np.empty((n, p))
            self._dvdt = np.empty(n)
            if bank is not None:
                c = bank.n_cols
                self._xq = np.empty((n, c))
                self._sq = np.empty((n, c))

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Record the initial state and take the t=0 comparator sample."""
        if self._started:
            raise RuntimeError("solver already started")
        self._started = True
        self._record(self.now)
        if self.bank is not None:
            self.bank.sample(self.now, self.stage.v_out, self.stage.current)
        if self.policy.adaptive:
            self._lane_t.fill(self.now)

    def advance_to(self, t_end: float) -> None:
        """Run all lanes until ``t_end`` (lock-step fixed grid, or each
        lane's own adaptive grid)."""
        if not self._started:
            raise RuntimeError("call start() first")
        if self.policy.adaptive:
            self._advance_adaptive(t_end)
            return
        t = self.now
        dt = self.dt
        bank = self.bank
        if self._tick_fixed is None:
            from .fastpath import make_fixed_tick
            self._tick_fixed = make_fixed_tick(self)
        tick = self._tick_fixed
        sims = self.sims
        queues = [sim._queue for sim in sims]

        # Lazy min-heap of (next event time, lane): one comparison per tick
        # instead of a scan over every lane.  Entries may be stale (events
        # fire or get cancelled); each pop re-checks the lane's real queue.
        # Lanes only gain events while their own handlers run or when the
        # comparator bank schedules an edge — the on_schedule hook covers
        # the latter, the post-run re-push the former.
        heads = [(q[0][0], i) for i, q in enumerate(queues) if q]
        heapq.heapify(heads)
        push = heapq.heappush
        pop = heapq.heappop
        if bank is not None:
            bank.on_schedule = lambda lane, when: push(heads, (when, lane))
        ticks = 0
        try:
            while True:
                t_next = t + dt
                if t_next > t_end:
                    break
                while heads and heads[0][0] <= t_next:
                    _, lane = pop(heads)
                    q = queues[lane]
                    if q and q[0][0] <= t_next:
                        sims[lane].run_until(t_next)
                    if q:
                        push(heads, (q[0][0], lane))
                tick(t, t_next)
                ticks += 1
                t = t_next
            self.now = t
            for sim in sims:
                sim.run_until(t_end)
        finally:
            self.tick_counts += ticks
            if bank is not None:
                bank.on_schedule = None

    # ------------------------------------------------------------------
    # Adaptive stepping (per-lane error-controlled grids)
    # ------------------------------------------------------------------
    def _advance_adaptive(self, t_end: float) -> None:
        """Advance every lane to ``t_end`` on its own adaptive grid.

        Each iteration plans a per-lane step end (error-controlled
        proposal, capped by predicted comparator crossings and snapped
        onto commutations and load breakpoints), delivers each lane's
        digital events strictly before its step end — one at a time, so
        a commutation scheduled by a cascade can still shrink the end —
        then commits one array step with the per-lane ``dt`` vector,
        samples the comparator bank, and fires the events sitting
        exactly on the boundary.  The ordering mirrors the scalar
        adaptive solver: commit (priority -1) before same-instant
        events, planning (priority +1) after them.
        """
        policy = self.policy
        stage, bank = self.stage, self.bank
        sims = self.sims
        n = stage.n_lanes
        queues = [sim._queue for sim in sims]
        guards = self._guards
        t = self._lane_t
        prop = self._prop
        dt_min, dt_max = policy.dt_min, policy.dt_max
        half_g = 0.5 * guards
        while (t < t_end).any():
            # ---- plan: per-lane step ends --------------------------------
            caps = self._crossing_caps(t)
            h = np.where(caps < prop,
                         np.where(caps > half_g, caps + half_g, guards),
                         prop)
            t_tgt = t + h
            np.minimum(t_tgt, t_end, out=t_tgt)
            nb = stage.next_load_change(t)
            np.copyto(t_tgt, nb, where=nb < t_tgt)
            for i in range(n):
                ch = self._commutes[i]
                ti = t[i]
                while ch and ch[0] <= ti:
                    heapq.heappop(ch)
                if ch and ch[0] < t_tgt[i]:
                    if ch[0] - ti >= guards[i]:
                        t_tgt[i] = ch[0]
                    elif ti + guards[i] < t_tgt[i]:
                        t_tgt[i] = ti + guards[i]
            self._t_tgt = t_tgt
            # ---- deliver events strictly before each lane's end ----------
            # (one at a time: a cascade may schedule a commutation that
            # shrinks this lane's t_tgt through note_commutation)
            for i in range(n):
                if queues[i] and queues[i][0][0] < t_tgt[i]:
                    sim = sims[i]
                    while sim.run_one_before(t_tgt[i]):
                        pass
            # ---- commit one array step with the per-lane dt vector -------
            h_arr = t_tgt - t
            active = h_arr > 0.0
            stage.step(t, h_arr, err_i_out=self._err_i,
                       err_v_out=self._err_v)
            self.tick_counts += active
            self._record(t_tgt)
            if bank is not None:
                bank.sample(t_tgt, stage.v_out, stage.current, active=active)
            # ---- boundary events (flips snapped onto step ends) ----------
            for i in range(n):
                if active[i]:
                    sims[i].run_until(t_tgt[i])
            # ---- error-controlled proposals for the next step ------------
            with np.errstate(divide="ignore", invalid="ignore"):
                i_mag = np.abs(stage.current).max(axis=1)
                scale_i = policy.atol_i + policy.rtol * i_mag
                scale_v = policy.atol_v + policy.rtol * np.abs(stage.v_out)
                en = np.maximum(self._err_i / scale_i, self._err_v / scale_v)
                raw = np.where(en > 0.0, SAFETY * h_arr / np.sqrt(en), dt_max)
            p_new = np.maximum(
                np.minimum(np.minimum(raw, GROWTH * prop), dt_max), dt_min)
            np.copyto(prop, p_new, where=active)
            np.copyto(t, t_tgt)
        self._t_tgt = None
        self.now = t_end
        for sim in sims:
            sim.run_until(t_end)

    def _crossing_caps(self, t: np.ndarray) -> np.ndarray:
        """Per-lane earliest predicted comparator crossing (or body-diode
        clamp), in seconds from each lane's ``t``, from the analytic ODE
        slopes at the current state — the vector twin of the scalar
        solver's ``_crossing_cap``."""
        stage, bank = self.stage, self.bank
        didt, dvdt = self._didt, self._dvdt
        stage._derivatives(t, stage.current, stage.v_out, didt, dvdt)
        if bank is None:
            return np.full(stage.n_lanes, np.inf)
        p = stage.n_phases
        lvl = np.where(bank.state, bank.threshold + bank._hyst_eff,
                       bank.threshold)
        xq, sq = self._xq, self._sq
        xq[:, :V_COLS] = stage.v_out[:, None]
        xq[:, V_COLS:V_COLS + p] = stage.current
        xq[:, V_COLS + p:] = stage.current
        sq[:, :V_COLS] = dvdt[:, None]
        sq[:, V_COLS:V_COLS + p] = didt
        sq[:, V_COLS + p:] = didt
        with np.errstate(divide="ignore", invalid="ignore"):
            th = (lvl - xq) / sq
            valid = (sq != 0.0) & (th > 0.0)
            caps = np.where(valid, th, np.inf).min(axis=1)
            # freewheeling decay: the body-diode clamp at exactly zero
            tz = (0.0 - stage.current) / didt
            vz = (stage._off_b & (stage.current != 0.0) & (didt != 0.0)
                  & (tz > 0.0))
            np.minimum(caps, np.where(vz, tz, np.inf).min(axis=1), out=caps)
        return caps

    def lane_crossing_bound(self, lane: int) -> float:
        """One lane's clock-gating bound: seconds from the lane's current
        event time until the earliest predicted comparator flip (inf when
        nothing is in sight) — the per-lane twin of the scalar solver's
        :meth:`~repro.analog.solver.AnalogSolver.crossing_bound`.

        Pure scalar Python over the shared arrays (called per awake FSM
        edge, for one lane — an array pass over all lanes would cost
        more).  Like the scalar bound it excludes the body-diode clamp
        (not a comparator, produces no controller-visible edge) and, as a
        profitability hint, the soft-saturation derating.
        """
        bank = self.bank
        if bank is None:
            return math.inf
        stage = self.stage
        p = stage.n_phases
        cur = stage.current
        pmos, nmos = stage.pmos_on, stage.nmos_on
        v = float(stage.v_out[lane])
        total_i = 0.0
        didt = []
        for k in range(p):
            i = float(cur[lane, k])
            total_i += i
            if pmos[lane, k]:
                drive = (float(stage._vin_col[lane, k])
                         + i * float(stage._n_dcr_rp[lane, k]))
            elif nmos[lane, k]:
                drive = i * float(stage._n_dcr_rn[lane, k])
            elif i != 0.0:
                diode = (float(stage._vin_pvd[lane, k]) if i < 0.0
                         else float(stage._nvd[lane, k]))
                drive = diode + i * float(stage._n_dcr[lane, k])
            else:
                didt.append(0.0)
                continue
            didt.append((drive - v) / float(stage.inductance[lane, k]))
        r = float(stage.loads[lane].resistance(self.sims[lane].now))
        dvdt = (total_i - v / r) / float(stage.c_out[lane])

        threshold, state, hyst = bank.threshold, bank.state, bank._hyst_eff
        cap = math.inf
        for c in range(bank.n_cols):
            level = float(threshold[lane, c])
            if state[lane, c]:
                level += float(hyst[lane, c])
            if c < V_COLS:
                x, slope = v, dvdt
            else:
                x = float(cur[lane, (c - V_COLS) % p])
                slope = didt[(c - V_COLS) % p]
            if slope != 0.0:
                t_hit = (level - x) / slope
                if 0.0 < t_hit < cap:
                    cap = t_hit
        return cap

    def note_commutation(self, lane: int, when: float) -> None:
        """Gate-driver hook: lane ``lane`` scheduled a transistor flip.

        Same window rule as the scalar solver: a flip at least a guard
        past the lane's step start snaps the step end exactly onto it;
        a closer flip bounds the end at start + guard (fixed-grade
        retroactivity), coalescing dense flip bursts into one tick.
        """
        sim = self.sims[lane]
        if when <= sim.now:
            return
        heapq.heappush(self._commutes[lane], when)
        tgt = self._t_tgt
        if tgt is None:
            return
        t0 = self._lane_t[lane]
        guard = self._guards[lane]
        target = when if when - t0 >= guard else t0 + guard
        if sim.now < target < tgt[lane]:
            tgt[lane] = target

    def _record(self, t) -> None:
        v, i = self.stage.v_out, self.stage.current
        np.maximum(self.v_max, v, out=self.v_max)
        np.minimum(self.v_min, v, out=self.v_min)
        np.maximum(self.i_max, i, out=self.i_max)
        np.minimum(self.i_min, i, out=self.i_min)
        if self._buffers is not None:
            self._buffers.append(t, v, i)

    # ------------------------------------------------------------------
    # Measurements (vector counterparts of AnalogSolver's helpers)
    # ------------------------------------------------------------------
    def peak_coil_current(self) -> np.ndarray:
        """Per-lane largest instantaneous |coil current| on any phase."""
        peak = np.maximum(np.abs(self.i_max), np.abs(self.i_min))
        return peak.max(axis=1)

    def ripple(self) -> np.ndarray:
        """Per-lane recorded V_out peak-to-peak (0 where nothing recorded)."""
        return np.where(self.v_max >= self.v_min, self.v_max - self.v_min, 0.0)

    def reset_measurements(self) -> None:
        """Restart the running statistics (e.g. after the startup
        transient); traced waveforms are preserved."""
        self.v_max.fill(-np.inf)
        self.v_min.fill(np.inf)
        self.i_max.fill(-np.inf)
        self.i_min.fill(np.inf)

    # ------------------------------------------------------------------
    # Traced waveforms
    # ------------------------------------------------------------------
    def waveform_times(self, lane: int = 0) -> np.ndarray:
        """Raw sample times: one shared grid in fixed mode; each lane's
        own grid in adaptive mode (pass the lane index; a lane that
        idled while stragglers caught up repeats its last boundary —
        :meth:`trace_set` compacts those rows away)."""
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return self._buffers.lane_times(lane)

    def v_waveform(self, lane: int) -> np.ndarray:
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return self._buffers.lane_v(lane)

    def i_waveform(self, lane: int, phase: int) -> np.ndarray:
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return self._buffers.lane_i(lane, phase)

    def trace_set(self, lane: int, compact: bool = True) -> TraceSet:
        """One lane's analog waveforms as a columnar
        :class:`~repro.trace.TraceSet`.

        Adaptive batches record a duplicate row for every lane that
        idled (zero-width step) while batch stragglers advanced;
        ``compact=True`` (the default) drops them, so the lane's trace
        equals the one the scalar adaptive solver records.  Pass
        ``compact=False`` for the raw rows (the trace memory benchmark
        measures the compaction win against them).
        """
        if self._buffers is None:
            raise ValueError("solver ran with trace=False")
        return self._buffers.lane_trace_set(lane, compact=compact)
