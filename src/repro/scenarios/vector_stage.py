"""Vectorized multiphase buck power stage: N scenarios in lock-step.

:class:`VectorizedPowerStage` holds the analog state of N independent
buck converters (lanes) as NumPy arrays of shape ``(N,)`` / ``(N, P)``
and advances *all* of them with one RK2 step of array operations —
replacing N sequential :meth:`repro.analog.buck.MultiphasePowerStage.step`
calls with O(1) Python work per micro-step.

The arithmetic mirrors the scalar model operation-for-operation (same
RK2 form, same body-diode clamp, same soft-saturation derating, same
trapezoidal energy bookkeeping), so with noiseless sensors the vectorized
path reproduces the scalar solver's waveforms to floating-point-level
accuracy (see ``tests/scenarios/test_equivalence.py``).  Two
implementation tricks keep the per-step cost flat:

- the piecewise switch-state coefficients (``v_drive = A + B*i``) are
  recomputed only when a gate driver commutates (dirty flag), not on
  every step;
- all intermediates live in preallocated scratch buffers and use
  ``out=`` ufunc forms, so a step performs no allocations on the fast
  path (soft saturation, when active, takes a slower allocating branch).

Each lane's discrete-event side (controller, gate drivers) talks to the
arrays through :class:`LanePhase` / :class:`LaneStage` views, which
present the same interface as :class:`~repro.analog.buck.BuckPhase` /
:class:`~repro.analog.buck.MultiphasePowerStage` — including the
short-circuit safety rule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..analog.buck import BuckPhase, ShortCircuitError
from ..analog.coil import make_coil
from ..analog.load import LoadProfile
from ..system import SystemConfig


class LanePhase:
    """View of one lane's phase ``k``: the gate-driver-facing surface of
    :class:`~repro.analog.buck.BuckPhase`, backed by the shared arrays."""

    __slots__ = ("stage", "lane", "index")

    def __init__(self, stage: "VectorizedPowerStage", lane: int, index: int):
        self.stage = stage
        self.lane = lane
        self.index = index

    @property
    def current(self) -> float:
        return float(self.stage.current[self.lane, self.index])

    @property
    def pmos_on(self) -> bool:
        return bool(self.stage.pmos_on[self.lane, self.index])

    @property
    def nmos_on(self) -> bool:
        return bool(self.stage.nmos_on[self.lane, self.index])

    def set_pmos(self, on: bool) -> None:
        st, i, k = self.stage, self.lane, self.index
        if on and st.nmos_on[i, k]:
            raise ShortCircuitError(
                f"lane {i} phase {k}: PMOS turned ON while NMOS conducts")
        if bool(on) != bool(st.pmos_on[i, k]):
            st.switch_count[i, k] += 1
        st.pmos_on[i, k] = on
        st._update_switch_entry(i, k)

    def set_nmos(self, on: bool) -> None:
        st, i, k = self.stage, self.lane, self.index
        if on and st.pmos_on[i, k]:
            raise ShortCircuitError(
                f"lane {i} phase {k}: NMOS turned ON while PMOS conducts")
        if bool(on) != bool(st.nmos_on[i, k]):
            st.switch_count[i, k] += 1
        st.nmos_on[i, k] = on
        st._update_switch_entry(i, k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sw = "P" if self.pmos_on else ("N" if self.nmos_on else "-")
        return (f"LanePhase(lane={self.lane}, k={self.index}, "
                f"i={self.current:.4f}A, sw={sw})")


class LaneStage:
    """Per-lane stage view (a :class:`MultiphasePowerStage` look-alike)."""

    __slots__ = ("stage", "lane", "phases")

    def __init__(self, stage: "VectorizedPowerStage", lane: int):
        self.stage = stage
        self.lane = lane
        self.phases: List[LanePhase] = [
            LanePhase(stage, lane, k) for k in range(stage.n_phases)]

    @property
    def v_out(self) -> float:
        return float(self.stage.v_out[self.lane])

    @property
    def v_in(self) -> float:
        return float(self.stage.v_in[self.lane])

    @property
    def n_phases(self) -> int:
        return self.stage.n_phases

    def total_current(self) -> float:
        return float(self.stage.current[self.lane].sum())

    def coil_losses_j(self) -> float:
        return float(self.stage.coil_loss_j[self.lane].sum())

    def efficiency(self) -> float:
        e_in = float(self.stage.energy_in_j[self.lane])
        if e_in <= 0:
            return 0.0
        return float(self.stage.energy_out_j[self.lane]) / e_in


class VectorizedPowerStage:
    """N-lane buck power stage advanced by lock-step array RK2 steps.

    Built from per-lane :class:`SystemConfig` objects; lanes may differ in
    coil, input rail, output capacitance, load profile, and initial
    voltage, but must share the phase count (batching constraint).

    ``track_energy=False`` skips the per-step energy/loss accumulation
    (roughly a third of the step's array work).  Energy bookkeeping never
    feeds back into the dynamics, so waveforms and comparator edges are
    unaffected — but lane ``coil_loss_w`` / ``efficiency`` read as zero.
    Use it for peak-current sweeps that don't report losses.
    """

    def __init__(self, configs: Sequence[SystemConfig],
                 track_energy: bool = True):
        self.track_energy = track_energy
        if not configs:
            raise ValueError("need at least one lane")
        n_phases = configs[0].n_phases
        if any(c.n_phases != n_phases for c in configs):
            raise ValueError("all lanes in a batch must share n_phases")
        n = len(configs)
        self.n_lanes = n
        self.n_phases = n_phases

        self.v_in = np.array([c.v_in for c in configs], dtype=np.float64)
        self.c_out = np.array([c.c_out for c in configs], dtype=np.float64)
        self.v_out = np.array([c.v_out0 for c in configs], dtype=np.float64)

        # Per-lane coil/transistor parameters, broadcast over phases (the
        # scalar factory uses identical coils in every phase; tolerance
        # studies can still vary them per lane).
        coils = [c.coil or make_coil(c.inductance) for c in configs]
        ref = BuckPhase(0, coils[0])   # transistor parameter defaults
        ones = np.ones((1, n_phases))
        self.inductance = np.array([co.inductance for co in coils])[:, None] * ones
        self.dcr = np.array([co.dcr for co in coils])[:, None] * ones
        self.i_sat = np.array([co.i_sat for co in coils])[:, None] * ones
        self.r_pmos = np.full((n, n_phases), ref.r_pmos)
        self.r_nmos = np.full((n, n_phases), ref.r_nmos)
        self.v_diode = np.full((n, n_phases), ref.v_diode)

        self.current = np.zeros((n, n_phases))
        self.pmos_on = np.zeros((n, n_phases), dtype=bool)
        self.nmos_on = np.zeros((n, n_phases), dtype=bool)
        self.switch_count = np.zeros((n, n_phases), dtype=np.int64)
        self.coil_loss_j = np.zeros((n, n_phases))
        self.energy_in_j = np.zeros(n)
        self.energy_out_j = np.zeros(n)

        self.loads: List[LoadProfile] = [
            c.load or LoadProfile.constant(6.0) for c in configs]
        self._build_load_tables()
        self._alloc_scratch()
        self._refresh_switch()
        self.lanes: List[LaneStage] = [LaneStage(self, i) for i in range(n)]

    # ------------------------------------------------------------------
    # Load lookup
    # ------------------------------------------------------------------
    def _build_load_tables(self) -> None:
        s_max = max(len(load._times) for load in self.loads)
        n = self.n_lanes
        self._load_times = np.full((n, s_max), np.inf)
        self._load_values = np.ones((n, s_max))
        for i, load in enumerate(self.loads):
            s = len(load._times)
            self._load_times[i, :s] = load._times
            self._load_values[i, :s] = load._values
            self._load_values[i, s:] = load._values[-1]
        self._load_constant = s_max == 1
        self._r_const = np.ascontiguousarray(self._load_values[:, 0])
        self._lane_idx = np.arange(n)

    def resistance(self, t) -> np.ndarray:
        """Per-lane load resistance at time ``t`` (scalar-model semantics:
        piecewise-constant, clamped before t=0).  ``t`` is a scalar in
        lock-step operation or an ``(N,)`` array of per-lane times when
        the adaptive stepper advances lanes on their own step grids."""
        if self._load_constant:
            return self._r_const
        if np.ndim(t) == 0:
            idx = (self._load_times <= t).sum(axis=1) - 1
        else:
            idx = (self._load_times <= t[:, None]).sum(axis=1) - 1
        np.maximum(idx, 0, out=idx)
        return self._load_values[self._lane_idx, idx]

    def next_load_change(self, t: np.ndarray) -> np.ndarray:
        """Per-lane time of the first load breakpoint strictly after each
        lane's ``t`` (``inf`` where the load never changes again)."""
        if self._load_constant:
            return np.full(self.n_lanes, np.inf)
        idx = (self._load_times <= t[:, None]).sum(axis=1)
        idx = np.minimum(idx, self._load_times.shape[1] - 1)
        nxt = self._load_times[self._lane_idx, idx]
        return np.where(nxt > t, nxt, np.inf)

    # ------------------------------------------------------------------
    # Precomputed coefficients and scratch buffers
    # ------------------------------------------------------------------
    def _alloc_scratch(self) -> None:
        n, p = self.n_lanes, self.n_phases
        shape = (n, p)
        vin_col = self.v_in[:, None]
        # constants of the piecewise drive model
        self._vin_col = vin_col * np.ones((1, p))
        self._vin_half = 0.5 * self.v_in[:, None]        # for input energy
        self._vin_pvd = self._vin_col + self.v_diode     # PMOS body diode
        self._nvd = -self.v_diode                        # NMOS body diode
        self._n_dcr = -self.dcr
        self._n_dcr_rp = -(self.dcr + self.r_pmos)
        self._n_dcr_rn = -(self.dcr + self.r_nmos)
        # switch-state dependent coefficients (refreshed on commutation)
        self._A = np.zeros(shape)
        self._B = np.zeros(shape)
        self._pmos_f = np.zeros(shape)
        self._cond_f = np.zeros(shape)
        self._off_f = np.zeros(shape)
        self._off_b = np.ones(shape, dtype=bool)
        # scratch
        self._i_sat_min = float(self.i_sat.min())
        self._f1 = np.empty(shape)
        self._f2 = np.empty(shape)
        self._f3 = np.empty(shape)
        self._f3_flat = self._f3.reshape(-1)
        self._b1 = np.empty(shape, dtype=bool)
        self._b2 = np.empty(shape, dtype=bool)
        self._b3 = np.empty(shape, dtype=bool)
        self._k1_i = np.empty(shape)
        self._k2_i = np.empty(shape)
        self._mid_i = np.empty(shape)
        self._next_i = np.empty(shape)
        self._k1_v = np.empty(n)
        self._k2_v = np.empty(n)
        self._mid_v = np.empty(n)
        self._next_v = np.empty(n)
        self._n1 = np.empty(n)
        self._n2 = np.empty(n)

    def _refresh_switch(self) -> None:
        """Rebuild all conduction-path coefficients (initialisation)."""
        pmos, nmos = self.pmos_on, self.nmos_on
        np.logical_or(pmos, nmos, out=self._b1)
        np.logical_not(self._b1, out=self._off_b)
        self._pmos_f[:] = pmos
        self._cond_f[:] = self._b1
        self._off_f[:] = self._off_b
        # conducting phases: v_drive = A + B*i  (exactly the scalar forms:
        # PMOS v_in - i*(dcr+r_p); NMOS -i*(dcr+r_n); body diode -i*dcr
        # plus the sign-dependent diode drop added per step)
        self._A[:] = np.where(pmos, self._vin_col, 0.0)
        self._B[:] = np.where(pmos, self._n_dcr_rp,
                              np.where(nmos, self._n_dcr_rn, self._n_dcr))

    def _update_switch_entry(self, i: int, k: int) -> None:
        """Refresh one lane-phase's coefficients after a commutation."""
        p = bool(self.pmos_on[i, k])
        nm = bool(self.nmos_on[i, k])
        cond = p or nm
        self._off_b[i, k] = not cond
        self._off_f[i, k] = 0.0 if cond else 1.0
        self._cond_f[i, k] = 1.0 if cond else 0.0
        self._pmos_f[i, k] = 1.0 if p else 0.0
        self._A[i, k] = self._vin_col[i, k] if p else 0.0
        if p:
            self._B[i, k] = self._n_dcr_rp[i, k]
        elif nm:
            self._B[i, k] = self._n_dcr_rn[i, k]
        else:
            self._B[i, k] = self._n_dcr[i, k]

    # ------------------------------------------------------------------
    # Dynamics (mirrors MultiphasePowerStage step-for-step)
    # ------------------------------------------------------------------
    def _derivatives(self, t: float, i: np.ndarray, v: np.ndarray,
                     didt_out: np.ndarray, dvdt_out: np.ndarray,
                     _gt=np.greater, _lt=np.less, _mul=np.multiply,
                     _add=np.add, _sub=np.subtract, _div=np.divide,
                     _abs=np.abs, _or=np.logical_or,
                     _rsum=np.add.reduce) -> np.ndarray:
        """Write di/dt and dv/dt into the out arrays; return r_load(t)."""
        f3 = _abs(i, out=self._f3)
        f2 = self._f2
        # does any open phase carry current (body-diode conduction)?
        diode = bool(_mul(f3, self._off_f, out=f2).any())
        if diode:
            pos = _gt(i, 0.0, out=self._b1)
            neg = _lt(i, 0.0, out=self._b2)
            # sign-dependent body-diode drive, active on open phases only
            f1 = _mul(neg, self._vin_pvd, out=self._f1)
            f2 = _mul(pos, self._nvd, out=self._f2)
            _add(f1, f2, out=f1)
            _mul(f1, self._off_f, out=f1)
            _add(f1, self._A, out=f1)
        else:
            f1 = self._f1
            np.copyto(f1, self._A)
        _mul(self._B, i, out=f2)
        _add(f1, f2, out=f1)                      # v_drive
        _sub(f1, v[:, None], out=f1)              # v_drive - v_out
        # cheap probe: saturation is impossible while max|i| <= min(i_sat)
        if self._f3_flat.max() > self._i_sat_min:
            od = _div(f3, self.i_sat, out=f3)
            # soft saturation possibly engaged: allocating slow path
            l_eff = self.inductance * np.where(
                od <= 1.0, 1.0, 0.4 + 0.6 / np.maximum(od, 1.0))
            _div(f1, l_eff, out=didt_out)
        else:
            _div(f1, self.inductance, out=didt_out)
        # discontinuous conduction: an open coil at zero current stays open
        if diode:
            act = _or(self._b1, self._b2, out=self._b3)
            f2 = _mul(act, self._off_f, out=self._f2)
            _add(f2, self._cond_f, out=f2)
            _mul(didt_out, f2, out=didt_out)
        else:
            # every open phase is at rest: zero exactly those entries
            _mul(didt_out, self._cond_f, out=didt_out)

        r_load = self.resistance(t)
        _rsum(i, axis=1, out=self._n1)
        _div(v, r_load, out=self._n2)
        _sub(self._n1, self._n2, out=self._n1)
        _div(self._n1, self.c_out, out=dvdt_out)
        return r_load

    def step(self, t, dt,
             err_i_out: Optional[np.ndarray] = None,
             err_v_out: Optional[np.ndarray] = None,
             _mul=np.multiply, _add=np.add, _abs=np.abs,
             _gt=np.greater, _le=np.less_equal, _or=np.logical_or,
             _and=np.logical_and, _not=np.logical_not) -> None:
        """Advance every lane by ``dt`` with an explicit midpoint (RK2) step.

        Identical semantics to the scalar model: switch states held across
        the step; body-diode conduction clamped at the zero crossing;
        trapezoidal energy bookkeeping on the accepted step.

        ``t`` / ``dt`` are scalars in lock-step operation, or ``(N,)``
        per-lane arrays when the adaptive stepper advances each lane on
        its own grid (a lane with ``dt == 0`` is a bit-exact no-op).
        When ``err_i_out`` / ``err_v_out`` are given, the embedded
        RK2(1) per-lane error estimates ``max_k |dt*(k2-k1)|`` (currents)
        and ``|dt*(k2-k1)|`` (voltage) are written into them.
        """
        if np.ndim(dt) == 0:
            half_col = half_row = 0.5 * dt
            dt_col = dt_row = dt
        else:
            half_row = 0.5 * dt
            half_col = half_row[:, None]
            dt_row = dt
            dt_col = dt[:, None]
        i0 = self.current
        v0 = self.v_out

        r_load = self._derivatives(t, i0, v0, self._k1_i, self._k1_v)
        _mul(self._k1_i, half_col, out=self._mid_i)
        _add(i0, self._mid_i, out=self._mid_i)
        _mul(self._k1_v, half_row, out=self._mid_v)
        _add(v0, self._mid_v, out=self._mid_v)
        self._derivatives(t + half_row, self._mid_i, self._mid_v,
                          self._k2_i, self._k2_v)

        i1 = self._next_i
        v1 = self._next_v
        _mul(self._k2_i, dt_col, out=i1)
        _add(i0, i1, out=i1)
        _mul(self._k2_v, dt_row, out=v1)
        _add(v0, v1, out=v1)

        # Body-diode conduction can only decay the current; a sign flip or
        # magnitude growth means the diode stopped: the coil opens at zero.
        f1 = _mul(i0, i1, out=self._f1)
        keep = _le(f1, 0.0, out=self._b1)
        a0 = _abs(i0, out=self._f1)
        a1 = _abs(i1, out=self._f2)
        _gt(a1, a0, out=self._b2)
        _or(keep, self._b2, out=keep)
        _and(keep, self._off_b, out=keep)
        _not(keep, out=keep)
        _mul(i1, keep, out=i1)

        if self.track_energy:
            # Trapezoidal energy bookkeeping on the accepted step.
            f1 = np.multiply(i0, i0, out=self._f1)
            f2 = np.multiply(i1, i1, out=self._f2)
            np.add(f1, f2, out=f1)
            f1 *= 0.5
            np.multiply(f1, self.dcr, out=f1)
            f1 *= dt_col
            self.coil_loss_j += f1

            f2 = np.add(i0, i1, out=self._f2)
            np.multiply(self._vin_half, f2, out=f2)
            f2 *= dt_col
            f2 *= self._pmos_f
            np.sum(f2, axis=1, out=self._n1)
            self.energy_in_j += self._n1

            np.multiply(v0, v0, out=self._n1)
            np.multiply(v1, v1, out=self._n2)
            np.add(self._n1, self._n2, out=self._n1)
            self._n1 *= 0.5
            np.divide(self._n1, r_load, out=self._n1)
            self._n1 *= dt_row
            self.energy_out_j += self._n1

        # Commit by buffer swap (views read the attributes afresh).
        self.current = i1
        self._next_i = i0
        self.v_out = v1
        self._next_v = v0

        if err_i_out is not None:
            # embedded RK2(1) estimate: |dt * (k2 - k1)|, worst phase
            d = np.subtract(self._k2_i, self._k1_i, out=self._f1)
            np.abs(d, out=d)
            d.max(axis=1, out=err_i_out)
            err_i_out *= dt_row
            np.subtract(self._k2_v, self._k1_v, out=err_v_out)
            np.abs(err_v_out, out=err_v_out)
            err_v_out *= dt_row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"VectorizedPowerStage(lanes={self.n_lanes}, "
                f"phases={self.n_phases})")
