"""Sweep-as-a-service: a long-running :class:`~repro.session.Session`
behind a small stdlib HTTP API.

- :mod:`repro.serve.server` — :class:`SweepServer` (routes, SSE
  streaming, the shared session);
- :mod:`repro.serve.jobs` — :class:`Job` / :class:`JobManager` (the job
  pool and append-only per-job event logs);
- :mod:`repro.serve.protocol` — wire forms (spec lists, declarative
  sweeps, :class:`JobOptions`);
- :mod:`repro.serve.auth` — :class:`ApiKeyAuth` (env/file/flag keys);
- :mod:`repro.serve.sse` — Server-Sent Events framing;
- :mod:`repro.serve.client` — :class:`ServeClient` + the
  ``python -m repro.serve.client`` CLI.

Launch with ``python -m repro.serve``; see README "Serving sweeps".
"""

from .auth import ApiKeyAuth, load_key_file
from .client import ServeClient, ServeError
from .jobs import Job, JobManager
from .protocol import (JobOptions, ProtocolError, decode_job, job_request,
                       specs_to_jsonable, sweep_from_jsonable)
from .server import SweepServer

__all__ = [
    "SweepServer", "ServeClient", "ServeError",
    "Job", "JobManager", "JobOptions",
    "ProtocolError", "decode_job", "job_request",
    "specs_to_jsonable", "sweep_from_jsonable",
    "ApiKeyAuth", "load_key_file",
]
