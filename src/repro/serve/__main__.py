"""Launcher: ``python -m repro.serve`` runs a sweep server until ^C.

The flags mirror :class:`~repro.session.Session`'s knobs (backend,
simulation workers, cache mode/location/cap) plus the server's own
(bind address, job pool size, API keys).  The cache defaults to
``readwrite`` under ``.repro_cache/`` — a server without a cache would
recompute every lane, which defeats the point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..session import Session
from .auth import ENV_KEY, ENV_KEY_FILE, ApiKeyAuth
from .server import SweepServer


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running sweep server over a shared Session.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=8732,
                        help="listen port; 0 picks an ephemeral port")
    parser.add_argument("--backend", choices=("vector", "scalar"),
                        default="vector")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation worker processes per sweep "
                             "(default: inline)")
    parser.add_argument("--job-workers", type=int, default=2,
                        help="concurrent jobs (default: 2)")
    parser.add_argument("--cache", default="readwrite",
                        choices=("readwrite", "readonly"),
                        help="cache mode (default: readwrite)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default: $REPRO_CACHE_DIR or "
                             ".repro_cache/)")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        help="on-disk cache cap; prunes oldest first")
    parser.add_argument("--api-key", action="append", default=None,
                        metavar="KEY",
                        help=f"accepted API key (repeatable; also "
                             f"${ENV_KEY})")
    parser.add_argument("--api-key-file", default=None,
                        help=f"file of keys, one per line (also "
                             f"${ENV_KEY_FILE})")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    args = parser.parse_args(argv)

    max_bytes = (int(args.cache_max_mb * 1024 * 1024)
                 if args.cache_max_mb is not None else None)
    session = Session(backend=args.backend, workers=args.workers,
                      cache=args.cache, cache_dir=args.cache_dir,
                      cache_max_bytes=max_bytes)
    auth = ApiKeyAuth(keys=args.api_key, key_file=args.api_key_file)
    server = SweepServer(session=session, host=args.host, port=args.port,
                         job_workers=args.job_workers, auth=auth,
                         verbose=args.verbose)
    mode = ("OPEN (no API keys configured)" if auth.open
            else "API-key protected")
    print(f"repro-serve listening on {server.url}  [{mode}]", flush=True)
    print(f"  session: {session!r}", flush=True)
    print(f"  cache:   {session.cache.root}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
