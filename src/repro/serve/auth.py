"""API-key authentication for the sweep server.

Keys are opaque strings compared in constant time
(:func:`hmac.compare_digest`).  They reach the server three ways, in
precedence order:

1. explicit ``keys=[...]`` (the launcher's repeatable ``--api-key``);
2. ``REPRO_SERVE_API_KEY`` — a single key in the environment;
3. ``REPRO_SERVE_API_KEY_FILE`` (or the launcher's ``--api-key-file``) —
   one key per line, blank lines and ``#`` comments ignored, so a
   deployment can mount a key list without putting secrets in argv.

With no keys configured the server runs **open** (every request
authorized) — convenient for localhost development, loudly flagged by
the launcher banner.  Clients send the key as ``Authorization: Bearer
<key>`` or ``X-API-Key: <key>``; :meth:`ApiKeyAuth.authorize` accepts
either.
"""

from __future__ import annotations

import hmac
import os
from pathlib import Path
from typing import Iterable, List, Mapping, Optional

ENV_KEY = "REPRO_SERVE_API_KEY"
ENV_KEY_FILE = "REPRO_SERVE_API_KEY_FILE"


def load_key_file(path) -> List[str]:
    """Keys from a file, one per line; blanks and ``#`` comments skipped."""
    keys = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.append(line)
    return keys


class ApiKeyAuth:
    """The server's key set and request-header check."""

    def __init__(self, keys: Optional[Iterable[str]] = None,
                 key_file: Optional[str] = None,
                 env: Optional[Mapping[str, str]] = None):
        env = os.environ if env is None else env
        resolved: List[str] = [k for k in (keys or []) if k]
        env_key = env.get(ENV_KEY, "").strip()
        if env_key:
            resolved.append(env_key)
        env_file = key_file or env.get(ENV_KEY_FILE, "").strip()
        if env_file:
            resolved.extend(load_key_file(env_file))
        self._keys = tuple(dict.fromkeys(resolved))   # dedupe, keep order

    @property
    def open(self) -> bool:
        """True when no keys are configured: every request is authorized."""
        return not self._keys

    def authorize(self, headers: Mapping[str, str]) -> bool:
        """Check a request's ``Authorization: Bearer`` / ``X-API-Key``."""
        if self.open:
            return True
        presented = None
        bearer = headers.get("Authorization", "")
        if bearer.startswith("Bearer "):
            presented = bearer[len("Bearer "):].strip()
        if presented is None:
            presented = headers.get("X-API-Key", "").strip() or None
        if presented is None:
            return False
        return any(hmac.compare_digest(presented, key) for key in self._keys)

    def __repr__(self) -> str:
        state = "open" if self.open else f"{len(self._keys)} key(s)"
        return f"ApiKeyAuth({state})"
