"""Thin client for the sweep server: a library class and a CLI.

:class:`ServeClient` wraps the HTTP API with stdlib ``urllib`` — submit
a sweep (a :class:`~repro.scenarios.spec.Sweep`, a spec list, or an
already-encoded job payload), follow its SSE event stream, and fetch
cached results by content key.  Lane payloads decode back through
:meth:`RunResult.from_dict`, which is bit-exact, so a followed job
yields the same numbers as an inline ``Session.sweep``.

The CLI (``python -m repro.serve.client``) exposes the same verbs for
shell pipelines and CI::

    python -m repro.serve.client --url http://127.0.0.1:8732 \
        submit --job-json sweep.json --follow

The API key comes from ``--api-key`` or the client-side
``REPRO_SERVE_API_KEY`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from ..scenarios.spec import ScenarioSpec
from ..system import RunResult
from .auth import ENV_KEY
from .protocol import job_request
from .sse import iter_events


class ServeError(RuntimeError):
    """An HTTP error from the server, with its decoded body message."""

    def __init__(self, code: int, message: str):
        super().__init__(f"HTTP {code}: {message}")
        self.code = code


class ServeClient:
    """One server endpoint plus credentials."""

    def __init__(self, url: str, api_key: Optional[str] = None,
                 timeout: float = 60.0):
        self.url = url.rstrip("/")
        self.api_key = (api_key if api_key is not None
                        else os.environ.get(ENV_KEY, "").strip() or None)
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _open(self, path: str, payload: Optional[Mapping[str, Any]] = None,
              timeout: Optional[float] = None):
        headers = {"Accept": "application/json"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        data = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers)
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:
                message = exc.reason
            raise ServeError(exc.code, str(message)) from exc

    def _json(self, path: str,
              payload: Optional[Mapping[str, Any]] = None) -> Any:
        with self._open(path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._json("/v1/stats")

    def submit(self, sweep: Any = None,
               specs: Optional[Sequence[ScenarioSpec]] = None,
               payload: Optional[Mapping[str, Any]] = None,
               **options: Any) -> Dict[str, Any]:
        """Submit a job; returns its snapshot (``{"id", "state", ...}``).

        Pass a :class:`Sweep`/spec list (encoded via
        :func:`~repro.serve.protocol.job_request` with ``options``), or a
        ready wire payload via ``payload=``.
        """
        if payload is None:
            payload = job_request(specs=specs, sweep=sweep, **options)
        return self._json("/v1/jobs", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json(f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("/v1/jobs")["jobs"]

    def follow(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream a job's events (replay + live) until its terminal
        ``done``/``failed`` frame.  Lane frames carry the decoded
        result under ``"run"`` (and the raw payload under ``"result"``)."""
        response = self._open(f"/v1/jobs/{job_id}/events",
                              timeout=max(self.timeout, 120.0))
        with response:
            for event in iter_events(response):
                if event.get("event") == "lane":
                    event["run"] = RunResult.from_dict(event["result"])
                yield event
                if event.get("event") in ("done", "failed"):
                    return

    def wait(self, job_id: str) -> List[Dict[str, Any]]:
        """Follow to completion; returns the lane events in arrival
        order.  Raises :class:`ServeError` if the job failed, or if the
        server's bounded event log already evicted part of the replay
        (a ``truncated`` frame) — a clipped lane list would silently
        look like a smaller sweep."""
        lanes = []
        for event in self.follow(job_id):
            if event.get("event") == "lane":
                lanes.append(event)
            elif event.get("event") == "truncated":
                raise ServeError(
                    410, f"event replay truncated: {event.get('dropped')} "
                         "event(s) evicted before this follower connected")
            elif event.get("event") == "failed":
                raise ServeError(500, event.get("error", "job failed"))
        return lanes

    def run_sweep(self, sweep: Any = None,
                  specs: Optional[Sequence[ScenarioSpec]] = None,
                  **options: Any) -> List[Dict[str, Any]]:
        """Submit + wait; lane events sorted back into spec order."""
        snapshot = self.submit(sweep=sweep, specs=specs, **options)
        lanes = self.wait(snapshot["id"])
        return sorted(lanes, key=lambda e: e["index"])

    def result(self, key: str, trace: bool = False) -> RunResult:
        """Fetch any cached result by content key (zero recompute)."""
        suffix = "?trace=1" if trace else ""
        payload = self._json(f"/v1/results/{key}{suffix}")
        return RunResult.from_dict(payload["result"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _print(obj: Any) -> None:
    json.dump(obj, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")


def _cmd_submit(client: ServeClient, args) -> int:
    if args.job_json == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.job_json, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    snapshot = client.submit(payload=payload)
    if not args.follow:
        _print(snapshot)
        return 0
    failed = False
    for event in client.follow(snapshot["id"]):
        event.pop("run", None)  # JSON output: keep the raw payload only
        if not args.quiet or event.get("event") in ("done", "failed"):
            _print(event)
        failed = failed or event.get("event") == "failed"
    return 1 if failed else 0


def _cmd_follow(client: ServeClient, args) -> int:
    failed = False
    for event in client.follow(args.id):
        event.pop("run", None)
        _print(event)
        failed = failed or event.get("event") == "failed"
    return 1 if failed else 0


def _cmd_result(client: ServeClient, args) -> int:
    suffix = "?trace=1" if args.trace else ""
    payload = client._json(f"/v1/results/{args.key}{suffix}")
    _print(payload)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Client for the repro sweep server.")
    parser.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:8732")
    parser.add_argument("--api-key", default=None,
                        help=f"API key (default: ${ENV_KEY})")
    parser.add_argument("--timeout", type=float, default=60.0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("health", help="server liveness + auth mode")
    sub.add_parser("stats", help="cache counters and job totals")
    sub.add_parser("jobs", help="list job snapshots")

    p = sub.add_parser("submit", help="submit a job payload (JSON file)")
    p.add_argument("--job-json", required=True,
                   help='payload path, or "-" for stdin')
    p.add_argument("--follow", action="store_true",
                   help="stream events until the job finishes")
    p.add_argument("--quiet", action="store_true",
                   help="with --follow: print only the terminal event")

    p = sub.add_parser("job", help="one job snapshot")
    p.add_argument("id")

    p = sub.add_parser("follow", help="stream a job's events (SSE)")
    p.add_argument("id")

    p = sub.add_parser("result", help="fetch a cached result by key")
    p.add_argument("key")
    p.add_argument("--trace", action="store_true",
                   help="require the entry's waveforms")

    args = parser.parse_args(argv)
    client = ServeClient(args.url, api_key=args.api_key,
                         timeout=args.timeout)
    try:
        if args.command == "health":
            _print(client.health())
        elif args.command == "stats":
            _print(client.stats())
        elif args.command == "jobs":
            _print(client.jobs())
        elif args.command == "job":
            _print(client.job(args.id))
        elif args.command == "submit":
            return _cmd_submit(client, args)
        elif args.command == "follow":
            return _cmd_follow(client, args)
        elif args.command == "result":
            return _cmd_result(client, args)
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(f"error: cannot reach {args.url}: {exc.reason}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
