"""Job lifecycle for the sweep server.

A :class:`Job` is one submitted sweep: its specs, a *bounded* event log
(one ``lane`` event per landed scenario plus one terminal ``done``/
``failed`` event, buffered in an :class:`~repro.serve.sse.EventLog`),
and progress counters guarded by the job's own lock.  Events are never
mutated after append; a follower that connects while the whole log is
still retained replays exactly the sequence a live follower saw, and
one that connects after eviction gets an explicit ``truncated`` marker
first — never a silently clipped replay.

:class:`JobManager` owns the worker pool.  Each job runs
``session.sweep(..., on_result=...)`` on one pool thread; per-lane
concurrency inside a job is the session's own ``workers`` setting, and
cross-job dedupe of identical uncached configs is the session's
in-flight registry — the manager adds nothing to the concurrency story
beyond "jobs run in parallel against one shared session".

Job ``defaults`` are merged *below* each spec's overrides before
submission (the same layering :class:`~repro.session.Session` applies
to its own ``defaults``), so the enumerated configs — and therefore the
cache keys — match an inline ``Session(defaults=...)`` sweep.
"""

from __future__ import annotations

import secrets
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..scenarios.spec import ScenarioSpec
from ..session import Session
from .protocol import JobOptions
from .sse import DEFAULT_MAX_EVENTS, EventLog

#: job lifecycle states, in order
STATES = ("queued", "running", "done", "failed")

#: events that end an SSE stream (the job can produce nothing after them)
TERMINAL_EVENTS = ("done", "failed")


class Job:
    """One submitted sweep: bounded event log + locked progress state."""

    def __init__(self, specs: Sequence[ScenarioSpec], options: JobOptions,
                 max_events: int = DEFAULT_MAX_EVENTS):
        self.id = secrets.token_hex(8)
        self.specs = list(specs)
        self.options = options
        # wall-clock submission stamp, reporting only — never keyed on
        self.created = time.time()  # lint: ok(D02: job metadata, not results)
        self.log = EventLog(max_events=max_events)
        self._lock = threading.Lock()
        # lint: guarded_by(self._lock: set by the worker, read by snapshots)
        self.state = "queued"
        # lint: guarded_by(self._lock: written with state on failure)
        self.error: Optional[str] = None
        # lint: guarded_by(self._lock: bumped per lane from session workers)
        self.cached = 0
        # lint: guarded_by(self._lock: bumped per lane from session workers)
        self.computed = 0

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def finished(self) -> bool:
        with self._lock:
            return self.state in TERMINAL_EVENTS

    # ------------------------------------------------------------------
    # Event log (bounded append; readers replay + follow via self.log)
    # ------------------------------------------------------------------
    def append(self, event: Dict[str, Any]) -> None:
        self.log.append(event)
        if event.get("event") in TERMINAL_EVENTS:
            self.log.close()

    def land(self, index: int, point) -> None:
        """Record one landed lane: counters under the lock, then the
        event append (which takes the log's own condition) outside it —
        the two locks are never held together."""
        with self._lock:
            if point.cached:
                self.cached += 1
            else:
                self.computed += 1
        self.append({
            "event": "lane",
            "index": index,
            "spec": point.spec.name,
            "key": point.key,
            "cached": point.cached,
            "result": point.result.to_dict(),
        })

    def finish(self, receipt: Optional[Dict[str, Any]] = None) -> None:
        """Terminal success: flip the state, then emit ``done`` carrying
        the final counters (read under the lock, appended outside it)
        and, when observability is on, the sweep's receipt."""
        self.set_state("done")
        with self._lock:
            cached, computed = self.cached, self.computed
        event = {"event": "done", "cached": cached,
                 "computed": computed, "total": self.total}
        if receipt is not None:
            event["receipt"] = receipt
        self.append(event)

    def set_state(self, state: str, error: Optional[str] = None) -> None:
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            self.state = state
            self.error = error

    def snapshot(self) -> Dict[str, Any]:
        """The job's summary form (job listings and status polls)."""
        dropped = self.log.dropped
        with self._lock:
            return {
                "id": self.id,
                "state": self.state,
                "error": self.error,
                "total": self.total,
                "landed": self.cached + self.computed,
                "cached": self.cached,
                "computed": self.computed,
                "created": self.created,
                "dropped_events": dropped,
            }


class JobManager:
    """Run jobs against one shared session on a bounded thread pool."""

    def __init__(self, session: Session, workers: int = 2,
                 max_events: int = DEFAULT_MAX_EVENTS):
        if workers < 1:
            raise ValueError("need at least one job worker")
        self.session = session
        self.workers = workers
        self.max_events = max_events
        self._lock = threading.Lock()
        # lint: guarded_by(self._lock: registered/listed from any thread)
        self._jobs: Dict[str, Job] = {}
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="serve-job")

    # ------------------------------------------------------------------
    def submit(self, specs: Sequence[ScenarioSpec],
               options: JobOptions) -> Job:
        """Queue one sweep; returns immediately with the :class:`Job`."""
        if options.defaults:
            specs = [ScenarioSpec(name=spec.name,
                                  overrides={**options.defaults,
                                             **spec.overrides},
                                  seed=spec.seed)
                     for spec in specs]
        job = Job(specs, options, max_events=self.max_events)
        with self._lock:
            self._jobs[job.id] = job
        obs.counter("repro_serve_jobs_total", state="queued").inc()
        self._pool.submit(self._run, job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        job.set_state("running")
        obs.counter("repro_serve_jobs_total", state="running").inc()
        try:
            job.append({"event": "start", "job": job.id, "total": job.total})
            # each job records into its own trace, so the sweep attaches
            # its receipt here rather than to another job's timeline
            with obs.new_trace() as tr:
                self.session.sweep(job.specs, settle=job.options.settle,
                                   trace=job.options.trace,
                                   track_energy=job.options.track_energy,
                                   on_result=job.land)
                receipt = tr.receipt if tr is not None else None
        except Exception:
            err = traceback.format_exc(limit=20)
            job.set_state("failed", error=err)
            obs.counter("repro_serve_jobs_total", state="failed").inc()
            job.append({"event": "failed", "error": err})
        else:
            job.finish(receipt)
            obs.counter("repro_serve_jobs_total", state="done").inc()
