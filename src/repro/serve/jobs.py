"""Job lifecycle for the sweep server.

A :class:`Job` is one submitted sweep: its specs, a monotonically
growing event log (one ``lane`` event per landed scenario plus one
terminal ``done``/``failed`` event), and a condition variable so any
number of SSE streams can block on "events past index N".  Every event
is appended *before* waiters wake, and events are never mutated after
append — a follower that connects late replays the full log and then
continues live, seeing exactly the same sequence as one that connected
before the job started.

:class:`JobManager` owns the worker pool.  Each job runs
``session.sweep(..., on_result=...)`` on one pool thread; per-lane
concurrency inside a job is the session's own ``workers`` setting, and
cross-job dedupe of identical uncached configs is the session's
in-flight registry — the manager adds nothing to the concurrency story
beyond "jobs run in parallel against one shared session".

Job ``defaults`` are merged *below* each spec's overrides before
submission (the same layering :class:`~repro.session.Session` applies
to its own ``defaults``), so the enumerated configs — and therefore the
cache keys — match an inline ``Session(defaults=...)`` sweep.
"""

from __future__ import annotations

import secrets
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from ..scenarios.spec import ScenarioSpec
from ..session import Session
from .protocol import JobOptions

#: job lifecycle states, in order
STATES = ("queued", "running", "done", "failed")


class Job:
    """One submitted sweep and its append-only event log."""

    def __init__(self, specs: Sequence[ScenarioSpec], options: JobOptions):
        self.id = secrets.token_hex(8)
        self.specs = list(specs)
        self.options = options
        # wall-clock submission stamp, reporting only — never keyed on
        self.created = time.time()  # lint: ok(D02: job metadata, not results)
        self.state = "queued"
        self.error: Optional[str] = None
        self.cached = 0
        self.computed = 0
        self._events: List[Dict[str, Any]] = []
        self._cond = threading.Condition()

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    # ------------------------------------------------------------------
    # Event log (append-only; readers replay + follow)
    # ------------------------------------------------------------------
    def append(self, event: Dict[str, Any]) -> None:
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def events_since(self, start: int,
                     timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Events past index ``start``; blocks until at least one exists
        or the job is finished (then returns whatever remains, possibly
        nothing).  ``timeout`` bounds one wait; on expiry the (possibly
        empty) slice is returned so callers can emit keep-alives."""
        with self._cond:
            self._cond.wait_for(
                lambda: len(self._events) > start or self.finished,
                timeout=timeout)
            return self._events[start:]

    def set_state(self, state: str, error: Optional[str] = None) -> None:
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._cond:
            self.state = state
            self.error = error
            self._cond.notify_all()

    def snapshot(self) -> Dict[str, Any]:
        """The job's summary form (job listings and status polls)."""
        with self._cond:
            return {
                "id": self.id,
                "state": self.state,
                "error": self.error,
                "total": self.total,
                "landed": self.cached + self.computed,
                "cached": self.cached,
                "computed": self.computed,
                "created": self.created,
            }


class JobManager:
    """Run jobs against one shared session on a bounded thread pool."""

    def __init__(self, session: Session, workers: int = 2):
        if workers < 1:
            raise ValueError("need at least one job worker")
        self.session = session
        self.workers = workers
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="serve-job")

    # ------------------------------------------------------------------
    def submit(self, specs: Sequence[ScenarioSpec],
               options: JobOptions) -> Job:
        """Queue one sweep; returns immediately with the :class:`Job`."""
        if options.defaults:
            specs = [ScenarioSpec(name=spec.name,
                                  overrides={**options.defaults,
                                             **spec.overrides},
                                  seed=spec.seed)
                     for spec in specs]
        job = Job(specs, options)
        with self._lock:
            self._jobs[job.id] = job
        self._pool.submit(self._run, job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        job.set_state("running")

        def land(index: int, point) -> None:
            if point.cached:
                job.cached += 1
            else:
                job.computed += 1
            job.append({
                "event": "lane",
                "index": index,
                "spec": point.spec.name,
                "key": point.key,
                "cached": point.cached,
                "result": point.result.to_dict(),
            })

        try:
            job.append({"event": "start", "job": job.id, "total": job.total})
            self.session.sweep(job.specs, settle=job.options.settle,
                               trace=job.options.trace,
                               track_energy=job.options.track_energy,
                               on_result=land)
        except Exception:
            job.set_state("failed", error=traceback.format_exc(limit=20))
            job.append({"event": "failed", "error": job.error})
        else:
            job.set_state("done")
            job.append({"event": "done", "cached": job.cached,
                        "computed": job.computed, "total": job.total})
