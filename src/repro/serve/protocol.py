"""Wire forms for the sweep server: job specs in, results out.

A job submission is JSON with either (or both of)

``"specs"``
    A list of encoded :class:`~repro.scenarios.spec.ScenarioSpec`
    payloads — exactly the :func:`repro.scenarios.parallel.encode_spec`
    form the process sharder already uses, so model objects (coil, load
    profile, controller params) travel as tagged primitive dicts and
    every value is JSON-safe.  This is what the client library sends: it
    expands a :class:`~repro.scenarios.spec.Sweep` locally and ships the
    spec list.
``"sweep"``
    A declarative sweep: ``{"name", "seed", "base", "blocks": [...]}``
    with grid / random / point blocks (``"grid": {axes}`` is shorthand
    for one grid block).  The server expands it through the same
    :class:`Sweep` builder used in-process, so a hand-written curl
    payload enumerates identical specs (and therefore identical cache
    keys) to a client-side expansion.

plus the sweep-level options (``defaults``, ``settle``, ``trace``,
``track_energy``) collected into :class:`JobOptions`.

Results travel as :meth:`~repro.system.RunResult.to_dict` payloads —
floats round-trip exactly through JSON's shortest-repr encoding, so a
client-side :meth:`RunResult.from_dict` is bit-identical to the
server-side result.  Malformed submissions raise :class:`ProtocolError`,
which the server maps to HTTP 400 with the message in the body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..scenarios.parallel import decode_spec, decode_value, encode_spec
from ..scenarios.spec import (ScenarioSpec, Sweep, choice, log_uniform,
                              uniform)

#: distribution constructors admissible in declarative ``random`` blocks
DISTRIBUTIONS = {
    "uniform": uniform,
    "log_uniform": log_uniform,
    "choice": choice,
}


class ProtocolError(ValueError):
    """A malformed job payload (HTTP 400 at the server boundary)."""


# ---------------------------------------------------------------------------
# Spec lists (the client library's form)
# ---------------------------------------------------------------------------
def specs_to_jsonable(specs: Sequence[ScenarioSpec]) -> List[Dict[str, Any]]:
    """Encode specs for the ``"specs"`` submission field."""
    return [encode_spec(spec) for spec in specs]


def specs_from_jsonable(payload: Any) -> List[ScenarioSpec]:
    if not isinstance(payload, list):
        raise ProtocolError('"specs" must be a list of spec payloads')
    specs = []
    for i, entry in enumerate(payload):
        if not isinstance(entry, Mapping) or "name" not in entry:
            raise ProtocolError(f'"specs"[{i}] is not a spec payload '
                                '(expected {"name", "overrides", "seed"})')
        try:
            specs.append(decode_spec({
                "name": entry["name"],
                "overrides": dict(entry.get("overrides") or {}),
                "seed": entry.get("seed"),
            }))
        except (TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(f'"specs"[{i}]: {exc}') from exc
    return specs


# ---------------------------------------------------------------------------
# Declarative sweeps (the curl-friendly form)
# ---------------------------------------------------------------------------
def _decode_axis_value(value: Any) -> Any:
    """One grid-axis element: plain value, override mapping, or a
    ``[label, mapping]`` pair (JSON's spelling of the labelled tuple)."""
    if (isinstance(value, list) and len(value) == 2
            and isinstance(value[0], str) and isinstance(value[1], Mapping)):
        return (value[0], {k: decode_value(v) for k, v in value[1].items()})
    if isinstance(value, Mapping):
        return {k: decode_value(v) for k, v in value.items()}
    return decode_value(value)


def _decode_draw(name: str, spec: Any):
    if not isinstance(spec, Mapping) or "dist" not in spec:
        raise ProtocolError(
            f'random draw {name!r} must be {{"dist": <name>, ...params}}')
    kind = spec["dist"]
    ctor = DISTRIBUTIONS.get(kind)
    if ctor is None:
        raise ProtocolError(
            f'random draw {name!r}: unknown distribution {kind!r} '
            f'(have {sorted(DISTRIBUTIONS)})')
    params = {k: v for k, v in spec.items() if k != "dist"}
    try:
        return ctor(**params)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f'random draw {name!r}: {exc}') from exc


def sweep_from_jsonable(payload: Any) -> Sweep:
    """Build a :class:`Sweep` from its declarative JSON form."""
    if not isinstance(payload, Mapping):
        raise ProtocolError('"sweep" must be an object')
    base = {k: decode_value(v)
            for k, v in dict(payload.get("base") or {}).items()}
    try:
        sweep = Sweep(base=base, seed=int(payload.get("seed", 0)),
                      name=str(payload.get("name", "sweep")))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f'"sweep": {exc}') from exc
    blocks = payload.get("blocks")
    if blocks is None:
        blocks = []
        if "grid" in payload:
            blocks.append({"kind": "grid", "axes": payload["grid"]})
    if not isinstance(blocks, list):
        raise ProtocolError('"sweep"."blocks" must be a list')
    for b, block in enumerate(blocks):
        if not isinstance(block, Mapping) or "kind" not in block:
            raise ProtocolError(f'"sweep"."blocks"[{b}] needs a "kind"')
        kind = block["kind"]
        try:
            if kind == "grid":
                axes = block.get("axes")
                if not isinstance(axes, Mapping) or not axes:
                    raise ProtocolError("grid block needs non-empty "
                                        '"axes"')
                sweep.grid(**{
                    name: [_decode_axis_value(v) for v in values]
                    for name, values in axes.items()})
            elif kind == "random":
                draws = block.get("draws")
                if not isinstance(draws, Mapping) or not draws:
                    raise ProtocolError("random block needs non-empty "
                                        '"draws"')
                sweep.random(int(block.get("n", 1)),
                             **{name: _decode_draw(name, d)
                                for name, d in draws.items()})
            elif kind == "point":
                overrides = {k: decode_value(v)
                             for k, v in dict(block.get("overrides")
                                              or {}).items()}
                sweep.point(name=block.get("name"), **overrides)
            else:
                raise ProtocolError(f"unknown block kind {kind!r} "
                                    "(grid / random / point)")
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f'"sweep"."blocks"[{b}] ({kind}): {exc}') from exc
    return sweep


# ---------------------------------------------------------------------------
# Whole jobs
# ---------------------------------------------------------------------------
@dataclass
class JobOptions:
    """Sweep-level options riding along with a submission."""

    defaults: Dict[str, Any] = field(default_factory=dict)
    settle: Optional[float] = None
    trace: bool = False
    track_energy: bool = True


def job_request(specs: Optional[Sequence[ScenarioSpec]] = None,
                sweep: Optional[Any] = None,
                defaults: Optional[Mapping[str, Any]] = None,
                settle: Optional[float] = None, trace: bool = False,
                track_energy: bool = True) -> Dict[str, Any]:
    """Build a submission payload (the client-side encoder).

    ``sweep`` may be a :class:`Sweep` (expanded locally into ``specs``)
    or an already-declarative dict (shipped as-is).
    """
    payload: Dict[str, Any] = {}
    if isinstance(sweep, Sweep):
        specs = list(specs or []) + sweep.specs()
        sweep = None
    if specs:
        payload["specs"] = specs_to_jsonable(list(specs))
    if sweep is not None:
        payload["sweep"] = sweep
    if defaults:
        payload["defaults"] = dict(defaults)
    if settle is not None:
        payload["settle"] = settle
    if trace:
        payload["trace"] = True
    if not track_energy:
        payload["track_energy"] = False
    return payload


def decode_job(payload: Any) -> Tuple[List[ScenarioSpec], JobOptions]:
    """Parse one submission into ``(specs, options)``.

    Raises :class:`ProtocolError` on anything malformed — including an
    empty job, which cannot be meaningfully submitted.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("job payload must be a JSON object")
    unknown = set(payload) - {"specs", "sweep", "defaults", "settle",
                              "trace", "track_energy"}
    if unknown:
        raise ProtocolError(f"unknown job fields {sorted(unknown)}")
    specs: List[ScenarioSpec] = []
    if "specs" in payload:
        specs.extend(specs_from_jsonable(payload["specs"]))
    if "sweep" in payload:
        specs.extend(sweep_from_jsonable(payload["sweep"]).specs())
    if not specs:
        raise ProtocolError('job needs "specs" and/or "sweep" with at '
                            "least one scenario")
    defaults = payload.get("defaults") or {}
    if not isinstance(defaults, Mapping):
        raise ProtocolError('"defaults" must be an object')
    settle = payload.get("settle")
    if settle is not None and not isinstance(settle, (int, float)):
        raise ProtocolError('"settle" must be a number (seconds) or null')
    options = JobOptions(
        defaults={k: decode_value(v) for k, v in dict(defaults).items()},
        settle=float(settle) if settle is not None else None,
        trace=bool(payload.get("trace", False)),
        track_energy=bool(payload.get("track_energy", True)))
    return specs, options
