"""The sweep server: ``Session`` behind a small stdlib HTTP API.

Routes (all JSON; every route except ``/v1/health`` requires an API key
when keys are configured — see :mod:`repro.serve.auth`):

========================  ===================================================
``GET  /v1/health``       liveness probe (unauthenticated)
``POST /v1/jobs``         submit a sweep (:mod:`repro.serve.protocol` forms);
                          ``202`` with the job snapshot
``GET  /v1/jobs``         list job snapshots
``GET  /v1/jobs/<id>``    one job snapshot
``GET  /v1/jobs/<id>/events``  SSE stream: event replay (prefixed by an
                          explicit ``truncated`` marker when the bounded
                          log already evicted early events), then live
                          per-lane events until the terminal ``done`` /
                          ``failed`` frame
``GET  /v1/results/<key>``     any cached result by content key, zero
                          recompute (``?trace=1`` to require waveforms);
                          ``404`` when absent
``GET  /v1/stats``        session cache/sweep aggregates + job totals
``GET  /v1/metrics``      Prometheus text exposition of the obs registry
========================  ===================================================

Concurrency model: :class:`~http.server.ThreadingHTTPServer` gives every
request its own thread; submissions enqueue onto the
:class:`~repro.serve.jobs.JobManager` pool; all jobs share ONE
:class:`~repro.session.Session`, whose concurrent-safe cache and
in-flight registry guarantee each unique uncached config is simulated
exactly once across overlapping jobs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..session import Session
from .auth import ApiKeyAuth
from .jobs import TERMINAL_EVENTS, JobManager
from .protocol import ProtocolError, decode_job
from .sse import format_event


def _route_family(path: str) -> str:
    """Collapse per-job/per-key paths into bounded label values, so the
    request counter cannot grow a series per job id."""
    if path.startswith("/v1/jobs/"):
        return ("/v1/jobs/<id>/events" if path.endswith("/events")
                else "/v1/jobs/<id>")
    if path.startswith("/v1/results/"):
        return "/v1/results/<key>"
    if path in ("/v1/health", "/v1/jobs", "/v1/stats", "/v1/metrics"):
        return path
    return "other"


class _Handler(BaseHTTPRequestHandler):
    """One request; state lives on ``self.server`` (:class:`_HTTPServer`)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    def _json(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _authorized(self) -> bool:
        if self.server.auth.authorize(self.headers):  # type: ignore
            return True
        self._error(401, "missing or invalid API key")
        return False

    def _route(self) -> Tuple[str, dict]:
        parts = urlsplit(self.path)
        return parts.path.rstrip("/") or "/", parse_qs(parts.query)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path, query = self._route()
        manager: JobManager = self.server.manager  # type: ignore
        obs.counter("repro_serve_requests_total",
                    route=_route_family(path)).inc()
        if path == "/v1/health":
            self._json(200, {"ok": True,
                             "open": self.server.auth.open,  # type: ignore
                             "jobs": len(manager.jobs())})
            return
        if not self._authorized():
            return
        if path == "/v1/metrics":
            body = obs.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path == "/v1/stats":
            stats = manager.session.cache_stats()
            jobs = manager.jobs()
            stats["jobs"] = {
                "total": len(jobs),
                "finished": sum(1 for j in jobs if j.finished),
                "dropped_events": sum(j.log.dropped for j in jobs),
            }
            self._json(200, stats)
            return
        if path == "/v1/jobs":
            self._json(200, {"jobs": [job.snapshot()
                                      for job in manager.jobs()]})
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                self._stream_events(rest[:-len("/events")].rstrip("/"))
                return
            job = manager.get(rest)
            if job is None:
                self._error(404, f"no such job {rest!r}")
                return
            self._json(200, job.snapshot())
            return
        if path.startswith("/v1/results/"):
            self._fetch_result(path[len("/v1/results/"):], query)
            return
        self._error(404, f"no such route {path!r}")

    def do_POST(self) -> None:  # noqa: N802
        path, _ = self._route()
        obs.counter("repro_serve_requests_total",
                    route=_route_family(path)).inc()
        if not self._authorized():
            return
        if path != "/v1/jobs":
            self._error(404, f"no such route {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError):
            self._error(400, "request body is not valid JSON")
            return
        try:
            specs, options = decode_job(payload)
        except ProtocolError as exc:
            self._error(400, str(exc))
            return
        job = self.server.manager.submit(specs, options)  # type: ignore
        self._json(202, job.snapshot())

    # ------------------------------------------------------------------
    def _fetch_result(self, key: str, query: dict) -> None:
        session: Session = self.server.manager.session  # type: ignore
        if session.cache is None:
            self._error(404, "server is running without a cache")
            return
        want_trace = query.get("trace", ["0"])[-1] not in ("0", "", "false")
        result = session.cache.load(key, want_trace=want_trace)
        if result is None:
            self._error(404, f"no cached result for key {key!r}")
            return
        self._json(200, {"key": key, "result": result.to_dict()})

    def _stream_events(self, job_id: str) -> None:
        job = self.server.manager.get(job_id)  # type: ignore
        if job is None:
            self._error(404, f"no such job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # SSE has no length; signal end-of-stream by closing
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = 0
        try:
            while True:
                cursor, batch = job.log.events_since(cursor, timeout=15.0)
                if not batch:
                    if job.log.closed:
                        return
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                for event in batch:
                    payload = dict(event)
                    kind = payload.pop("event", "message")
                    self.wfile.write(format_event(kind, payload))
                    self.wfile.flush()
                    if kind in TERMINAL_EVENTS:
                        return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, manager: JobManager, auth: ApiKeyAuth,
                 verbose: bool = False):
        self.manager = manager
        self.auth = auth
        self.verbose = verbose
        super().__init__(address, _Handler)


class SweepServer:
    """Owns the session, job pool, and HTTP listener.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  Designed to run in-process for tests (``start`` /
    ``stop``) and as the long-running process behind
    ``python -m repro.serve``.
    """

    def __init__(self, session: Optional[Session] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 job_workers: int = 2, auth: Optional[ApiKeyAuth] = None,
                 verbose: bool = False):
        self.session = session if session is not None \
            else Session(cache="readwrite")
        self.auth = auth if auth is not None else ApiKeyAuth()
        self.manager = JobManager(self.session, workers=job_workers)
        self._httpd = _HTTPServer((host, port), self.manager, self.auth,
                                  verbose=verbose)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SweepServer":
        """Serve on a background thread; returns self (chainable)."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="serve-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the launcher's main loop)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.manager.shutdown()

    def __enter__(self) -> "SweepServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
