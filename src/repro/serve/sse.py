"""Server-Sent Events framing: the streaming half of the wire protocol.

One event = a ``event:`` line naming the type, one ``data:`` line
carrying a JSON payload, and a blank line.  The format is deliberately
the plain SSE subset every browser ``EventSource`` and ``curl -N``
understands; both ends here are stdlib (:mod:`http.server` writes it,
:mod:`urllib.request` reads it).

:class:`EventLog` is the server-side buffer behind each stream: a
bounded append-only log with a condition variable so any number of SSE
streams can block on "events past cursor N".  When the bound is hit the
*oldest* events are dropped and every late replay starts with an
explicit ``truncated`` marker frame — a follower can always tell a full
replay from a clipped one.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import obs

#: default per-job event-log bound; at ~1 KiB per lane event this caps a
#: job's replay memory near 4 MiB while keeping every realistic sweep
#: (tier-1 sweeps are tens of lanes) far from truncation
DEFAULT_MAX_EVENTS = 4096


class EventLog:
    """Bounded, append-only event log with blocking cursor reads.

    Cursors are *absolute* event indices (they keep counting across
    drops), so a reader holding cursor ``c`` after truncation learns
    exactly how many events it lost.  ``append`` never blocks on
    readers: overflow evicts from the front immediately.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError("event log needs room for at least one event")
        self.max_events = max_events
        self._cond = threading.Condition()
        # lint: guarded_by(self._cond: appended and evicted concurrently)
        self._events: List[Dict[str, Any]] = []
        # lint: guarded_by(self._cond: advanced together with _events)
        self._dropped = 0
        # lint: guarded_by(self._cond: set once, read by blocked waiters)
        self._closed = False

    def append(self, event: Dict[str, Any]) -> None:
        with self._cond:
            self._events.append(event)
            overflow = len(self._events) - self.max_events
            if overflow > 0:
                del self._events[:overflow]
                self._dropped += overflow
            self._cond.notify_all()
        if overflow > 0:
            obs.counter("repro_sse_events_dropped_total").inc(overflow)

    def close(self) -> None:
        """No more events will arrive; wake every blocked reader."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def dropped(self) -> int:
        """How many events have been evicted from the front so far."""
        with self._cond:
            return self._dropped

    def events_since(self, start: int, timeout: Optional[float] = None
                     ) -> Tuple[int, List[Dict[str, Any]]]:
        """``(next_cursor, batch)`` of events past absolute index
        ``start``; blocks until at least one exists or the log is
        closed.  ``timeout`` bounds one wait; on expiry the (possibly
        empty) batch is returned so callers can emit keep-alives.

        If ``start`` predates the retained window, the batch leads with
        a synthetic ``truncated`` marker naming how many events the
        reader missed ("replay truncated at N").
        """
        with self._cond:
            self._cond.wait_for(
                lambda: self._dropped + len(self._events) > start
                or self._closed,
                timeout=timeout)
            end = self._dropped + len(self._events)
            if start >= end:
                return start, []
            batch: List[Dict[str, Any]] = []
            if start < self._dropped:
                batch.append({"event": "truncated",
                              "dropped": self._dropped - start,
                              "next": self._dropped})
                start = self._dropped
            batch.extend(self._events[start - self._dropped:])
            return end, batch


def format_event(event: str, data: Any) -> bytes:
    """One wire-ready SSE frame: ``event`` type + JSON ``data`` payload."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


def iter_events(stream) -> Iterator[Dict[str, Any]]:
    """Parse SSE frames from a binary line stream (an open HTTP response).

    Yields one dict per frame: the JSON-decoded ``data`` payload with the
    frame's ``event`` type merged in under ``"event"`` (the payloads here
    never carry a conflicting key).  Comment lines (``:`` prefix) and
    unknown fields are skipped per the SSE spec; the iterator ends when
    the server closes the stream.
    """
    event: Optional[str] = None
    data_lines = []
    for raw in stream:
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if line.startswith(":"):
            continue
        if line == "":
            if data_lines:
                payload = json.loads("\n".join(data_lines))
                if not isinstance(payload, dict):
                    payload = {"data": payload}
                if event is not None:
                    payload.setdefault("event", event)
                yield payload
            event = None
            data_lines = []
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].lstrip())
