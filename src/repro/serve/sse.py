"""Server-Sent Events framing: the streaming half of the wire protocol.

One event = a ``event:`` line naming the type, one ``data:`` line
carrying a JSON payload, and a blank line.  The format is deliberately
the plain SSE subset every browser ``EventSource`` and ``curl -N``
understands; both ends here are stdlib (:mod:`http.server` writes it,
:mod:`urllib.request` reads it).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional


def format_event(event: str, data: Any) -> bytes:
    """One wire-ready SSE frame: ``event`` type + JSON ``data`` payload."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


def iter_events(stream) -> Iterator[Dict[str, Any]]:
    """Parse SSE frames from a binary line stream (an open HTTP response).

    Yields one dict per frame: the JSON-decoded ``data`` payload with the
    frame's ``event`` type merged in under ``"event"`` (the payloads here
    never carry a conflicting key).  Comment lines (``:`` prefix) and
    unknown fields are skipped per the SSE spec; the iterator ends when
    the server closes the stream.
    """
    event: Optional[str] = None
    data_lines = []
    for raw in stream:
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if line.startswith(":"):
            continue
        if line == "":
            if data_lines:
                payload = json.loads("\n".join(data_lines))
                if not isinstance(payload, dict):
                    payload = {"data": payload}
                if event is not None:
                    payload.setdefault("event", event)
                yield payload
            event = None
            data_lines = []
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].lstrip())
