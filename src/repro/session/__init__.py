"""Unified simulation front door with content-addressed result caching.

- :mod:`repro.session.session` — :class:`Session` (backend selection,
  worker sharding, cache policy), the default-session machinery behind
  the legacy ``run_sweep`` / ``BuckSystem.run`` shims;
- :mod:`repro.session.cache` — :func:`cache_key` (canonical hash of the
  resolved config, measurement knobs, and code-version fingerprint) and
  :class:`ResultCache` (npz/json store under ``.repro_cache/``).

See README "Session API & caching" for the migration table.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    FORMAT_VERSION,
    ResultCache,
    cache_key,
    code_fingerprint,
    module_fingerprint,
)
from .inflight import InFlightRegistry
from .session import (
    Scenario,
    Session,
    default_session,
    session_from_env,
    set_default_session,
)

__all__ = [
    "Session", "Scenario",
    "default_session", "set_default_session", "session_from_env",
    "ResultCache", "cache_key", "code_fingerprint", "module_fingerprint",
    "DEFAULT_CACHE_DIR", "FORMAT_VERSION", "InFlightRegistry",
]
