"""Content-addressed result cache: hash (scenario, code version) -> RunResult.

A :class:`~repro.system.ScenarioSpec` is a pure description, so a run's
headline measurements are a pure function of

1. the **resolved** :class:`~repro.system.SystemConfig` (every spec
   override and sweep default, expanded — two specs that expand to the
   same config are the same scenario and share one cache entry),
2. the measurement knobs that change the reported numbers (``settle``,
   ``backend``, ``track_energy`` — the backends are cross-validated, not
   bit-identical, so they cache separately; ``trace`` never changes the
   numbers and is normalised out of the key — a traced run *upgrades*
   the shared entry with its waveform payload instead of forking it),
3. a **code-version fingerprint** of the simulation modules (kernel,
   analog models, controllers, scenario engine) — any solver edit
   invalidates every prior entry.

:func:`cache_key` hashes that tuple into a stable hex digest;
:class:`ResultCache` stores one entry per key under a cache root
(default ``.repro_cache/``) as an ``.npz`` (numeric payload, exact
float64 round-trip) plus a ``.json`` sidecar (controller label, spec
name, fingerprint — human-greppable provenance).  Corrupt or
half-written entries read as misses, never as wrong results.

The cache is shared by value, not by process: the parallel sharder's
per-lane results are written back individually, so a re-run of an
identical sweep at *any* worker count is served entirely from cache,
bit-identical to the cold run (``tests/session/test_session.py``).

Concurrency contract (the sweep server shares one cache directory
between many worker threads and processes):

* **Readers are lock-free.**  :meth:`ResultCache.load` takes no lock and
  tolerates every in-flight write: entries are published with atomic
  ``os.replace`` renames, so a reader sees either no entry, the previous
  whole entry, or the new whole entry — never a torn file.  A reader
  that catches an entry between its npz and json halves (they are
  replaced npz-first) can at worst observe a *miss* (e.g. a sidecar
  advertising a trace the rewritten npz no longer carries raises inside
  ``np.load`` and is swallowed), never a wrong result — both halves are
  derived from the same content-addressed key, so any whole-file
  combination serves identical numbers.
* **Stores never lock either.**  Two processes storing the same key
  race benignly: last rename wins, and both wrote the same content.
* **Compaction is single-writer.**  :meth:`prune` / :meth:`clear` (and
  the trace-strip pass inside prune) serialize on an advisory lockfile
  (``<root>/.writer.lock``) so two pruners cannot interleave their
  scan/delete cycles, and eviction re-checks each entry's mtime right
  before unlinking — an entry re-stored after the scan (fresh mtime) is
  skipped, so compaction never deletes a result another worker just
  wrote back (``tests/session/test_cache_concurrency.py``).
"""

from __future__ import annotations

import ast
import contextlib
import hashlib
import json
import os
import tempfile
import threading
import zipfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

try:                              # pragma: no cover - platform availability
    import fcntl
except ImportError:               # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from .. import obs
from ..scenarios.parallel import encode_config
from ..system import RunResult, SystemConfig

#: bump when the key payload or on-disk layout changes shape
#: (2: RunResult gained solver_ticks; keys cover the stepping knobs.
#: 3: entries may embed the traced TraceSet; fingerprint covers trace/.
#: 4: RunResult gained the kernel counters events_delivered /
#: clock_edges_simulated / clock_edges_skipped; keys cover ``gating``)
FORMAT_VERSION = 4

#: cache operating modes (Session's ``cache=`` argument)
MODES = ("readwrite", "readonly", "off")

#: default on-disk location, relative to the working directory
DEFAULT_CACHE_DIR = ".repro_cache"

#: entries under ``src/repro/`` whose source participates in the code
#: fingerprint — everything a RunResult's numbers *or stored waveforms*
#: depend on (``trace`` shapes the cached TraceSet payload).  Metrics,
#: experiments, STG, and the session layer itself are excluded: they
#: post-process or orchestrate, so editing them cannot change results.
FINGERPRINT_PATHS = ("system.py", "sim", "analog", "digital", "a2a",
                     "control", "scenarios", "trace")

_FLOAT_FIELDS = ("v_final", "peak_coil_current", "ripple", "coil_loss_w",
                 "efficiency")
_INT_FIELDS = ("ov_events", "metastable_events", "solver_ticks",
               "events_delivered", "clock_edges_simulated",
               "clock_edges_skipped")

#: npz member-name prefix for embedded TraceSet arrays (keeps them clear
#: of the scalar payload names above)
_TRACE_PREFIX = "trace_"


def module_fingerprint(source: str) -> str:
    """Digest of one module's *behaviour-relevant* source (16 hex chars).

    The module is parsed and hashed as its AST dump with every docstring
    stripped, so edits that cannot change simulation results — comments,
    whitespace, blank lines, docstrings — keep the digest (and therefore
    every cache key) stable, while any real code change produces a new
    one.  Unparseable source falls back to hashing the raw text.
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        payload = source.encode()
    else:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Module, ast.ClassDef,
                                     ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                del body[0]
        payload = ast.dump(tree, include_attributes=False).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash the source of every simulation module (16 hex chars).

    Computed once per process from the installed ``repro`` package's
    ``.py`` files; any code edit to the kernel, analog models,
    controllers, or scenario engine yields a new fingerprint and
    therefore all-new cache keys.  Each module contributes its
    :func:`module_fingerprint` — the docstring-stripped AST digest — so
    comment-only and docstring-only edits do *not* invalidate the cache.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in FINGERPRINT_PATHS:
        path = package_root / entry
        files = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for source in files:
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(
                module_fingerprint(source.read_text(encoding="utf-8"))
                .encode())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def cache_key(config: SystemConfig, *, settle: Optional[float] = None,
              backend: str = "vector", track_energy: bool = True,
              fingerprint: Optional[str] = None) -> str:
    """The content address of one scenario run (SHA-256 hex digest).

    ``config`` is the fully resolved :class:`SystemConfig` (spec
    overrides and sweep defaults already applied); ``trace`` is
    normalised out — it keeps waveforms but does not change the
    measured numbers.
    """
    encoded = encode_config(config)
    # lint: nokey(trace: normalised out; a traced run upgrades the entry)
    encoded["trace"] = False
    payload = {
        "format": FORMAT_VERSION,
        "config": encoded,
        "settle": settle,
        "backend": backend,
        "track_energy": bool(track_energy),
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Persistent npz/json store of :class:`RunResult` entries by key.

    ``mode``:

    ``"readwrite"``
        Serve hits and write back misses (the default).
    ``"readonly"``
        Serve hits, never touch the disk on a miss — for golden caches
        shared between CI shards or checked into artifact storage.
    ``"off"``
        Never read, never write (a disabled cache object; sessions
        usually represent this state as ``cache=None`` instead).

    ``max_bytes`` caps the on-disk size: every write prunes the store
    back under the cap in two passes, oldest-modification-first (an LRU
    approximation — loads do not touch mtimes, so "oldest" means
    least-recently *written*).  Pass one drops embedded trace payloads
    from entries — the scalar numbers survive, ``want_trace=True``
    loads of a stripped entry become misses (and a traced re-run
    re-upgrades it) — and only if the store is still over the cap does
    pass two evict whole entries.  Waveforms dominate entry sizes by
    ~100x, so capped caches degrade to scalar-only before losing
    results entirely.  ``None`` means unbounded, the historical
    behaviour.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 mode: str = "readwrite",
                 max_bytes: Optional[int] = None):
        if mode not in MODES:
            raise ValueError(
                f"cache mode must be one of {MODES}, got {mode!r}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes cannot be negative")
        self.root = Path(root)
        self.mode = mode
        self.max_bytes = max_bytes
        # Running on-disk size estimate for capped caches: initialised by
        # one directory scan on the first write, then advanced per store,
        # so store() only rescans (via prune) when the cap is actually
        # crossed instead of stat-ing every entry on every write.  The
        # server's worker threads share one cache object, so the estimate
        # gets its own in-process lock (the flock in _writer_lock is
        # inter-process and only covers compaction).
        self._approx_lock = threading.Lock()
        # lint: guarded_by(self._approx_lock: advanced by concurrent stores)
        self._approx_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def readable(self) -> bool:
        return self.mode in ("readwrite", "readonly")

    @property
    def writable(self) -> bool:
        return self.mode == "readwrite"

    def _paths(self, key: str) -> tuple:
        shard = self.root / key[:2]
        return shard / f"{key}.json", shard / f"{key}.npz"

    # ------------------------------------------------------------------
    def load(self, key: str,
             want_trace: bool = False) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        Missing, truncated, or otherwise unreadable entries are misses —
        the caller recomputes and (in ``readwrite`` mode) overwrites.

        ``want_trace=True`` additionally requires the entry to carry the
        run's waveforms: an entry written by an untraced run reads as a
        miss (the caller re-simulates with tracing and the write-back
        upgrades the entry — the key is shared, the scalar numbers are
        identical either way).  ``want_trace=False`` never attaches a
        stored trace, so a hit is bit-identical to a fresh untraced run.
        """
        if not self.readable:
            return None
        with obs.span("cache.load", key=key[:12],
                      metric="repro_cache_load_seconds") as sp:
            result = self._load_entry(key, want_trace)
            outcome = "hit" if result is not None else "miss"
            if sp is not None:
                sp["outcome"] = outcome
            obs.counter("repro_cache_load_total", outcome=outcome).inc()
        return result

    def _load_entry(self, key: str,
                    want_trace: bool = False) -> Optional[RunResult]:
        meta_path, npz_path = self._paths(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            if meta.get("format") != FORMAT_VERSION:
                return None
            trace_manifest = meta.get("trace")
            if want_trace and trace_manifest is None:
                return None
            trace = None
            with np.load(npz_path) as data:
                scalars = data["scalars"]
                counts = data["counts"]
                cycles = data["cycles"]
                if want_trace:
                    from ..trace import TraceSet
                    trace = TraceSet.from_arrays(trace_manifest, data,
                                                 prefix=_TRACE_PREFIX)
            kwargs: Dict[str, Any] = {
                name: float(scalars[i]) for i, name in enumerate(_FLOAT_FIELDS)
            }
            kwargs.update({
                name: int(counts[i]) for i, name in enumerate(_INT_FIELDS)
            })
            return RunResult(controller=meta["controller"],
                             cycles=[int(c) for c in cycles],
                             trace=trace, **kwargs)
        except (OSError, ValueError, KeyError, EOFError, IndexError,
                zipfile.BadZipFile):
            # includes truncated npz archives (BadZipFile is not an
            # OSError) and short reads inside np.load
            return None

    def store(self, key: str, result: RunResult,
              meta: Optional[Mapping[str, Any]] = None) -> bool:
        """Write ``result`` under ``key``; returns False in read-only
        (or off) mode.  Writes are atomic (tmp file + ``os.replace``),
        so a concurrent reader sees either no entry or a whole one.
        A traced result embeds its :class:`~repro.trace.TraceSet` arrays
        in the npz (manifest in the json sidecar), so traced sweeps can
        be served from cache without re-simulating."""
        if not self.writable:
            return False
        with obs.span("cache.store", key=key[:12],
                      traced=result.trace is not None,
                      metric="repro_cache_store_seconds"):
            self._store_entry(key, result, meta)
        obs.counter("repro_cache_store_total").inc()
        return True

    def _store_entry(self, key: str, result: RunResult,
                     meta: Optional[Mapping[str, Any]]) -> None:
        meta_path, npz_path = self._paths(key)
        meta_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": FORMAT_VERSION,
            "controller": result.controller,
            "code": code_fingerprint(),
            "meta": dict(meta or {}),
        }
        trace_arrays: Dict[str, Any] = {}
        if result.trace is not None:
            payload["trace"], trace_arrays = result.trace.to_arrays(
                prefix=_TRACE_PREFIX)
        self._atomic_write(
            npz_path,
            lambda fh: np.savez(
                fh,
                scalars=np.array([getattr(result, f) for f in _FLOAT_FIELDS],
                                 dtype=np.float64),
                counts=np.array([getattr(result, f) for f in _INT_FIELDS],
                                dtype=np.int64),
                cycles=np.asarray(result.cycles, dtype=np.int64),
                **trace_arrays))
        self._atomic_write(
            meta_path,
            lambda fh: fh.write(
                json.dumps(payload, sort_keys=True, indent=1).encode()))
        if self.max_bytes is not None:
            with self._approx_lock:
                if self._approx_bytes is None:
                    # first capped write this process: one scan (covers
                    # the entry just written and anything from earlier
                    # processes)
                    self._approx_bytes = self.size_bytes()
                else:
                    try:
                        self._approx_bytes += (meta_path.stat().st_size
                                               + npz_path.stat().st_size)
                    except OSError:
                        pass   # concurrently evicted; next prune rescans
                need_prune = self._approx_bytes > self.max_bytes
            # prune() takes the inter-process writer flock; never hold
            # the in-process estimate lock across that wait
            if need_prune:
                self.prune()

    @contextlib.contextmanager
    def _writer_lock(self):
        """Advisory inter-process lock serializing the compaction paths
        (``prune`` / ``clear``).  Plain stores and loads never take it —
        they are safe under the atomic-replace protocol on their own.
        Uses ``fcntl.flock`` on a lockfile inside the cache root (held
        for the duration of the ``with`` block, released even on error);
        on platforms without ``fcntl`` the lock degrades to a no-op,
        which only loses the pruner-vs-pruner serialization, not
        correctness of any individual operation."""
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / ".writer.lock",
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    @staticmethod
    def _atomic_write(path: Path, write) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of every complete entry currently on disk."""
        if not self.root.is_dir():
            return
        for meta_path in sorted(self.root.glob("*/*.json")):
            if meta_path.with_suffix(".npz").exists():
                yield meta_path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total on-disk size of every entry file (json + npz)."""
        return sum(size for _, _, size in self._entries())

    def _entries(self) -> List[Tuple[float, str, int]]:
        """Every complete entry as ``(mtime, key, size_bytes)``."""
        entries = []
        if not self.root.is_dir():
            return entries
        # sorted: glob order is filesystem-dependent, and mtime ties
        # between entries would otherwise break in directory order
        for meta_path in sorted(self.root.glob("*/*.json")):
            npz_path = meta_path.with_suffix(".npz")
            try:
                meta_stat = meta_path.stat()
                npz_stat = npz_path.stat()
            except OSError:
                continue   # half-written or concurrently evicted
            entries.append((max(meta_stat.st_mtime, npz_stat.st_mtime),
                            meta_path.stem,
                            meta_stat.st_size + npz_stat.st_size))
        return entries

    def _strip_trace(self, key: str) -> int:
        """Drop the embedded trace payload from one entry, keeping the
        scalar numbers (the entry reads exactly like an untraced write:
        plain loads hit, ``want_trace=True`` loads miss, and a traced
        re-run upgrades it again).  The entry's mtime is preserved — a
        strip is reclamation, not a user write, so it must not make the
        entry look recently used.  Returns the bytes reclaimed (0 for
        untraced, missing, or unreadable entries).  Only called from
        :meth:`prune`, i.e. under the single-writer lockfile; the
        rewrite itself stays atomic-replace so lock-free readers are
        unaffected."""
        meta_path, npz_path = self._paths(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            if meta.get("format") != FORMAT_VERSION \
                    or meta.get("trace") is None:
                return 0
            meta_stat = meta_path.stat()
            npz_stat = npz_path.stat()
            old_size = meta_stat.st_size + npz_stat.st_size
            with np.load(npz_path) as data:
                arrays = {name: data[name] for name in data.files
                          if not name.startswith(_TRACE_PREFIX)}
            del meta["trace"]
            self._atomic_write(
                npz_path, lambda fh: np.savez(fh, **arrays))
            self._atomic_write(
                meta_path,
                lambda fh: fh.write(
                    json.dumps(meta, sort_keys=True, indent=1).encode()))
            os.utime(npz_path, (npz_stat.st_atime, npz_stat.st_mtime))
            os.utime(meta_path, (meta_stat.st_atime, meta_stat.st_mtime))
            return max(0, old_size - meta_path.stat().st_size
                       - npz_path.stat().st_size)
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile):
            return 0   # unreadable entries are pass two's problem

    def prune(self, max_bytes: Optional[int] = None,
              strip_traces: bool = True) -> int:
        """Shrink the store under ``max_bytes`` (defaults to the cache's
        own cap), oldest mtime first, in two passes: first drop trace
        payloads from entries (:meth:`_strip_trace` — the scalar results
        survive), then, only if still over the cap, evict whole entries.
        Returns the number of whole entries removed (stripped entries
        still count as present).  ``strip_traces=False`` restores the
        historical evict-only behaviour.  A ``readonly``/``off`` cache
        never prunes.

        Concurrency: the whole pass runs under the single-writer
        lockfile (two pruners serialize), and every eviction re-checks
        the entry's mtime immediately before unlinking — a concurrent
        ``store`` refreshes the mtime, so an entry re-written after the
        scan is no longer "oldest" and is skipped rather than deleted
        mid-store."""
        if not self.writable:
            return 0
        limit = max_bytes if max_bytes is not None else self.max_bytes
        if limit is None:
            return 0
        with self._writer_lock():
            return self._prune_locked(limit, strip_traces)

    def _prune_locked(self, limit: int, strip_traces: bool) -> int:
        entries = sorted(self._entries())
        total = sum(size for _, _, size in entries)
        if strip_traces:
            for _mtime, key, _size in entries:
                if total <= limit:
                    break
                total -= self._strip_trace(key)
        removed = 0
        if total > limit:
            # re-scan: pass one rewrote entry files and their sizes
            entries = sorted(self._entries())
            total = sum(size for _, _, size in entries)
            for mtime, key, size in entries:
                if total <= limit:
                    break
                meta_path, npz_path = self._paths(key)
                try:
                    current = max(meta_path.stat().st_mtime,
                                  npz_path.stat().st_mtime)
                except OSError:
                    total -= size    # concurrently evicted elsewhere
                    continue
                if current > mtime:
                    # re-stored since the scan: fresh again, not evictable
                    continue
                for path in (meta_path, npz_path):
                    try:
                        path.unlink()
                    except OSError:
                        pass
                total -= size
                removed += 1
        with self._approx_lock:
            self._approx_bytes = total   # the scan just measured the truth
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.  Runs
        under the single-writer lockfile like :meth:`prune` (a clear is
        compaction to zero)."""
        removed = 0
        with self._writer_lock():
            for key in list(self.keys()):
                meta_path, npz_path = self._paths(key)
                for path in (meta_path, npz_path):
                    try:
                        path.unlink()
                    except OSError:
                        continue
                removed += 1
            with self._approx_lock:
                self._approx_bytes = None
        return removed

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, mode={self.mode!r})"
