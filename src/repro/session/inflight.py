"""In-flight cache-key registry: compute each unique config once.

The content-addressed cache dedupes *completed* work; this registry
dedupes work that is still running.  When two concurrent
:meth:`repro.session.Session.sweep` calls (the sweep server's job
threads) both miss the cache on the same key, the first to
:meth:`claim` it becomes the **owner** and simulates; the other gets the
owner's event back, waits for it, and re-reads the entry the owner wrote
— so overlapping grids submitted by independent clients collapse to a
single simulation per unique config.

The registry is purely in-process (``threading``): cross-process dedupe
still happens through the on-disk cache, just without the in-flight
window.  Claims are always released in ``finally`` blocks by the owner
(success or failure), so waiters never deadlock; a waiter that wakes to
a still-missing entry (the owner failed, or the cache is not writable)
falls back to computing the lane itself.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class InFlightRegistry:
    """Key -> owner-completion event map with atomic claim semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # lint: guarded_by(self._lock: claimed/released from sweep threads)
        self._claims: Dict[str, threading.Event] = {}

    def claim(self, key: str) -> Optional[threading.Event]:
        """Try to become the owner of ``key``.

        Returns ``None`` when the claim succeeded — the caller must
        compute the result and call :meth:`release` when the cache entry
        is published (or the attempt failed).  Otherwise returns the
        current owner's :class:`threading.Event` to wait on.
        """
        with self._lock:
            event = self._claims.get(key)
            if event is None:
                self._claims[key] = threading.Event()
                return None
            return event

    def release(self, key: str) -> None:
        """Drop the claim on ``key`` and wake every waiter.  Idempotent:
        releasing an unclaimed key is a no-op (the owner's ``finally``
        and its per-lane landing hook may both call this)."""
        with self._lock:
            event = self._claims.pop(key, None)
        if event is not None:
            event.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._claims)
