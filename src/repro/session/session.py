"""The unified simulation front door: :class:`Session`.

One object owns the three execution policies that used to be scattered
across ``BuckSystem.run`` kwargs, ``run_sweep`` kwargs, and per-driver
``workers=`` plumbing:

- **backend** — ``"vector"`` (batched lock-step NumPy) or ``"scalar"``
  (sequential reference path);
- **workers** — process-pool sharding of independent batches;
- **cache** — the content-addressed result cache
  (:mod:`repro.session.cache`): ``"readwrite"``, ``"readonly"``, or
  ``"off"``, with hit/miss counters surfaced on the session.

>>> from repro import Session
>>> session = Session(workers=4, cache="readwrite")
>>> points = session.sweep(sweep)          # cold: simulated, written back
>>> points = session.sweep(sweep)          # hot: served from .repro_cache/
>>> session.cache_hits, session.cache_misses
(N, N)

Experiment drivers (``run_fig6`` / ``run_fig7*`` / ``run_table1`` and the
ablation benches) all accept ``session=``; the module-level
:func:`default_session` backs the legacy ``run_sweep`` /
``BuckSystem.run`` deprecation shims.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, TypeVar, Union)

from .. import obs
from ..analog.stepping import GATING_MODES, STEPPING_MODES
from ..scenarios.engine import Specs, SweepPoint, _as_specs, _execute_sweep
from ..scenarios.parallel import pool_map, workers_from_env
from ..scenarios.spec import ScenarioSpec
from ..system import BuckSystem, RunResult, SystemConfig
from .cache import DEFAULT_CACHE_DIR, ResultCache, cache_key, code_fingerprint
from .inflight import InFlightRegistry

T = TypeVar("T")
R = TypeVar("R")

#: anything Session.run/build accept as "one scenario"
Scenario = Union[ScenarioSpec, SystemConfig, Mapping[str, Any]]


class Session:
    """Backend, worker, and cache policy for every simulation it runs.

    Parameters
    ----------
    backend:
        ``"vector"`` (default) or ``"scalar"``.
    workers:
        Shard independent batches across this many worker processes
        (``None``/``0``/``1``: inline).  Results are bit-identical to
        the inline path, in spec order.
    cache:
        ``"readwrite"`` / ``"readonly"`` / ``"off"``, a ready
        :class:`ResultCache`, or ``None`` to resolve the mode from the
        ``REPRO_CACHE`` environment variable (``off`` when unset).
    cache_dir:
        Cache root for string modes (default: ``REPRO_CACHE_DIR`` or
        ``.repro_cache/``).
    cache_max_bytes:
        On-disk size cap for string cache modes; every write-back prunes
        the store under it, oldest entries first.  ``None`` resolves the
        ``REPRO_CACHE_MAX_MB`` environment variable (unset: unbounded).
    stepping:
        Default solver stepping mode applied to every scenario that does
        not override it: ``"fixed"`` (the default) or ``"adaptive"``
        (error-controlled micro-steps with event-boundary snapping; see
        :mod:`repro.analog.stepping`).  The stepping mode and tolerances
        are part of each scenario's cache key, so fixed and adaptive
        results never collide.
    gating:
        Default clock-gating mode applied to every scenario that does
        not override it: ``"auto"`` (skip provably idle controller
        clock edges in one fast-forward jump — semantics preserving) or
        ``"off"`` (deliver every edge).  Results are bit-identical
        either way; only the kernel event/edge counters differ.
    defaults:
        Config fields applied below every spec's overrides.
    max_lanes_per_shard:
        Cap on lanes per executed batch (see the engine docs).
    """

    def __init__(self, backend: str = "vector",
                 workers: Optional[int] = None,
                 cache: Union[str, ResultCache, None] = None,
                 cache_dir: Optional[str] = None,
                 cache_max_bytes: Optional[int] = None,
                 stepping: Optional[str] = None,
                 gating: Optional[str] = None,
                 defaults: Optional[Mapping[str, Any]] = None,
                 max_lanes_per_shard: Optional[int] = None):
        if backend not in ("vector", "scalar"):
            raise ValueError("backend must be 'vector' or 'scalar'")
        if workers is not None and workers < 0:
            raise ValueError("workers cannot be negative")
        if stepping is not None and stepping not in STEPPING_MODES:
            raise ValueError(
                f"stepping must be one of {STEPPING_MODES}, got {stepping!r}")
        if gating is not None and gating not in GATING_MODES:
            raise ValueError(
                f"gating must be one of {GATING_MODES}, got {gating!r}")
        self.backend = backend
        self.workers = workers
        self.defaults: Dict[str, Any] = dict(defaults or {})
        if stepping is not None:
            self.defaults.setdefault("stepping", stepping)
        if gating is not None:
            self.defaults.setdefault("gating", gating)
        self.stepping = stepping
        self.gating = gating
        self.max_lanes_per_shard = max_lanes_per_shard
        self.cache = self._resolve_cache(cache, cache_dir, cache_max_bytes)
        # Sessions are thread-shareable: the sweep server runs many jobs
        # against one session, so counter updates take a lock and misses
        # coordinate through the in-flight registry (each unique uncached
        # key is computed by exactly one concurrent sweep).
        self._counter_lock = threading.Lock()
        #: scenarios served from / recomputed past the cache, cumulative
        # lint: guarded_by(self._counter_lock: bumped by concurrent sweeps)
        self.cache_hits = 0
        # lint: guarded_by(self._counter_lock: bumped by concurrent sweeps)
        self.cache_misses = 0
        #: lanes served by waiting on a *concurrent* sweep's in-flight
        #: computation of the same key (a subset of ``cache_hits``)
        # lint: guarded_by(self._counter_lock: bumped by concurrent sweeps)
        self.inflight_waits = 0
        # Per-RunResult kernel/solver counters, aggregated per landed
        # lane so stats pollers (GET /v1/stats) see sweep-wide totals
        # without walking results.  Same lock as the cache counters:
        # one acquisition snapshots everything consistently.
        # lint: guarded_by(self._counter_lock: bumped per landed lane)
        self.sweeps_total = 0
        # lint: guarded_by(self._counter_lock: bumped per landed lane)
        self.lanes_total = 0
        # lint: guarded_by(self._counter_lock: bumped per landed lane)
        self.solver_ticks_total = 0
        # lint: guarded_by(self._counter_lock: bumped per landed lane)
        self.events_delivered_total = 0
        # lint: guarded_by(self._counter_lock: bumped per landed lane)
        self.clock_edges_simulated_total = 0
        # lint: guarded_by(self._counter_lock: bumped per landed lane)
        self.clock_edges_skipped_total = 0
        self._inflight = InFlightRegistry()
        # Observability artifacts of the most recent sweep (guarded by
        # their own lock: a stats poller must never contend with the
        # counter hot path).
        self._obs_lock = threading.Lock()
        # lint: guarded_by(self._obs_lock: published at sweep end)
        self._last_spans: List[obs.Span] = []
        # lint: guarded_by(self._obs_lock: published at sweep end)
        self._last_receipt: Optional[Dict[str, Any]] = None

    @staticmethod
    def _resolve_cache(cache: Union[str, ResultCache, None],
                       cache_dir: Optional[str],
                       cache_max_bytes: Optional[int] = None
                       ) -> Optional[ResultCache]:
        if isinstance(cache, ResultCache):
            return cache if cache.mode != "off" else None
        mode = cache
        if mode is None:
            mode = os.environ.get("REPRO_CACHE", "").strip() or "off"
        if mode == "off":
            return None
        root = (cache_dir or os.environ.get("REPRO_CACHE_DIR", "").strip()
                or DEFAULT_CACHE_DIR)
        max_bytes = cache_max_bytes
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_MB", "").strip()
            if raw:
                max_mb = float(raw)
                if max_mb < 0:
                    raise ValueError(
                        f"REPRO_CACHE_MAX_MB cannot be negative (got {raw})")
                max_bytes = int(max_mb * 1024 * 1024)
        return ResultCache(root=root, mode=mode, max_bytes=max_bytes)

    # ------------------------------------------------------------------
    # Scenario coercion
    # ------------------------------------------------------------------
    def _as_spec(self, scenario: Scenario) -> ScenarioSpec:
        if isinstance(scenario, ScenarioSpec):
            return scenario
        if isinstance(scenario, SystemConfig):
            overrides = {name: getattr(scenario, name)
                         for name in SystemConfig.__dataclass_fields__}
            return ScenarioSpec(name="config", overrides=overrides)
        if isinstance(scenario, Mapping):
            return ScenarioSpec(name="adhoc", overrides=dict(scenario))
        raise TypeError(
            f"expected a ScenarioSpec, SystemConfig, or override mapping, "
            f"got {type(scenario).__name__}")

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, *, settle: Optional[float] = None,
            trace: bool = False) -> RunResult:
        """Run one scenario (spec / config / override mapping) and return
        its :class:`RunResult`, served from cache when possible."""
        [point] = self.sweep([self._as_spec(scenario)], settle=settle,
                             trace=trace)
        return point.result

    def _count(self, hits: int = 0, misses: int = 0, waits: int = 0) -> None:
        with self._counter_lock:
            self.cache_hits += hits
            self.cache_misses += misses
            self.inflight_waits += waits
        if waits:
            obs.counter("repro_inflight_waits_total").inc(waits)

    def _land_stats(self, result: RunResult) -> None:
        """Fold one landed lane's kernel/solver counters into the
        session aggregates (one lock acquisition; every landing path —
        cache hit, fresh compute, in-flight wait, no-cache — funnels
        through here exactly once per lane)."""
        with self._counter_lock:
            self.lanes_total += 1
            self.solver_ticks_total += result.solver_ticks
            self.events_delivered_total += result.events_delivered
            self.clock_edges_simulated_total += result.clock_edges_simulated
            self.clock_edges_skipped_total += result.clock_edges_skipped

    def sweep(self, specs: Specs, *, settle: Optional[float] = None,
              trace: bool = False, keep: bool = False,
              track_energy: bool = True,
              on_result: Optional[Callable[[int, SweepPoint], None]] = None
              ) -> List[SweepPoint]:
        """Run every scenario and return one :class:`SweepPoint` per
        spec, in spec order.

        Cached entries are looked up per lane before anything executes;
        only the misses are simulated (inline or sharded across
        ``self.workers``) and, in ``readwrite`` mode, written back per
        lane — so a repeated sweep is served entirely from cache at any
        worker count, bit-identical to the cold run.  ``trace=True``
        attaches each run's :class:`~repro.trace.TraceSet` to its
        result; traced results shard across workers and cache like any
        other (a traced request misses on an entry written without
        waveforms and upgrades it on write-back).  ``trace`` is a
        *default*: a ``trace`` override on a spec or config wins over
        it, and execution and cache lookup both follow the resolved
        per-lane value.  ``keep=True`` bypasses the cache: live handles
        cannot be rehydrated from disk.

        ``on_result(index, point)`` is invoked on the calling thread as
        each lane *lands* — immediately for cache hits, then per lane as
        fresh results complete (batch order inline, shard completion
        order with ``workers=N``); a lane's cache write-back happens
        before its callback, so a landed lane's entry is already
        servable by key.  The hook observes progress only: the returned
        list is bit-identical with or without it, and an exception it
        raises aborts the sweep without corrupting the cache.

        Sessions are thread-shareable.  Concurrent ``sweep`` calls on
        one session (the sweep server's job threads) dedupe in-flight
        work through a per-session registry: each unique uncached key is
        claimed by exactly one call, the others wait and are then served
        from the entry the owner wrote back (counted as hits, with
        ``inflight_waits`` tracking the subset that waited).  Duplicate
        keys *within* one sweep are likewise computed once.  A waiter
        whose owner failed — or whose entry is unusable (not written
        back, or written without the waveforms this lane needs) — falls
        back to computing the lane itself.
        """
        spec_list = _as_specs(specs)
        if not obs.enabled():
            points, _, _ = self._sweep_body(
                spec_list, settle=settle, trace=trace, keep=keep,
                track_energy=track_energy, on_result=on_result,
                clock=None, observe=None)
            return points
        with obs.ensure_trace() as tr:
            clock = obs.PhaseClock()
            t0 = obs.now()
            lane_log: Dict[int, float] = {}

            def _observe(i: int, point: SweepPoint) -> None:
                # per-lane landing offset from sweep start (coordinator
                # thread; covers every lane at any worker count)
                lane_log[i] = obs.now() - t0

            with obs.span("session.sweep", lanes=len(spec_list),
                          backend=self.backend, workers=self.workers or 0,
                          metric="repro_sweep_seconds"):
                points, keys, waits = self._sweep_body(
                    spec_list, settle=settle, trace=trace, keep=keep,
                    track_energy=track_energy, on_result=on_result,
                    clock=clock, observe=_observe)
                clock.tick("finalize")
                self._finish_receipt(tr, clock, spec_list, points, keys,
                                     waits, lane_log)
            with self._obs_lock:
                self._last_spans = tr.spans()
        obs.gauge("repro_workers").set(self.workers or 0)
        return points

    def _sweep_body(self, spec_list: List[ScenarioSpec], *,
                    settle: Optional[float], trace: bool, keep: bool,
                    track_energy: bool,
                    on_result: Optional[Callable[[int, SweepPoint], None]],
                    clock: Optional[obs.PhaseClock],
                    observe: Optional[Callable[[int, SweepPoint], None]]
                    ) -> Tuple[List[SweepPoint], Optional[List[str]], int]:
        """The sweep core: returns ``(points, cache keys or None,
        in-flight wait count)`` for the observability shell.  ``clock``
        segments the phases; both hooks are ``None`` when the kill
        switch is off, leaving this path free of clock reads."""

        def tick(name: str) -> None:
            if clock is not None:
                clock.tick(name)

        tick("plan")
        with self._counter_lock:
            self.sweeps_total += 1
        obs.counter("repro_sweeps_total").inc()
        configs = [spec.to_config(trace=trace, **self.defaults)
                   for spec in spec_list]

        user_cb = on_result

        def landed(i: int, point: SweepPoint) -> None:
            # every landing path funnels through here exactly once per
            # lane: session aggregates always, obs hooks when enabled,
            # then the caller's hook
            self._land_stats(point.result)
            obs.counter("repro_lanes_total",
                        source="cache" if point.cached else "computed").inc()
            if observe is not None:
                observe(i, point)
            if user_cb is not None:
                user_cb(i, point)

        on_result = landed

        cache = self.cache if (self.cache is not None and not keep) else None
        if cache is None:
            tick("execute")
            return _execute_sweep(
                spec_list, configs, backend=self.backend, settle=settle,
                keep=keep, track_energy=track_energy, workers=self.workers,
                max_lanes_per_shard=self.max_lanes_per_shard,
                on_result=on_result), None, 0

        points: List[Optional[SweepPoint]] = [None] * len(spec_list)
        keys: List[str] = [
            cache_key(cfg, settle=settle, backend=self.backend,
                      track_energy=track_energy) for cfg in configs]

        def _serve(i: int, result: RunResult) -> None:
            points[i] = SweepPoint(spec_list[i], configs[i], result,
                                   cached=True, key=keys[i])
            if on_result is not None:
                on_result(i, points[i])

        tick("lookup")
        misses: List[int] = []
        for i, cfg in enumerate(configs):
            # the per-lane *resolved* trace field governs execution
            # (a spec/config override wins over the sweep-level
            # default), so the cache lookup must follow it too
            result = cache.load(keys[i], want_trace=cfg.trace)
            if result is not None:
                self._count(hits=1)
                _serve(i, result)
            else:
                misses.append(i)
        if not misses:
            return points, keys, 0  # type: ignore[return-value]

        # Partition the misses.  Dedupe identity is (key, resolved trace):
        # trace is normalised out of the cache key, but a traced lane
        # cannot be served by an untraced computation of the same config.
        leaders: List[int] = []
        followers: Dict[int, List[int]] = {}
        waiters: List[int] = []
        events: Dict[str, threading.Event] = {}
        leader_of: Dict[Any, int] = {}
        for i in misses:
            ident = (keys[i], configs[i].trace)
            if ident in leader_of:
                followers.setdefault(leader_of[ident], []).append(i)
                continue
            if keys[i] in events:
                waiters.append(i)
                continue
            event = self._inflight.claim(keys[i])
            if event is None:
                obs.counter("repro_inflight_claims_total").inc()
                leader_of[ident] = i
                leaders.append(i)
            else:
                events[keys[i]] = event
                waiters.append(i)

        def _execute(indices: Sequence[int], landed) -> None:
            _execute_sweep([spec_list[i] for i in indices],
                           [configs[i] for i in indices],
                           backend=self.backend, settle=settle, keep=keep,
                           track_energy=track_energy, workers=self.workers,
                           max_lanes_per_shard=self.max_lanes_per_shard,
                           on_result=landed)

        tick("execute")
        try:
            if leaders:
                self._count(misses=len(leaders))

                def _fresh(pos: int, point: SweepPoint) -> None:
                    i = leaders[pos]
                    point.key = keys[i]
                    points[i] = point
                    try:
                        if cache.writable:
                            cache.store(keys[i], point.result,
                                        meta={"spec": spec_list[i].name})
                    finally:
                        # wake concurrent sweeps waiting on this key (the
                        # entry — if writable — is already on disk)
                        self._inflight.release(keys[i])
                    if on_result is not None:
                        on_result(i, point)
                    for dup in followers.get(i, ()):
                        self._count(hits=1)
                        _serve(dup, point.result)

                _execute(leaders, _fresh)
        finally:
            # release claims for lanes that never landed (mid-sweep
            # failure), so waiters in other threads fall back instead of
            # blocking forever
            for ident, i in leader_of.items():
                if points[i] is None:
                    self._inflight.release(keys[i])

        waited = 0
        recompute: List[int] = []
        if waiters:
            tick("wait")
        for i in waiters:
            with obs.span("inflight.wait", key=keys[i][:12]):
                events[keys[i]].wait()
            result = cache.load(keys[i], want_trace=configs[i].trace)
            if result is not None:
                self._count(hits=1, waits=1)
                waited += 1
                _serve(i, result)
            else:
                recompute.append(i)

        if recompute:
            tick("execute")
            # the in-flight owner failed or its entry is unusable for
            # this lane: compute locally, unconditionally (no second
            # claim round — correctness over a rare duplicate compute)
            self._count(misses=len(recompute))

            def _again(pos: int, point: SweepPoint) -> None:
                i = recompute[pos]
                point.key = keys[i]
                points[i] = point
                if cache.writable:
                    cache.store(keys[i], point.result,
                                meta={"spec": spec_list[i].name})
                if on_result is not None:
                    on_result(i, point)

            _execute(recompute, _again)
        return points, keys, waited  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Observability: receipts + trace export
    # ------------------------------------------------------------------
    def _finish_receipt(self, tr: obs.Trace, clock: obs.PhaseClock,
                        spec_list: List[ScenarioSpec],
                        points: List[SweepPoint],
                        keys: Optional[List[str]], waits: int,
                        lane_log: Dict[int, float]) -> Dict[str, Any]:
        """Assemble (and, when the cache is writable, persist) this
        sweep's receipt; attach it to the trace so a serve job wrapping
        the sweep gets its own receipt race-free."""
        total = clock.stop()
        hits = sum(1 for p in points if p.cached)
        counters = {"solver_ticks": 0, "events_delivered": 0,
                    "clock_edges_simulated": 0, "clock_edges_skipped": 0}
        for point in points:
            for name in counters:
                counters[name] += getattr(point.result, name)
        lanes = [{"index": i,
                  "spec": spec_list[i].name,
                  "key": keys[i] if keys is not None else None,
                  "cached": point.cached,
                  "landed_s": lane_log.get(i)}
                 for i, point in enumerate(points)]
        sweep_id = obs.sweep_id_for(
            keys if keys is not None else [s.name for s in spec_list])
        root: Optional[Path] = None
        path: Optional[str] = None
        if self.cache is not None and self.cache.writable:
            root = Path(self.cache.root)
            path = str(obs.receipt_path(root, sweep_id))
        receipt = obs.build_receipt(
            sweep_id=sweep_id, backend=self.backend, workers=self.workers,
            specs=[s.name for s in spec_list], keys=keys,
            fingerprint=code_fingerprint(),
            cache_stats={
                "mode": self.cache.mode if self.cache is not None else "off",
                "hits": hits, "misses": len(points) - hits,
                "inflight_waits": waits,
                "hit_ratio": hits / len(points) if points else 0.0,
            },
            phases=clock.phases, wall_s=total, counters=counters,
            lanes=lanes,
            artifacts={
                "cache_root": str(root) if root is not None else None,
                "receipt_path": path,
            })
        if root is not None:
            with obs.span("receipt.write", sweep_id=sweep_id):
                obs.write_receipt(root, receipt)
        tr.receipt = receipt
        with self._obs_lock:
            self._last_receipt = receipt
        return receipt

    def last_receipt(self) -> Optional[Dict[str, Any]]:
        """The most recent sweep's receipt (``None`` before any sweep or
        with ``REPRO_OBS=off``): resolved-config hashes, code
        fingerprint, cache hit ratio, per-phase wall times, worker
        count, and artifact paths.  See README "Observability"."""
        with self._obs_lock:
            return self._last_receipt

    def last_trace_spans(self) -> List[obs.Span]:
        """The most recent sweep's spans (coordinator + adopted worker
        spans), empty with ``REPRO_OBS=off``."""
        with self._obs_lock:
            return list(self._last_spans)

    def last_trace_events(self) -> List[Dict[str, Any]]:
        """The most recent sweep's timeline as Chrome trace-event JSON
        objects — ``json.dump`` the list and load it in
        ``chrome://tracing`` or Perfetto."""
        return obs.chrome_trace_events(self.last_trace_spans())

    # ------------------------------------------------------------------
    # Waveform-level access (live systems, never cached)
    # ------------------------------------------------------------------
    def build(self, scenario: Scenario, trace: bool = True) -> BuckSystem:
        """Construct a live :class:`BuckSystem` for waveform-level work
        (probes, VCD export, custom stimulus).  A given
        :class:`SystemConfig` is used as-is; specs/mappings are expanded
        over the session defaults with ``trace`` on by default."""
        if isinstance(scenario, SystemConfig):
            config = scenario
        else:
            config = self._as_spec(scenario).to_config(trace=trace,
                                                       **self.defaults)
        return BuckSystem(config)

    def run_system(self, system: BuckSystem,
                   duration: Optional[float] = None,
                   settle: Optional[float] = None) -> RunResult:
        """Execute an already-built system to completion and measure it.

        Never cached: a prebuilt system may have been advanced or
        modified, so its state is not content-addressable."""
        return system.measure(duration=duration, settle=settle)

    # ------------------------------------------------------------------
    # Generic sharding (Table I-style custom harnesses)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Order-preserving map over the session's worker pool (inline
        when ``workers`` is unset); ``fn`` and items must be picklable."""
        return pool_map(fn, items, self.workers)

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Any]:
        """Counters plus the cache location/mode, for logging and the
        sweep server's ``GET /v1/stats``.  *Every* counter — cache,
        in-flight, and the per-lane kernel/solver aggregates — is read
        in one acquisition of the counter lock, so a stats poll racing a
        sweep sees one consistent snapshot, never a hits/misses pair
        from two different moments."""
        with self._counter_lock:
            hits, misses = self.cache_hits, self.cache_misses
            waits = self.inflight_waits
            sweeps, lanes = self.sweeps_total, self.lanes_total
            ticks = self.solver_ticks_total
            delivered = self.events_delivered_total
            edges_sim = self.clock_edges_simulated_total
            edges_skip = self.clock_edges_skipped_total
        return {
            "hits": hits,
            "misses": misses,
            "inflight_waits": waits,
            "mode": self.cache.mode if self.cache is not None else "off",
            "root": str(self.cache.root) if self.cache is not None else None,
            "sweeps": sweeps,
            "lanes": lanes,
            "solver_ticks": ticks,
            "events_delivered": delivered,
            "clock_edges_simulated": edges_sim,
            "clock_edges_skipped": edges_skip,
        }

    def __repr__(self) -> str:
        cache = self.cache.mode if self.cache is not None else "off"
        return (f"Session(backend={self.backend!r}, workers={self.workers!r}, "
                f"cache={cache!r})")


# ---------------------------------------------------------------------------
# The default session (backs the legacy shims and driver defaults)
# ---------------------------------------------------------------------------
_default: Optional[Session] = None


def default_session() -> Session:
    """The process-wide default session (created on first use; cache mode
    from ``REPRO_CACHE``, workers inline)."""
    global _default
    if _default is None:
        _default = Session()
    return _default


def set_default_session(session: Optional[Session]) -> Optional[Session]:
    """Replace the default session (``None`` resets to lazy re-creation);
    returns the previous one."""
    global _default
    previous = _default
    _default = session
    return previous


def session_from_env(backend: str = "vector") -> Session:
    """A session configured from the environment — ``REPRO_SWEEP_WORKERS``
    for sharding, ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` /
    ``REPRO_CACHE_MAX_MB`` for caching, ``REPRO_STEPPING`` for the
    default solver stepping mode, and ``REPRO_GATING`` for the clock
    gating mode — the one-liner used by the benchmark harnesses."""
    stepping = os.environ.get("REPRO_STEPPING", "").strip() or None
    gating = os.environ.get("REPRO_GATING", "").strip() or None
    return Session(backend=backend, workers=workers_from_env(),
                   stepping=stepping, gating=gating)
