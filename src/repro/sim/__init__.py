"""Discrete-event simulation kernel (signals, processes, tracing).

This package is the substrate every other layer builds on:

- :class:`~repro.sim.core.Simulator` — the event queue;
- :class:`~repro.sim.signal.Signal` — boolean nets with edge callbacks;
- :class:`~repro.sim.signal.AnalogProbe` — real-valued waveform recorders;
- :class:`~repro.sim.process.Process` — generator-based concurrent processes
  with ``delay`` / ``wait_rise`` / ``wait_any`` commands;
- :func:`~repro.sim.vcd.dump_vcd` — VCD export for waveform viewers.
"""

from .core import Event, SimulationError, Simulator
from .process import (
    Command,
    Process,
    delay,
    fork,
    wait_any,
    wait_edge,
    wait_fall,
    wait_high,
    wait_low,
    wait_rise,
)
from .signal import ANY, FALL, RISE, AnalogProbe, Signal
from .units import (
    A,
    GHZ,
    HZ,
    KHZ,
    MA,
    MHZ,
    MS,
    MV,
    NS,
    OHM,
    PS,
    S,
    UF,
    UH,
    US,
    UW,
    V,
    fmt_si,
    fmt_time,
    frequency_of,
    period_of,
)
from .vcd import dump_vcd, write_vcd

__all__ = [
    "Simulator", "Event", "SimulationError",
    "Signal", "AnalogProbe", "RISE", "FALL", "ANY",
    "Process", "Command", "fork", "delay",
    "wait_rise", "wait_fall", "wait_edge", "wait_high", "wait_low", "wait_any",
    "dump_vcd", "write_vcd",
    "S", "MS", "US", "NS", "PS", "HZ", "KHZ", "MHZ", "GHZ",
    "V", "MV", "A", "MA", "OHM", "UH", "UF", "UW",
    "period_of", "frequency_of", "fmt_time", "fmt_si",
]
