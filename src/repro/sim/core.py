"""Discrete-event simulation kernel.

The kernel is intentionally small: a time-ordered event queue plus a
deterministic tie-break sequence number.  Everything else in the library
(signals, processes, clocked FSMs, the analog solver) is built on
:meth:`Simulator.schedule`.

Determinism
-----------
Events scheduled for the same instant fire in priority order (lower first),
then in scheduling order (FIFO), so a simulation is a pure function of its
inputs and the RNG seed.  All stochastic elements (metastability resolution,
sensor jitter) draw from ``Simulator.rng`` which is seeded at construction.

Almost everything schedules at the default priority 0 and sees pure FIFO
ordering.  The one consumer of the priority lane is the adaptive analog
solver: its micro-step commits run at priority -1, so a step that was
*snapped* onto an event's timestamp integrates up to that instant with the
pre-event state before the event (a gate commutation, say) takes effect.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, time travel)."""


class Event:
    """A cancellable scheduled callback.

    Returned by :meth:`Simulator.schedule`; calling :meth:`cancel` before the
    event fires turns it into a no-op.  Cancellation is O(1) (lazy removal).
    """

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: float, fn: Callable[[], None]):
        self.time = time
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time!r}, {state})"


class Simulator:
    """Event-driven simulator with deterministic same-time ordering.

    Parameters
    ----------
    seed:
        Seed for the simulation-owned RNG.  Two simulators built with the
        same seed and fed the same schedule produce identical histories.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5e-9, lambda: fired.append(sim.now))
    >>> sim.run(1e-6)
    >>> fired
    [5e-09]
    """

    def __init__(self, seed: Optional[int] = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._finished_processes = 0
        #: events actually fired through the loop (cancelled pops excluded)
        self.events_delivered: int = 0
        #: hook invoked before each event fires, used by the tracer
        self.on_step: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # hot path: inlined schedule_at (same semantics, one call less)
        event = Event(self.now + delay, fn)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, priority, self._seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``fn`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        event = Event(time, fn)
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, t_end: float) -> None:
        """Run all events with timestamp <= ``t_end``, then set now = t_end."""
        if t_end < self.now:
            raise SimulationError(f"t_end={t_end} is before current time {self.now}")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        delivered = 0
        try:
            while queue and queue[0][0] <= t_end:
                time, _prio, _seq, event = pop(queue)
                if event.cancelled:
                    continue
                delivered += 1
                self.now = time
                if self.on_step is not None:
                    self.on_step(time)
                event.fn()
            self.now = t_end
        finally:
            self.events_delivered += delivered
            self._running = False

    def run_one_before(self, t_limit: float) -> bool:
        """Fire the single earliest event strictly before ``t_limit``.

        Returns True when an event fired, False when the next live event
        is at or past ``t_limit`` (or the queue is empty).  ``now`` is
        left at the fired event's timestamp — the adaptive lock-step
        solver uses this to deliver digital events one at a time while it
        may still shrink the current step's end in reaction to them.
        """
        queue = self._queue
        while queue:
            time, _prio, _seq, event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                continue
            if time >= t_limit:
                return False
            heapq.heappop(queue)
            self.events_delivered += 1
            self.now = time
            if self.on_step is not None:
                self.on_step(time)
            event.fn()
            return True
        return False

    def run(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time from now."""
        self.run_until(self.now + duration)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (guarded by ``max_events``)."""
        self._running = True
        count = 0
        try:
            while self._queue:
                time, _prio, _seq, event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                count += 1
                if count > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; livelock suspected"
                    )
                self.now = time
                if self.on_step is not None:
                    self.on_step(time)
                event.fn()
        finally:
            self.events_delivered += count
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for _, _, _, e in self._queue if not e.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty.

        Cancelled heads are popped lazily, so the amortized cost is O(1)
        (plus O(log n) per cancelled event, paid once).  Equal-time events
        are fine: the heap root is ordered by ``(time, priority, seq)``,
        and every tied entry carries the same timestamp, so whichever tie
        sits at the root yields the correct answer.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[3].cancelled:
                heapq.heappop(queue)
                continue
            return entry[0]
        return None

    def peek_next_time(self) -> Optional[float]:
        """Deprecated alias of :meth:`next_event_time`."""
        return self.next_event_time()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now!r}, pending={self.pending_events()})"
