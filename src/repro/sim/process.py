"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields wait commands::

    def handshake(sim, req, ack):
        while True:
            yield wait_rise(req)
            ack.set(True, delay=1 * NS)   # not a command: plain driving
            yield wait_fall(req)
            yield delay(1 * NS)
            ack.set(False)

    Process(sim, handshake(sim, req, ack), name="hs")

Supported commands
------------------
``delay(dt)``
    Resume after ``dt`` seconds.
``wait_rise(sig) / wait_fall(sig) / wait_edge(sig)``
    Resume on the next matching edge.  The yield returns the signal.
``wait_high(sig) / wait_low(sig)``
    Level wait: resume immediately if the level already holds.
``wait_any(cmd, cmd, ...)``
    Resume when the first of several commands completes; the yield returns
    the completed command (so a timeout race reads naturally).

Processes are the modelling idiom for asynchronous control modules: each
handshake component in the paper's Fig. 5c maps onto one process.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional, Sequence, Tuple

from .core import Event, Simulator
from .signal import ANY, FALL, RISE, Signal


class Command:
    """Base class for things a process may yield."""

    __slots__ = ()

    def arm(self, process: "Process") -> None:
        raise NotImplementedError

    def disarm(self) -> None:
        raise NotImplementedError


class delay(Command):
    """Resume the process after ``dt`` seconds."""

    __slots__ = ("dt", "_event")

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"delay must be non-negative, got {dt}")
        self.dt = dt
        self._event: Optional[Event] = None

    def arm(self, process: "Process") -> None:
        self._event = process.sim.schedule(self.dt, lambda: process._resume(self))

    def disarm(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"delay({self.dt!r})"


class _EdgeWait(Command):
    """Wait for an edge of one signal."""

    __slots__ = ("signal", "edge", "_handle", "_process")

    def __init__(self, signal: Signal, edge: str):
        self.signal = signal
        self.edge = edge
        self._handle = None
        self._process: Optional["Process"] = None

    def arm(self, process: "Process") -> None:
        self._process = process
        self._handle = self.signal.subscribe(self._fire, self.edge)

    def _fire(self, _sig: Signal, _value: bool) -> None:
        process = self._process
        self.disarm()
        if process is not None:
            process._resume(self)

    def disarm(self) -> None:
        if self._handle is not None:
            self.signal.unsubscribe(self._handle)
            self._handle = None
        self._process = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"wait_{self.edge}({self.signal.name})"


class _LevelWait(_EdgeWait):
    """Wait for a signal level; completes immediately if it already holds."""

    __slots__ = ("level",)

    def __init__(self, signal: Signal, level: bool):
        super().__init__(signal, RISE if level else FALL)
        self.level = level

    def arm(self, process: "Process") -> None:
        if self.signal.value == self.level:
            # Complete in a fresh kernel event to keep resume ordering fair.
            process.sim.schedule(0.0, lambda: process._resume(self))
            return
        super().arm(process)


def wait_rise(signal: Signal) -> Command:
    """Wait for the next rising edge of ``signal``."""
    return _EdgeWait(signal, RISE)


def wait_fall(signal: Signal) -> Command:
    """Wait for the next falling edge of ``signal``."""
    return _EdgeWait(signal, FALL)


def wait_edge(signal: Signal) -> Command:
    """Wait for the next edge (either direction) of ``signal``."""
    return _EdgeWait(signal, ANY)


def wait_high(signal: Signal) -> Command:
    """Wait until ``signal`` is high (immediately if it already is)."""
    return _LevelWait(signal, True)


def wait_low(signal: Signal) -> Command:
    """Wait until ``signal`` is low (immediately if it already is)."""
    return _LevelWait(signal, False)


class wait_any(Command):
    """Race several commands; completes with the first one that fires.

    The yield expression evaluates to the *winning inner command*, so::

        got = yield wait_any(wait_rise(req), delay(timeout))
        if isinstance(got, delay): ...   # timed out
    """

    __slots__ = ("commands", "_process", "_winner")

    def __init__(self, *commands: Command):
        if not commands:
            raise ValueError("wait_any needs at least one command")
        self.commands: Tuple[Command, ...] = commands
        self._process: Optional["Process"] = None
        self._winner: Optional[Command] = None

    def arm(self, process: "Process") -> None:
        self._process = process
        proxy = _AnyProxy(self)
        for cmd in self.commands:
            cmd.arm(proxy)  # type: ignore[arg-type]

    def _child_fired(self, cmd: Command) -> None:
        if self._winner is not None:
            return  # a sibling already won this race
        self._winner = cmd
        self.disarm()
        if self._process is not None:
            self._process._resume(cmd)

    def disarm(self) -> None:
        for cmd in self.commands:
            cmd.disarm()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"wait_any({', '.join(map(repr, self.commands))})"


class _AnyProxy:
    """Adapter letting inner commands report to the enclosing wait_any."""

    __slots__ = ("_parent", "sim")

    def __init__(self, parent: wait_any):
        self._parent = parent
        assert parent._process is not None
        self.sim = parent._process.sim

    def _resume(self, cmd: Command) -> None:
        self._parent._child_fired(cmd)


ProcessBody = Generator[Command, Optional[Command], None]


class Process:
    """Run a generator as a simulation process.

    The generator starts at the current simulation time (in a zero-delay
    kernel event) and runs until it returns or :meth:`kill` is called.
    """

    __slots__ = ("sim", "name", "_gen", "_pending", "done")

    def __init__(self, sim: Simulator, gen: ProcessBody, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._pending: Optional[Command] = None
        self.done = False
        sim.schedule(0.0, lambda: self._resume(None))

    def _resume(self, completed: Optional[Command]) -> None:
        if self.done:
            return
        self._pending = None
        try:
            cmd = self._gen.send(completed)
        except StopIteration:
            self.done = True
            return
        if not isinstance(cmd, Command):
            raise TypeError(
                f"process {self.name!r} yielded {cmd!r}; expected a wait command"
            )
        self._pending = cmd
        cmd.arm(self)

    def kill(self) -> None:
        """Stop the process; any armed wait is disarmed."""
        if self._pending is not None:
            self._pending.disarm()
            self._pending = None
        self.done = True
        self._gen.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else f"waiting on {self._pending!r}"
        return f"Process({self.name!r}, {state})"


def fork(sim: Simulator, gen: ProcessBody, name: str = "proc") -> Process:
    """Convenience alias: start ``gen`` as a new process."""
    return Process(sim, gen, name)
