"""Digital signals and analog probes.

:class:`Signal` is a single-driver boolean net.  Value changes are scheduled
through the simulator (transport delay semantics — every scheduled edge is
delivered, which is what non-persistent comparator outputs need), and edge
subscribers are notified synchronously when the change applies.

:class:`AnalogProbe` records a piecewise-linear real-valued waveform and keeps
running statistics (min / max / RMS) even when full tracing is disabled, so
parameter sweeps stay cheap.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .core import Event, Simulator

#: edge kinds accepted by :meth:`Signal.subscribe`
RISE = "rise"
FALL = "fall"
ANY = "any"

Listener = Callable[["Signal", bool], None]


class Signal:
    """A boolean net with scheduled updates and edge notification.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Hierarchical name used in traces and error messages.
    init:
        Initial value at t=0.
    trace:
        When True, keep the full ``(time, value)`` history.
    """

    __slots__ = ("sim", "name", "_value", "_listeners", "trace", "history")

    def __init__(self, sim: Simulator, name: str, init: bool = False,
                 trace: bool = True):
        self.sim = sim
        self.name = name
        self._value = bool(init)
        self._listeners: List[Tuple[str, Listener]] = []
        self.trace = trace
        self.history: List[Tuple[float, bool]] = [(sim.now, self._value)]

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    @property
    def value(self) -> bool:
        return self._value

    def __bool__(self) -> bool:
        return self._value

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def set(self, value: bool, delay: float = 0.0) -> Optional[Event]:
        """Schedule the signal to take ``value`` after ``delay`` seconds.

        Returns the kernel event (cancellable) or ``None`` for an immediate
        update.  With ``delay == 0`` the update applies synchronously, in
        the current event — asynchronous circuit models rely on this for
        zero-delay forwarding inside composite elements.
        """
        value = bool(value)
        if delay == 0.0:
            self._apply(value)
            return None
        return self.sim.schedule(delay, lambda: self._apply(value))

    def toggle(self, delay: float = 0.0) -> Optional[Event]:
        """Schedule an inversion of the *current* value after ``delay``."""
        return self.set(not self._value, delay)

    def pulse(self, width: float, delay: float = 0.0) -> None:
        """Drive a high pulse of ``width`` seconds starting after ``delay``."""
        self.set(True, delay)
        self.sim.schedule(delay + width, lambda: self._apply(False))

    def _apply(self, value: bool) -> None:
        if value == self._value:
            return
        self._value = value
        if self.trace:
            self.history.append((self.sim.now, value))
        listeners = self._listeners
        if not listeners:
            return
        edge = RISE if value else FALL
        if len(listeners) == 1:
            # Fast path: the snapshot below exists because listeners may
            # (un)subscribe during notification; with a single listener a
            # local reference gives the same semantics without the copy.
            kind, fn = listeners[0]
            if kind == ANY or kind == edge:
                fn(self, value)
            return
        for kind, fn in list(listeners):
            if kind == ANY or kind == edge:
                fn(self, value)

    def force(self, value: bool) -> None:
        """Set the value without notifying listeners (testbench reset aid)."""
        self._value = bool(value)
        if self.trace:
            self.history.append((self.sim.now, self._value))

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, fn: Listener, edge: str = ANY) -> Tuple[str, Listener]:
        """Register ``fn(signal, new_value)`` on the given edge kind.

        Returns a handle for :meth:`unsubscribe`.
        """
        if edge not in (RISE, FALL, ANY):
            raise ValueError(f"unknown edge kind {edge!r}")
        handle = (edge, fn)
        self._listeners.append(handle)
        return handle

    def unsubscribe(self, handle: Tuple[str, Listener]) -> None:
        try:
            self._listeners.remove(handle)
        except ValueError:
            pass  # already removed (one-shot waiters race with cancellation)

    # ------------------------------------------------------------------
    # History helpers
    # ------------------------------------------------------------------
    def value_at(self, t: float) -> bool:
        """Value the signal held at time ``t`` (requires tracing)."""
        result = self.history[0][1]
        for time, value in self.history:
            if time > t:
                break
            result = value
        return result

    def edges(self, kind: str = ANY) -> List[float]:
        """Timestamps of recorded edges of the requested kind."""
        out: List[float] = []
        prev = self.history[0][1]
        for time, value in self.history[1:]:
            if value != prev:
                edge = RISE if value else FALL
                if kind == ANY or kind == edge:
                    out.append(time)
            prev = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, value={int(self._value)})"


class AnalogProbe:
    """Recorder for a real-valued waveform with running statistics.

    The analog solver calls :meth:`record` once per accepted integration
    step.  Statistics (max, min, time-weighted RMS) accumulate regardless of
    whether the full waveform is kept, so sweeps can disable tracing.

    The probe is the *live, in-run* recording surface; the canonical
    trace representation — what crosses process boundaries, lands in
    the result cache, and feeds the metrics/VCD layers — is the
    columnar :class:`repro.trace.TraceSet` assembled from these buffers
    (:meth:`repro.analog.solver.AnalogSolver.trace_set`).  New code
    should read waveforms through TraceSets.
    """

    __slots__ = ("name", "trace", "times", "values", "_max", "_min",
                 "_sq_integral", "_abs_integral", "_last_t", "_last_v",
                 "_t0", "_started")

    def __init__(self, name: str, trace: bool = True):
        self.name = name
        self.trace = trace
        self.times: List[float] = []
        self.values: List[float] = []
        self._max = float("-inf")
        self._min = float("inf")
        self._sq_integral = 0.0
        self._abs_integral = 0.0
        self._last_t = 0.0
        self._last_v = 0.0
        self._t0 = 0.0
        self._started = False

    def record(self, t: float, v: float) -> None:
        if not self._started:
            self._t0 = t
            self._started = True
        else:
            dt = t - self._last_t
            if dt > 0:
                # trapezoidal accumulation of v^2 and |v|
                v0, v1 = self._last_v, v
                self._sq_integral += 0.5 * (v0 * v0 + v1 * v1) * dt
                self._abs_integral += 0.5 * (abs(v0) + abs(v1)) * dt
        self._last_t = t
        self._last_v = v
        if v > self._max:
            self._max = v
        if v < self._min:
            self._min = v
        if self.trace:
            self.times.append(t)
            self.values.append(v)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def peak_abs(self) -> float:
        return max(abs(self._max), abs(self._min))

    def rms(self) -> float:
        """Time-weighted RMS over the recorded interval."""
        span = self._last_t - self._t0
        if span <= 0:
            return abs(self._last_v)
        return (self._sq_integral / span) ** 0.5

    def mean_abs(self) -> float:
        span = self._last_t - self._t0
        if span <= 0:
            return abs(self._last_v)
        return self._abs_integral / span

    def reset_stats(self) -> None:
        """Restart statistic accumulation from the current point.

        Waveform history (if traced) is preserved; used to measure e.g.
        steady-state ripple excluding the startup transient.
        """
        self._max = float("-inf")
        self._min = float("inf")
        self._sq_integral = 0.0
        self._abs_integral = 0.0
        self._started = False

    def value_at(self, t: float) -> float:
        """Linear interpolation of the traced waveform at time ``t``."""
        if not self.trace or not self.times:
            raise ValueError(f"probe {self.name!r} has no traced waveform")
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        import bisect
        i = bisect.bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = values[i - 1], values[i]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def window(self, t_start: float, t_end: float) -> Tuple[List[float], List[float]]:
        """Return the traced samples with ``t_start <= t <= t_end``."""
        ts, vs = [], []
        for t, v in zip(self.times, self.values):
            if t_start <= t <= t_end:
                ts.append(t)
                vs.append(v)
        return ts, vs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AnalogProbe({self.name!r}, n={len(self.times)})"
