"""Unit helpers for time, frequency, and electrical quantities.

The simulator keeps time as a ``float`` number of **seconds**.  Experiments
in the paper operate at nanosecond granularity over ~10 microsecond runs, so
double precision leaves ample headroom (relative resolution ~1e-16).

These helpers exist so that code reads like the paper::

    sim.schedule(2.5 * NS, fire)
    clk = Clock(sim, period=period_of(333 * MHZ))
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time units (seconds)
# ---------------------------------------------------------------------------
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

# ---------------------------------------------------------------------------
# Frequency units (hertz)
# ---------------------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Electrical units (SI base)
# ---------------------------------------------------------------------------
V = 1.0
MV = 1e-3
A = 1.0
MA = 1e-3
OHM = 1.0
UH = 1e-6  # microhenry
UF = 1e-6  # microfarad
NF = 1e-9
PF = 1e-12
UW = 1e-6  # microwatt
MW = 1e-3


def period_of(frequency_hz: float) -> float:
    """Return the period (in seconds) of a clock of the given frequency."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return 1.0 / frequency_hz


def frequency_of(period_s: float) -> float:
    """Return the frequency (in hertz) of a clock of the given period."""
    if period_s <= 0:
        raise ValueError(f"period must be positive, got {period_s}")
    return 1.0 / period_s


def fmt_time(t: float) -> str:
    """Format a time value with an engineering suffix for reports."""
    at = abs(t)
    if at >= 1e-3:
        return f"{t * 1e3:.6g}ms"
    if at >= 1e-6:
        return f"{t * 1e6:.6g}us"
    if at >= 1e-9:
        return f"{t * 1e9:.6g}ns"
    return f"{t * 1e12:.6g}ps"


def fmt_si(value: float, unit: str) -> str:
    """Format ``value`` with an SI prefix, e.g. ``fmt_si(0.21, 'A') == '210mA'``."""
    prefixes = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ]
    if value == 0:
        return f"0{unit}"
    av = abs(value)
    for scale, prefix in prefixes:
        if av >= scale:
            return f"{value / scale:.4g}{prefix}{unit}"
    return f"{value:.4g}{unit}"
