"""Value-change-dump (VCD) export of traced signals and analog probes.

Lets the Fig. 6 waveforms be inspected in GTKWave or any VCD viewer.
Digital items are emitted as 1-bit wires, analog items as ``real``
variables.  Accepted items: live :class:`Signal` / :class:`AnalogProbe`
objects, or the :class:`~repro.trace.ChannelView` adapters of a recorded
:class:`~repro.trace.TraceSet` (bool channels become wires, float
channels become reals) — the route :meth:`repro.trace.TraceSet.to_vcd`
uses to dump a cached traced run without re-simulating.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TextIO, Tuple, Union

from .signal import AnalogProbe, Signal

Traceable = Union[Signal, AnalogProbe]


def _is_digital(item) -> bool:
    """1-bit wire (Signal or bool ChannelView) vs real variable."""
    if isinstance(item, Signal):
        return True
    return bool(getattr(item, "is_digital", False))


def _changes(item) -> Iterable[Tuple[float, float]]:
    if isinstance(item, Signal):
        return item.history
    return zip(item.times, item.values)

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short printable VCD identifier for variable ``index``."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def write_vcd(out: TextIO, items: Sequence[Traceable],
              timescale: str = "1ps", scope: str = "repro") -> None:
    """Write all recorded history of ``items`` as a VCD document.

    Times are converted to integer multiples of the timescale (default 1 ps,
    ample for the nanosecond-scale designs in this library).
    """
    unit_map = {"1s": 1.0, "1ms": 1e-3, "1us": 1e-6, "1ns": 1e-9, "1ps": 1e-12}
    if timescale not in unit_map:
        raise ValueError(f"unsupported timescale {timescale!r}")
    unit = unit_map[timescale]

    out.write("$date reproduction run $end\n")
    out.write("$version repro buck simulator $end\n")
    out.write(f"$timescale {timescale} $end\n")
    out.write(f"$scope module {scope} $end\n")

    ids = {}
    for i, item in enumerate(items):
        ident = _identifier(i)
        ids[id(item)] = ident
        name = item.name.replace(" ", "_").replace(".", "_")
        if _is_digital(item):
            out.write(f"$var wire 1 {ident} {name} $end\n")
        else:
            out.write(f"$var real 64 {ident} {name} $end\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    # Merge all change records into one time-ordered stream.
    changes: List[Tuple[float, str]] = []
    for item in items:
        ident = ids[id(item)]
        if _is_digital(item):
            for t, v in _changes(item):
                changes.append((t, f"{int(v)}{ident}"))
        else:
            for t, v in _changes(item):
                changes.append((t, f"r{v:.9g} {ident}"))
    changes.sort(key=lambda c: c[0])

    last_tick = None
    for t, record in changes:
        tick = int(round(t / unit))
        if tick != last_tick:
            out.write(f"#{tick}\n")
            last_tick = tick
        out.write(record + "\n")


def dump_vcd(path: str, items: Sequence[Traceable], **kwargs) -> None:
    """Write a VCD file to ``path`` (see :func:`write_vcd`)."""
    with open(path, "w") as handle:
        write_vcd(handle, items, **kwargs)
