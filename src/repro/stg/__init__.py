"""STG formalism and the A4A design flow backend.

Signal transition graphs (Petri nets with signal-edge-labelled
transitions), reachability analysis, verification (consistency, deadlock-
freeness, output persistence, CSC, design invariants), Quine–McCluskey
based speed-independent synthesis, parallel composition, gate-level
conformance/hazard checking, and a ``.g``-format parser — our
reimplementation of the Workcraft/Petrify/MPSat backend stack the paper
automates (see DESIGN.md substitution table).
"""

from .circuit import (
    CircuitGate,
    CircuitReport,
    CircuitViolation,
    GateLevelCircuit,
    verify_circuit,
)
from .csc import CSCConflict, csc_report, find_csc_conflicts
from .composition import CompositionError, compose
from .models import ALL_MODELS
from .parser import ParseError, parse_g, write_g
from .petri import Marking, PetriNet, PetriNetError, marking_key
from .reachability import (
    ConsistencyViolation,
    ReachabilityError,
    State,
    StateGraph,
)
from .stg import STG, Label, SignalType
from .synthesis import (
    CSCConflictError,
    GCImplementation,
    SignalFunction,
    SynthesisError,
    SynthesisResult,
    synthesize,
    synthesize_complex_gate,
    synthesize_gc,
)
from .verilog import testbench_skeleton, to_verilog
from .verification import (
    CheckResult,
    VerificationReport,
    check_consistency,
    check_csc,
    check_deadlock_freeness,
    check_mutual_exclusion,
    check_never_all,
    check_output_persistence,
    check_safeness,
    check_usc,
    verify,
)

__all__ = [
    "PetriNet", "PetriNetError", "Marking", "marking_key",
    "STG", "Label", "SignalType",
    "StateGraph", "State", "ReachabilityError", "ConsistencyViolation",
    "verify", "VerificationReport", "CheckResult",
    "check_safeness", "check_consistency", "check_deadlock_freeness",
    "check_output_persistence", "check_csc", "check_usc",
    "check_mutual_exclusion", "check_never_all",
    "synthesize", "synthesize_complex_gate", "synthesize_gc",
    "SynthesisResult", "SignalFunction", "GCImplementation",
    "SynthesisError", "CSCConflictError",
    "compose", "CompositionError",
    "parse_g", "write_g", "ParseError",
    "GateLevelCircuit", "CircuitGate", "verify_circuit",
    "CircuitReport", "CircuitViolation",
    "ALL_MODELS",
    "find_csc_conflicts", "csc_report", "CSCConflict",
    "to_verilog", "testbench_skeleton",
]
