"""Gate-level verification: conformance and hazard-freeness.

Closes the A4A loop: after synthesis, the gate-level netlist is re-verified
against its STG specification (the paper verifies "deadlock-free,
hazard-free and conformant to their STG specifications", Sec. IV).

The model is the classic *circuit Petri net* analysis [14]: the product of

- the circuit under speed-independent semantics (any excited gate may fire
  after an arbitrary delay), and
- the specification state graph acting as the environment (driving inputs,
  accepting outputs).

Violations detected:

- **conformance**: a gate fires an edge the specification does not allow;
- **hazard** (semi-modularity violation): an excited gate gets
  dis-excited by another transition before firing — in silicon this is a
  runt pulse;
- **deadlock** of the closed system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .reachability import StateGraph, State, V1
from .stg import STG, SignalType
from .synthesis import GCImplementation, SignalFunction, SynthesisResult

GateFunction = Callable[[Dict[str, bool]], bool]


@dataclass
class CircuitGate:
    """One gate: named output computed from the full signal valuation."""

    output: str
    function: GateFunction
    description: str = ""


class GateLevelCircuit:
    """A closed-function netlist over named signals."""

    def __init__(self, inputs: Sequence[str], gates: Sequence[CircuitGate]):
        self.inputs = list(inputs)
        self.gates = list(gates)
        names = set(self.inputs)
        for gate in self.gates:
            if gate.output in names:
                raise ValueError(f"multiple drivers for {gate.output!r}")
            names.add(gate.output)
        self.signals = self.inputs + [g.output for g in self.gates]

    @classmethod
    def from_synthesis(cls, stg: STG, result: SynthesisResult) -> "GateLevelCircuit":
        """Build the netlist a :func:`repro.stg.synthesis.synthesize` run
        describes (complex gates and/or gC latches with feedback)."""
        gates: List[CircuitGate] = []
        for signal, fn in result.complex_gates.items():
            gates.append(CircuitGate(signal, _sop_closure(fn),
                                     f"[{signal}] = {fn.expression()}"))
        for signal, gc in result.gc_latches.items():
            gates.append(CircuitGate(signal, _gc_closure(signal, gc),
                                     gc.expression()))
        return cls(stg.inputs, gates)


def _sop_closure(fn: SignalFunction) -> GateFunction:
    def evaluate(values: Dict[str, bool]) -> bool:
        return fn.evaluate(values)
    return evaluate


def _gc_closure(signal: str, gc: GCImplementation) -> GateFunction:
    def evaluate(values: Dict[str, bool]) -> bool:
        set_v = gc.set_function.evaluate(values)
        reset_v = gc.reset_function.evaluate(values)
        return set_v or (values[signal] and not reset_v)
    return evaluate


@dataclass
class CircuitViolation:
    kind: str            # 'conformance' | 'hazard' | 'deadlock'
    detail: str
    trace: List[str] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitViolation({self.kind}: {self.detail})"


@dataclass
class CircuitReport:
    n_states: int
    violations: List[CircuitViolation]

    @property
    def conformant(self) -> bool:
        return not any(v.kind == "conformance" for v in self.violations)

    @property
    def hazard_free(self) -> bool:
        return not any(v.kind == "hazard" for v in self.violations)

    @property
    def deadlock_free(self) -> bool:
        return not any(v.kind == "deadlock" for v in self.violations)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.passed:
            return (f"circuit verification PASS "
                    f"({self.n_states} product states)")
        lines = [f"circuit verification: {len(self.violations)} violation(s)"]
        for v in self.violations[:10]:
            lines.append(f"  {v.kind}: {v.detail}")
            if v.trace:
                lines.append(f"    trace: {' '.join(v.trace)}")
        return "\n".join(lines)


def verify_circuit(stg: STG, circuit: GateLevelCircuit,
                   max_states: int = 500_000,
                   stop_at_first: bool = False) -> CircuitReport:
    """Check ``circuit`` against specification ``stg``.

    The specification's state graph acts as the environment: its input
    edges may fire at any time they are enabled, and every circuit output
    edge must be enabled in the specification when the gate fires.
    """
    sg = StateGraph(stg)
    spec_signals = set(stg.signal_types)
    gate_by_name = {g.output: g for g in circuit.gates}

    # Initial valuation: from the STG's initial code (inputs + spec
    # signals), gates not in the spec start at their stable evaluation.
    init_values: Dict[str, bool] = {}
    assert sg.initial is not None
    for name, v in zip(sg.signal_order, sg.initial.code):
        init_values[name] = (v == V1)
    for gate in circuit.gates:
        if gate.output not in init_values:
            init_values[gate.output] = False
    # settle non-spec gates
    for _ in range(len(circuit.gates) + 1):
        changed = False
        for gate in circuit.gates:
            if gate.output in spec_signals:
                continue
            new = gate.function(init_values)
            if new != init_values[gate.output]:
                init_values[gate.output] = new
                changed = True
        if not changed:
            break

    order = circuit.signals
    index = {s: i for i, s in enumerate(order)}

    def key_of(values: Dict[str, bool], spec_state: State):
        return (tuple(values[s] for s in order), spec_state.index)

    violations: List[CircuitViolation] = []
    seen: Set[Tuple] = set()
    start = (dict(init_values), sg.initial, [])
    queue = deque([start])
    seen.add(key_of(init_values, sg.initial))
    states_explored = 0

    def excited_gates(values: Dict[str, bool]) -> List[CircuitGate]:
        return [g for g in circuit.gates
                if g.function(values) != values[g.output]]

    while queue:
        values, spec_state, trace = queue.popleft()
        states_explored += 1
        if states_explored > max_states:
            raise RuntimeError("product state space exceeds max_states")

        moves: List[Tuple[str, Dict[str, bool], State]] = []

        # Environment moves: input transitions enabled in the spec.
        for t, nxt in spec_state.successors:
            lbl = stg.label_of(t)
            if lbl is None:
                moves.append((t, dict(values), nxt))
                continue
            if stg.signal_types[lbl.signal] != SignalType.INPUT:
                continue
            new_values = dict(values)
            new_values[lbl.signal] = lbl.rising
            moves.append((t, new_values, nxt))

        # Circuit moves: excited gates fire.
        excited_now = excited_gates(values)
        for gate in excited_now:
            new_val = gate.function(values)
            edge = f"{gate.output}{'+' if new_val else '-'}"
            new_values = dict(values)
            new_values[gate.output] = new_val
            if gate.output in spec_signals:
                nxt_spec = None
                for t, nxt in spec_state.successors:
                    lbl = stg.label_of(t)
                    if (lbl is not None and lbl.signal == gate.output
                            and lbl.rising == new_val):
                        nxt_spec = nxt
                        break
                if nxt_spec is None:
                    violations.append(CircuitViolation(
                        "conformance",
                        f"gate fires {edge} not allowed by spec "
                        f"(spec state #{spec_state.index})",
                        trace + [edge]))
                    if stop_at_first:
                        return CircuitReport(states_explored, violations)
                    continue
                moves.append((edge, new_values, nxt_spec))
            else:
                moves.append((edge, new_values, spec_state))

        if not moves:
            # Closed-system deadlock is fine only if the spec also rests.
            if spec_state.successors:
                violations.append(CircuitViolation(
                    "deadlock", f"circuit stuck, spec expects "
                    f"{[t for t, _ in spec_state.successors]}", trace))
                if stop_at_first:
                    return CircuitReport(states_explored, violations)
            continue

        # Semi-modularity: firing any move must not dis-excite a pending
        # gate (unless that move IS the gate firing).
        for label, new_values, nxt_spec in moves:
            for gate in excited_now:
                if label.rstrip("+-") == gate.output:
                    continue
                target = gate.function(values)
                still_excited = (gate.function(new_values)
                                 != new_values[gate.output])
                same_target = gate.function(new_values) == target
                if not (still_excited and same_target):
                    # the gate either got dis-excited or re-aimed: hazard
                    if new_values[gate.output] == values[gate.output]:
                        violations.append(CircuitViolation(
                            "hazard",
                            f"{label} dis-excites pending gate "
                            f"{gate.output!r}", trace + [label]))
                        if stop_at_first:
                            return CircuitReport(states_explored, violations)

        for label, new_values, nxt_spec in moves:
            k = key_of(new_values, nxt_spec)
            if k not in seen:
                seen.add(k)
                queue.append((new_values, nxt_spec, trace + [label]))

    return CircuitReport(states_explored, violations)
