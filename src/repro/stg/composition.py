"""Parallel composition of STGs (the PComp step of the A4A flow).

Composing a component STG with its environment (or sub-modules with each
other) synchronises them on shared signals: a shared signal's edge fires
in *all* nets that know the signal, simultaneously.  Following pcomp, a
signal that is an output in one net and an input in another becomes an
output of the composition (the producer wins); input-input stays input.

The implementation takes the synchronous product at the *transition*
level: every combination of same-label transitions (one per net that owns
the signal) yields one composed transition.  Non-shared transitions are
interleaved.  Dummies are never synchronised.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Sequence, Tuple

from .petri import PetriNetError
from .stg import STG, Label, SignalType


class CompositionError(ValueError):
    """Nets cannot be composed (conflicting declarations)."""


def _merged_type(kinds: Sequence[SignalType]) -> SignalType:
    outputs = sum(1 for k in kinds if k != SignalType.INPUT)
    if outputs > 1:
        raise CompositionError("signal driven by more than one component")
    if outputs == 1:
        for k in kinds:
            if k != SignalType.INPUT:
                return k
    return SignalType.INPUT


def compose(nets: Sequence[STG], name: str = "composition") -> STG:
    """Parallel-compose ``nets`` into one STG."""
    if not nets:
        raise CompositionError("need at least one net")

    result = STG(name)

    # --- signals -----------------------------------------------------
    owners: Dict[str, List[int]] = {}
    for i, net in enumerate(nets):
        for s in net.signal_types:
            owners.setdefault(s, []).append(i)
    for s, idxs in sorted(owners.items()):
        kinds = [nets[i].signal_types[s] for i in idxs]
        merged = _merged_type(kinds)
        initials = {nets[i].initial_values[s] for i in idxs
                    if s in nets[i].initial_values}
        if len(initials) > 1:
            raise CompositionError(f"conflicting initial values for {s!r}")
        result.add_signal(s, merged, initial=initials.pop() if initials else None)

    # --- places (namespaced per net) ----------------------------------
    def pname(i: int, p: str) -> str:
        return f"n{i}:{p}"

    for i, net in enumerate(nets):
        for p, tokens in net.places.items():
            result.add_place(pname(i, p), tokens)

    # --- transitions ---------------------------------------------------
    # Group labelled transitions by (signal, direction) across nets.
    groups: Dict[Tuple[str, str], Dict[int, List[str]]] = {}
    for i, net in enumerate(nets):
        for t, lbl in net.labels.items():
            if lbl is None:
                continue
            groups.setdefault((lbl.signal, lbl.direction), {}).setdefault(
                i, []).append(t)

    instance_counter: Dict[str, int] = {}

    def fresh_label(signal: str, direction: str) -> str:
        base = f"{signal}{direction}"
        n = instance_counter.get(base, 0)
        instance_counter[base] = n + 1
        return base if n == 0 else f"{base}/{n}"

    for (signal, direction), per_net in sorted(groups.items()):
        participating = sorted(per_net)
        # All combinations of one transition per participating net.
        for combo in product(*(per_net[i] for i in participating)):
            t_name = fresh_label(signal, direction)
            result.add_signal_transition(t_name)
            for i, t in zip(participating, combo):
                for p in nets[i].preset[t]:
                    result.add_arc(pname(i, p), t_name)
                for p in nets[i].postset[t]:
                    result.add_arc(t_name, pname(i, p))

    # Dummies: copied per net, never synchronised.
    for i, net in enumerate(nets):
        for t, lbl in net.labels.items():
            if lbl is not None:
                continue
            t_name = f"n{i}:{t}"
            result.add_dummy(t_name)
            for p in net.preset[t]:
                result.add_arc(pname(i, p), t_name)
            for p in net.postset[t]:
                result.add_arc(t_name, pname(i, p))

    return result
