"""CSC conflict diagnosis (report-only state-signal insertion hints).

When two reachable states share a binary code but demand different output
behaviour, no speed-independent logic function can exist (Complete State
Coding violation).  Petrify resolves this automatically by inserting
internal state signals; our flow *diagnoses* the conflicts and suggests
where an insertion would disambiguate — enough to guide a designer (the
paper's `basic_buck` and `mode_ctrl` specs both need one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .reachability import State, StateGraph
from .stg import STG, SignalType


@dataclass
class CSCConflict:
    """One conflicting code pair."""

    signal: str                      #: output whose excitation differs
    code: Tuple[int, ...]
    state_a: State
    state_b: State
    #: transitions on the path between the two conflicting states — an
    #: inserted state signal must toggle somewhere along this separation
    separating_events: List[str] = field(default_factory=list)

    def describe(self, sg: StateGraph) -> str:
        code_text = "".join(str(v) for v in self.code)
        sep = " ".join(self.separating_events) or "(disjoint paths)"
        return (f"CSC conflict on {self.signal!r}: states "
                f"#{self.state_a.index} and #{self.state_b.index} share "
                f"code {code_text}; separating events: {sep}")


def _excitation_map(sg: StateGraph, signal: str) -> Dict[int, Tuple[bool, bool]]:
    stg = sg.stg
    out: Dict[int, Tuple[bool, bool]] = {}
    for state in sg.all_states():
        rising = falling = False
        for t, _ in state.successors:
            lbl = stg.label_of(t)
            if lbl is not None and lbl.signal == signal:
                if lbl.rising:
                    rising = True
                else:
                    falling = True
        out[state.index] = (rising, falling)
    return out


def _separating_events(a: State, b: State) -> List[str]:
    """Events on the longer trace after the common prefix — candidates for
    ordering against an inserted state signal."""
    trace_a, trace_b = a.trace(), b.trace()
    i = 0
    while i < len(trace_a) and i < len(trace_b) and trace_a[i] == trace_b[i]:
        i += 1
    return trace_a[i:] + trace_b[i:]


def find_csc_conflicts(stg: STG, max_states: int = 200_000) -> List[CSCConflict]:
    """All CSC conflicts of ``stg``, with separating-event hints."""
    sg = StateGraph(stg, max_states=max_states)
    conflicts: List[CSCConflict] = []
    seen_pairs: Set[Tuple[int, int]] = set()
    for signal in stg.non_inputs:
        excitation = _excitation_map(sg, signal)
        by_code: Dict[Tuple[int, ...], State] = {}
        for state in sg.all_states():
            other = by_code.get(state.code)
            if other is None:
                by_code[state.code] = state
                continue
            if excitation[other.index] != excitation[state.index]:
                key = (min(other.index, state.index),
                       max(other.index, state.index))
                if key in seen_pairs:
                    continue
                seen_pairs.add(key)
                conflicts.append(CSCConflict(
                    signal=signal, code=state.code,
                    state_a=other, state_b=state,
                    separating_events=_separating_events(other, state)))
    return conflicts


def csc_report(stg: STG) -> str:
    """Human-readable CSC diagnosis (empty conflicts = synthesisable)."""
    sg = StateGraph(stg)
    conflicts = find_csc_conflicts(stg)
    if not conflicts:
        return f"{stg.name}: CSC holds — all non-input signals synthesisable"
    lines = [f"{stg.name}: {len(conflicts)} CSC conflict(s); "
             f"insert a state signal toggling among the separating events:"]
    for c in conflicts:
        lines.append("  " + c.describe(sg))
    return "\n".join(lines)
