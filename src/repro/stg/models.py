"""STG model zoo: formal specifications of the buck controller modules.

These are the specifications the A4A flow (Sec. III/IV) starts from.  Each
builder returns a fresh :class:`~repro.stg.stg.STG`; the tests and the
``stg-verif`` bench verify the paper's claims on them (consistency,
deadlock-freeness, output persistence, and the PMOS/NMOS short-circuit
safety invariant).

Environment abstractions are documented per model; the main one: the
*late-ZC* scenario of the basic buck collapses onto the no-ZC branch
(the controller explicitly ignores ZC once UV has been served first), so
the environment does not emit ``zc`` in that window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .stg import STG, SignalType

IN = SignalType.INPUT
OUT = SignalType.OUTPUT


def celement_stg() -> STG:
    """Muller C-element: canonical two-input speed-independent spec."""
    stg = STG("celement")
    stg.add_signal("a", IN, initial=False)
    stg.add_signal("b", IN, initial=False)
    stg.add_signal("c", OUT, initial=False)
    for t in ("a+", "b+", "c+", "a-", "b-", "c-"):
        stg.add_signal_transition(t)
    stg.connect("a+", "c+", tokens=0)
    stg.connect("b+", "c+", tokens=0)
    stg.connect("c+", "a-", tokens=0)
    stg.connect("c+", "b-", tokens=0)
    stg.connect("a-", "c-", tokens=0)
    stg.connect("b-", "c-", tokens=0)
    stg.connect("c-", "a+", tokens=1)
    stg.connect("c-", "b+", tokens=1)
    return stg


def handshake_buffer_stg() -> STG:
    """One-place handshake buffer: ri/ai in, ro/ao out (pipeline stage)."""
    stg = STG("hs_buffer")
    stg.add_signal("ri", IN, initial=False)
    stg.add_signal("ao", IN, initial=False)
    stg.add_signal("ai", OUT, initial=False)
    stg.add_signal("ro", OUT, initial=False)
    for t in ("ri+", "ai+", "ri-", "ai-", "ro+", "ao+", "ro-", "ao-"):
        stg.add_signal_transition(t)
    stg.chain(["ri+", "ro+", "ao+", "ai+", "ri-", "ro-", "ao-", "ai-"],
              cyclic=True, token_before="ri+")
    return stg


def wait_element_stg() -> STG:
    """Abstract protocol of the WAIT A2A element.

    ``sig`` is the sanitised view of the non-persistent input (the raw
    glitching is contained inside the element and is *not* part of the
    speed-independent interface — that is the element's whole point).

    Environment abstraction: the cycle is serialised (``sig`` clears after
    the ack, and the requester only releases afterwards).  Allowing
    ``sig-`` to float freely against the release handshake creates a CSC
    conflict — exactly the kind of issue the A4A flow surfaces — so the
    synthesisable spec pins it down.
    """
    stg = STG("wait")
    stg.add_signal("req", IN, initial=False)
    stg.add_signal("sig", IN, initial=False)
    stg.add_signal("ack", OUT, initial=False)
    for t in ("req+", "sig+", "ack+", "req-", "ack-", "sig-"):
        stg.add_signal_transition(t)
    stg.chain(["req+", "sig+", "ack+", "sig-", "req-", "ack-"],
              cyclic=True, token_before="req+")
    return stg


def mutex_stg() -> STG:
    """Two-user mutual exclusion protocol (grants are outputs).

    Requests are free-choice inputs; the grants must never overlap —
    verified with the ``mutex(g1,g2)`` check.
    """
    stg = STG("mutex")
    stg.add_signal("r1", IN, initial=False)
    stg.add_signal("r2", IN, initial=False)
    stg.add_signal("g1", OUT, initial=False)
    stg.add_signal("g2", OUT, initial=False)
    for t in ("r1+", "g1+", "r1-", "g1-", "r2+", "g2+", "r2-", "g2-"):
        stg.add_signal_transition(t)
    # request cycles
    stg.chain(["r1+", "g1+", "r1-", "g1-"], cyclic=True, token_before="r1+")
    stg.chain(["r2+", "g2+", "r2-", "g2-"], cyclic=True, token_before="r2+")
    # critical-section token shared by both grants
    stg.add_place("cs_free", 1)
    stg.add_arc("cs_free", "g1+")
    stg.add_arc("g1-", "cs_free")
    stg.add_arc("cs_free", "g2+")
    stg.add_arc("g2-", "cs_free")
    return stg


def basic_buck_stg() -> STG:
    """The basic buck controller of Fig. 2b, all three current scenarios.

    Signals: ``uv``, ``oc``, ``zc`` (inputs from the sensors), ``gp``,
    ``gn`` (outputs driving the power transistors, gp=1 meaning PMOS
    conducting — the non-overlap invariant is ``never (gp and gn)``).

    Initial state: NMOS conducting (gn=1), coil current decaying —
    the controller waits for either UV (charge again: *no ZC* scenario) or
    ZC (current dried up first: *early ZC* scenario).  The *late ZC*
    scenario is behaviourally identical to no-ZC (see module docstring).
    """
    stg = STG("basic_buck")
    stg.add_signal("uv", IN, initial=False)
    stg.add_signal("oc", IN, initial=False)
    stg.add_signal("zc", IN, initial=False)
    stg.add_signal("gp", OUT, initial=False)
    stg.add_signal("gn", OUT, initial=True)

    for t in ("uv+", "uv+/1", "uv-", "oc+", "oc-", "zc+", "zc-",
              "gp+", "gp+/1", "gp-", "gn+", "gn-", "gn-/1"):
        stg.add_signal_transition(t)

    # Shared resources (environment readiness places).
    stg.add_place("p_choice", 1)    # NMOS on, current falling: UV vs ZC race
    stg.add_place("p_uv_ready", 1)
    stg.add_place("p_oc_ready", 1)
    stg.add_place("p_zc_ready", 1)
    stg.add_place("p_charge", 0)    # PMOS on, current ramping
    stg.add_place("p_bothoff", 0)   # discontinuous conduction
    stg.add_place("p_uvfall", 0)

    # --- branch A: UV first (no-ZC / late-ZC) -------------------------
    stg.add_arc("p_choice", "uv+")
    stg.add_arc("p_uv_ready", "uv+")
    stg.connect("uv+", "gn-", tokens=0)
    stg.connect("gn-", "gp+", tokens=0)
    stg.add_arc("gp+", "p_charge")
    stg.add_arc("gp+", "p_uvfall")

    # --- branch B: ZC first (early ZC) ---------------------------------
    stg.add_arc("p_choice", "zc+")
    stg.add_arc("p_zc_ready", "zc+")
    stg.connect("zc+", "gn-/1", tokens=0)
    stg.add_arc("gn-/1", "p_bothoff")
    stg.add_arc("p_bothoff", "uv+/1")
    stg.add_arc("p_uv_ready", "uv+/1")
    stg.connect("uv+/1", "gp+/1", tokens=0)
    stg.connect("gp+/1", "zc-", tokens=0)   # current rises: ZC clears
    stg.add_arc("zc-", "p_zc_ready")
    stg.add_arc("zc-", "p_charge")
    stg.add_arc("gp+/1", "p_uvfall")

    # --- common charging tail ------------------------------------------
    stg.add_arc("p_uvfall", "uv-")          # voltage recovers during charge
    stg.add_arc("uv-", "p_uv_ready")
    stg.add_arc("p_charge", "oc+")
    stg.add_arc("p_oc_ready", "oc+")
    stg.connect("oc+", "gp-", tokens=0)
    stg.connect("gp-", "oc-", tokens=0)     # current below I_max again
    stg.add_arc("oc-", "p_oc_ready")
    stg.connect("gp-", "gn+", tokens=0)
    stg.add_arc("gn+", "p_choice")
    return stg


def charge_ctrl_stg() -> STG:
    """CHARGE_CTRL: one charging cycle per activation handshake.

    ``ri``/``ao`` — activation channel from MODE_CTRL; ``oc``/``zc`` —
    sanitised sensor indications (via WAIT2 / RWAIT); ``gp``/``gn`` —
    transistor drives.  The PMIN/NMIN/PEXT minimum-ON delays are enforced
    by the delay controllers downstream and abstracted here.
    """
    stg = STG("charge_ctrl")
    stg.add_signal("ri", IN, initial=False)
    stg.add_signal("oc", IN, initial=False)
    stg.add_signal("zc", IN, initial=False)
    stg.add_signal("gp", OUT, initial=False)
    stg.add_signal("gn", OUT, initial=False)
    stg.add_signal("ao", OUT, initial=False)
    for t in ("ri+", "gp+", "oc+", "gp-", "gn+", "zc+", "gn-",
              "ao+", "ri-", "ao-", "oc-", "zc-"):
        stg.add_signal_transition(t)
    # The sensor releases are interleaved where the analog actually
    # produces them: oc falls once the NMOS takes over (current below
    # I_max), zc releases when the RWAIT handshake completes.  This
    # ordering also gives every state a distinct code (CSC holds), so the
    # module synthesises directly.
    stg.chain(
        ["ri+", "gp+", "oc+", "gp-", "gn+", "oc-", "zc+", "gn-", "ao+",
         "zc-", "ri-", "ao-"],
        cyclic=True, token_before="ri+")
    return stg


def token_ctrl_stg() -> STG:
    """TOKEN_CTRL: delay the ring token and trigger MODE_CTRL.

    On activation (``get``), start TOKEN_TIMER (``rd``/``ad``) and activate
    MODE_CTRL (``rm``/``am``) concurrently; pass the token (``pass_``) when
    both the dwell elapsed and the mode controller gave its (early)
    acknowledgement — the decoupling that lets charging continue while the
    token moves on.
    """
    stg = STG("token_ctrl")
    stg.add_signal("get", IN, initial=False)
    stg.add_signal("ad", IN, initial=False)
    stg.add_signal("am", IN, initial=False)
    stg.add_signal("rd", OUT, initial=False)
    stg.add_signal("rm", OUT, initial=False)
    stg.add_signal("pass_", OUT, initial=False)
    for t in ("get+", "rd+", "rm+", "ad+", "am+", "pass_+",
              "get-", "rd-", "rm-", "ad-", "am-", "pass_-"):
        stg.add_signal_transition(t)
    stg.connect("get+", "rd+", tokens=0)
    stg.connect("get+", "rm+", tokens=0)
    stg.connect("rd+", "ad+", tokens=0)
    stg.connect("rm+", "am+", tokens=0)
    stg.connect("ad+", "pass_+", tokens=0)
    stg.connect("am+", "pass_+", tokens=0)
    stg.connect("pass_+", "get-", tokens=0)
    stg.connect("get-", "rd-", tokens=0)
    stg.connect("get-", "rm-", tokens=0)
    stg.connect("rd-", "ad-", tokens=0)
    stg.connect("rm-", "am-", tokens=0)
    stg.connect("ad-", "pass_-", tokens=0)
    stg.connect("am-", "pass_-", tokens=0)
    stg.connect("pass_-", "get+", tokens=1)
    return stg


def mode_ctrl_stg() -> STG:
    """MODE_CTRL: decide UV vs OV mode once activated.

    ``r`` — activation from TOKEN_CTRL; ``uv``/``ov`` — one-hot grants from
    the WAITX2 (mutually exclusive by construction); ``a`` — early
    acknowledgement back to TOKEN_CTRL; ``rc``/``ac`` — charging channel to
    CHARGE_CTRL.  The early ``a+`` right after the mode decision is the
    paper's token/charging decoupling.
    """
    stg = STG("mode_ctrl")
    stg.add_signal("r", IN, initial=False)
    stg.add_signal("uv", IN, initial=False)
    stg.add_signal("ov", IN, initial=False)
    stg.add_signal("ac", IN, initial=False)
    stg.add_signal("a", OUT, initial=False)
    stg.add_signal("rc", OUT, initial=False)
    for t in ("r+", "uv+", "ov+", "a+", "a+/1", "rc+", "rc+/1",
              "ac+", "r-", "uv-", "ov-", "a-", "rc-", "ac-"):
        stg.add_signal_transition(t)

    stg.add_place("p_idle", 1)
    stg.add_arc("p_idle", "r+")
    stg.add_place("p_mode", 0)
    stg.add_arc("r+", "p_mode")
    # input choice: UV or OV mode
    stg.add_arc("p_mode", "uv+")
    stg.add_arc("p_mode", "ov+")
    # UV branch: early ack + charge, concurrently
    stg.connect("uv+", "a+", tokens=0)
    stg.connect("uv+", "rc+", tokens=0)
    # OV branch (instances)
    stg.connect("ov+", "a+/1", tokens=0)
    stg.connect("ov+", "rc+/1", tokens=0)
    # branch memory: remember which condition started the cycle so the
    # matching release fires (merging the branches before the releases
    # would let e.g. uv- fire on the OV path — an inconsistency)
    stg.add_place("p_took_uv", 0)
    stg.add_place("p_took_ov", 0)
    stg.add_arc("uv+", "p_took_uv")
    stg.add_arc("ov+", "p_took_ov")
    # charging completes
    stg.add_place("p_rc_done", 0)
    stg.add_arc("rc+", "p_rc_done")
    stg.add_arc("rc+/1", "p_rc_done")
    stg.add_arc("p_rc_done", "ac+")
    # the mode condition clears once served
    stg.add_place("p_cond_clear", 0)
    stg.add_arc("ac+", "p_cond_clear")
    stg.add_arc("p_cond_clear", "uv-")
    stg.add_arc("p_took_uv", "uv-")
    stg.add_arc("p_cond_clear", "ov-")
    stg.add_arc("p_took_ov", "ov-")
    # return-to-zero: release in a single tail (needs both early-ack path
    # and the cleared condition)
    stg.add_place("p_a_done", 0)
    stg.add_arc("a+", "p_a_done")
    stg.add_arc("a+/1", "p_a_done")
    stg.add_place("p_uv_done", 0)
    stg.add_arc("uv-", "p_uv_done")
    stg.add_arc("ov-", "p_uv_done")
    stg.add_arc("p_uv_done", "rc-")
    stg.connect("rc-", "ac-", tokens=0)
    stg.add_place("p_release", 0)
    stg.add_arc("ac-", "p_release")
    stg.add_arc("p_release", "r-")
    stg.add_arc("p_a_done", "r-")
    stg.connect("r-", "a-", tokens=0)
    stg.add_arc("a-", "p_idle")
    return stg


def hl_ctrl_stg() -> STG:
    """HL_CTRL: turn the high-load condition into an activation request.

    ``hl`` — sanitised HL indication (via WAIT); ``rq``/``aq`` — the
    activation channel into the MERGE element.
    """
    stg = STG("hl_ctrl")
    stg.add_signal("hl", IN, initial=False)
    stg.add_signal("aq", IN, initial=False)
    stg.add_signal("rq", OUT, initial=False)
    for t in ("hl+", "rq+", "aq+", "hl-", "rq-", "aq-"):
        stg.add_signal_transition(t)
    stg.chain(["hl+", "rq+", "aq+", "hl-", "rq-", "aq-"],
              cyclic=True, token_before="hl+")
    return stg


def decoupler_stg() -> STG:
    """DECOUPLER: ring-stage token handling.

    Accept the token from the previous stage (``ti``), offer the stage
    activation (``ro``/``ao``), and emit the token to the next stage
    (``to``) — accepting a new token only after the previous hand-off
    completed.
    """
    stg = STG("decoupler")
    stg.add_signal("ti", IN, initial=False)
    stg.add_signal("ao", IN, initial=False)
    stg.add_signal("to", OUT, initial=False)
    stg.add_signal("ro", OUT, initial=False)
    for t in ("ti+", "ro+", "ao+", "to+", "ti-", "ro-", "ao-", "to-"):
        stg.add_signal_transition(t)
    stg.connect("ti+", "ro+", tokens=0)
    stg.connect("ro+", "ao+", tokens=0)
    stg.connect("ao+", "to+", tokens=0)
    stg.connect("to+", "ti-", tokens=0)
    stg.connect("ti-", "ro-", tokens=0)
    stg.connect("ro-", "ao-", tokens=0)
    stg.connect("ao-", "to-", tokens=0)
    stg.connect("to-", "ti+", tokens=1)
    return stg


#: models whose STG deliberately contains an output choice: arbitration
#: primitives (the mutex) resolve such choices internally via
#: metastability and are library primitives, not SI-synthesisable specs,
#: so the output-persistence check is expected to flag them.
NON_SI_MODELS = frozenset({"mutex"})

#: registry used by tests and the stg bench: name -> (builder, mutex pairs)
ALL_MODELS: Dict[str, Tuple[Callable[[], STG], List[Tuple[str, str]]]] = {
    "celement": (celement_stg, []),
    "hs_buffer": (handshake_buffer_stg, []),
    "wait": (wait_element_stg, []),
    "mutex": (mutex_stg, [("g1", "g2")]),
    "basic_buck": (basic_buck_stg, [("gp", "gn")]),
    "charge_ctrl": (charge_ctrl_stg, [("gp", "gn")]),
    "token_ctrl": (token_ctrl_stg, []),
    "mode_ctrl": (mode_ctrl_stg, []),
    "hl_ctrl": (hl_ctrl_stg, []),
    "decoupler": (decoupler_stg, []),
}
