""".g (astg) format reader/writer — the petrify/Workcraft STG dialect.

Supported subset (covers everything the model zoo and tests need):

- ``.model``, ``.inputs``, ``.outputs``, ``.internal``, ``.dummy``
- ``.graph`` with transition->transition (implicit place),
  transition->place and place->transition edges
- ``.marking { p1 <a+,b+> }`` with implicit-place tokens
- ``#`` comments, ``.end``

Round-trip property: ``parse(write(stg))`` preserves signals, reachable
behaviour, and marking (implicit place names are not preserved — they are
structural).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .petri import PetriNetError
from .stg import STG, Label, SignalType


class ParseError(ValueError):
    """Malformed .g input."""


_MARK_TOKEN = re.compile(r"<[^>]*>|[^\s<>]+")


def parse_g(text: str) -> STG:
    """Parse a .g document into an :class:`STG`."""
    stg = STG("stg")
    dummies: List[str] = []
    graph_lines: List[List[str]] = []
    marking_tokens: List[str] = []
    in_graph = False

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".model") or line.startswith(".name"):
            parts = line.split()
            if len(parts) > 1:
                stg.name = parts[1]
            in_graph = False
        elif line.startswith(".inputs"):
            for s in line.split()[1:]:
                stg.add_signal(s, SignalType.INPUT)
            in_graph = False
        elif line.startswith(".outputs"):
            for s in line.split()[1:]:
                stg.add_signal(s, SignalType.OUTPUT)
            in_graph = False
        elif line.startswith(".internal"):
            for s in line.split()[1:]:
                stg.add_signal(s, SignalType.INTERNAL)
            in_graph = False
        elif line.startswith(".dummy"):
            dummies.extend(line.split()[1:])
            in_graph = False
        elif line.startswith(".graph"):
            in_graph = True
        elif line.startswith(".marking"):
            in_graph = False
            body = line[len(".marking"):].strip()
            if not (body.startswith("{") and body.endswith("}")):
                raise ParseError(f"malformed marking line: {raw!r}")
            marking_tokens.extend(_MARK_TOKEN.findall(body[1:-1]))
        elif line.startswith(".end"):
            break
        elif line.startswith("."):
            # unsupported directive (.capacity, .coords...) - ignore
            in_graph = False
        elif in_graph:
            graph_lines.append(line.split())
        else:
            raise ParseError(f"unexpected line outside .graph: {raw!r}")

    dummy_set = set(dummies)

    def is_transition(node: str) -> bool:
        if node in dummy_set:
            return True
        label = Label.parse(node)
        return label is not None and label.signal in stg.signal_types

    def ensure_node(node: str) -> None:
        if is_transition(node):
            if not stg.has_transition(node):
                if node in dummy_set:
                    stg.add_dummy(node)
                else:
                    stg.add_signal_transition(node)
        else:
            if node not in stg.places:
                stg.add_place(node, 0)

    implicit: Dict[Tuple[str, str], str] = {}
    for parts in graph_lines:
        source, targets = parts[0], parts[1:]
        if not targets:
            raise ParseError(f"graph line with no targets: {parts!r}")
        ensure_node(source)
        for target in targets:
            ensure_node(target)
            if is_transition(source) and is_transition(target):
                place = stg.connect(source, target, tokens=0)
                implicit[(source, target)] = place
            else:
                stg.add_arc(source, target)

    for token in marking_tokens:
        count = 1
        if "=" in token and not token.startswith("<"):
            token, count_text = token.split("=", 1)
            count = int(count_text)
        if token.startswith("<"):
            inner = token[1:-1]
            pair = tuple(x.strip() for x in inner.split(","))
            if len(pair) != 2 or pair not in implicit:
                raise ParseError(f"marking names unknown implicit place {token!r}")
            stg.places[implicit[pair]] = count
        else:
            if token not in stg.places:
                raise ParseError(f"marking names unknown place {token!r}")
            stg.places[token] = count
    return stg


def write_g(stg: STG) -> str:
    """Serialise an :class:`STG` to .g text."""
    lines = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs " + " ".join(stg.outputs))
    if stg.internals:
        lines.append(".internal " + " ".join(stg.internals))
    dummies = [t for t, lbl in stg.labels.items() if lbl is None]
    if dummies:
        lines.append(".dummy " + " ".join(dummies))
    lines.append(".graph")

    # Decide which places can be rendered implicitly (1 producer, 1
    # consumer, auto-generated name, no duplicate pair).
    pair_counts: Dict[Tuple[str, str], int] = {}
    place_pair: Dict[str, Tuple[str, str]] = {}
    for place in stg.places:
        producers = sorted(stg.place_preset(place))
        consumers = sorted(stg.place_post[place])
        if (place.startswith("<") and len(producers) == 1
                and len(consumers) == 1 and stg.places[place] <= 1):
            pair = (producers[0], consumers[0])
            place_pair[place] = pair
            pair_counts[pair] = pair_counts.get(pair, 0) + 1

    implicit_places = {p: pair for p, pair in place_pair.items()
                       if pair_counts[pair] == 1}

    def emit_name(place: str) -> str:
        # explicit place names must not contain whitespace or angle brackets
        return place.replace("<", "p_").replace(">", "_").replace(",", "_") \
                    .replace("#", "_")

    for place, (src, dst) in sorted(implicit_places.items()):
        lines.append(f"{src} {dst}")
    for place in sorted(stg.places):
        if place in implicit_places:
            continue
        name = emit_name(place)
        for t in sorted(stg.place_preset(place)):
            lines.append(f"{t} {name}")
        for t in sorted(stg.place_post[place]):
            lines.append(f"{name} {t}")

    tokens = []
    for place, count in sorted(stg.places.items()):
        if count <= 0:
            continue
        if place in implicit_places:
            src, dst = implicit_places[place]
            tokens.append(f"<{src},{dst}>")
        else:
            name = emit_name(place)
            tokens.append(name + (f"={count}" if count > 1 else ""))
    lines.append(".marking { " + " ".join(tokens) + " }")
    lines.append(".end")
    return "\n".join(lines) + "\n"
