"""Petri net core: places, transitions, arcs, markings, firing.

Signal transition graphs (:mod:`repro.stg.stg`) extend this net model with
signal-labelled transitions.  Markings are multisets (``dict`` place ->
token count); the verification layer checks 1-safeness explicitly rather
than assuming it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

Marking = Tuple[Tuple[str, int], ...]  # canonical sorted (place, count) pairs


def marking_key(tokens: Mapping[str, int]) -> Marking:
    """Canonical hashable form of a marking (zero-count places dropped)."""
    return tuple(sorted((p, c) for p, c in tokens.items() if c > 0))


class PetriNetError(ValueError):
    """Structural misuse of a net (unknown nodes, duplicate names, ...)."""


class PetriNet:
    """A place/transition net with unit-weight arcs.

    Examples
    --------
    >>> net = PetriNet("hs")
    >>> net.add_place("idle", tokens=1)
    >>> net.add_transition("go")
    >>> net.add_arc("idle", "go")
    >>> net.enabled(net.initial_marking())
    ['go']
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self.places: Dict[str, int] = {}       # place -> initial tokens
        self.transitions: List[str] = []
        self._transition_set: Set[str] = set()
        self.preset: Dict[str, Set[str]] = {}   # transition -> input places
        self.postset: Dict[str, Set[str]] = {}  # transition -> output places
        self.place_post: Dict[str, Set[str]] = {}  # place -> consuming transitions

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(self, place: str, tokens: int = 0) -> None:
        if place in self.places:
            raise PetriNetError(f"duplicate place {place!r}")
        if place in self._transition_set:
            raise PetriNetError(f"name {place!r} already used by a transition")
        if tokens < 0:
            raise PetriNetError("token count cannot be negative")
        self.places[place] = tokens
        self.place_post[place] = set()

    def add_transition(self, transition: str) -> None:
        if transition in self._transition_set:
            raise PetriNetError(f"duplicate transition {transition!r}")
        if transition in self.places:
            raise PetriNetError(f"name {transition!r} already used by a place")
        self.transitions.append(transition)
        self._transition_set.add(transition)
        self.preset[transition] = set()
        self.postset[transition] = set()

    def add_arc(self, source: str, target: str) -> None:
        """Add an arc place->transition or transition->place."""
        if source in self.places and target in self._transition_set:
            self.preset[target].add(source)
            self.place_post[source].add(target)
        elif source in self._transition_set and target in self.places:
            self.postset[source].add(target)
        else:
            raise PetriNetError(
                f"arc {source!r} -> {target!r} must connect a place and a transition"
            )

    def has_transition(self, transition: str) -> bool:
        return transition in self._transition_set

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def initial_marking(self) -> Dict[str, int]:
        return {p: c for p, c in self.places.items() if c > 0}

    def is_enabled(self, transition: str, marking: Mapping[str, int]) -> bool:
        return all(marking.get(p, 0) >= 1 for p in self.preset[transition])

    def enabled(self, marking: Mapping[str, int]) -> List[str]:
        """Transitions enabled at ``marking``, in insertion order."""
        return [t for t in self.transitions if self.is_enabled(t, marking)]

    def fire(self, transition: str, marking: Mapping[str, int]) -> Dict[str, int]:
        """Fire ``transition``; returns the successor marking (input unchanged)."""
        if not self.is_enabled(transition, marking):
            raise PetriNetError(f"transition {transition!r} is not enabled")
        new: Dict[str, int] = dict(marking)
        for p in self.preset[transition]:
            new[p] = new.get(p, 0) - 1
            if new[p] == 0:
                del new[p]
        for p in self.postset[transition]:
            new[p] = new.get(p, 0) + 1
        return new

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def place_preset(self, place: str) -> Set[str]:
        """Transitions producing into ``place``."""
        return {t for t in self.transitions if place in self.postset[t]}

    def stats(self) -> Dict[str, int]:
        n_arcs = sum(len(s) for s in self.preset.values())
        n_arcs += sum(len(s) for s in self.postset.values())
        return {
            "places": len(self.places),
            "transitions": len(self.transitions),
            "arcs": n_arcs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (f"PetriNet({self.name!r}, |P|={s['places']}, "
                f"|T|={s['transitions']}, |F|={s['arcs']})")
