"""Quine–McCluskey two-level boolean minimisation with don't-cares.

Used by :mod:`repro.stg.synthesis` to turn next-state truth tables derived
from the state graph into compact sum-of-products expressions (the
complex-gate / gC implementations Petrify would emit).

Terms are represented as strings over ``{'0','1','-'}`` (one character per
variable), e.g. ``"1-0"`` = ``x0 & ~x2``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple


def _bits(value: int, n: int) -> str:
    return format(value, f"0{n}b")


def _combine(a: str, b: str) -> str:
    """Merge two implicants differing in exactly one defined bit, or ''."""
    diff = 0
    out = []
    for x, y in zip(a, b):
        if x == y:
            out.append(x)
        elif x != "-" and y != "-":
            diff += 1
            out.append("-")
        else:
            return ""
    return "".join(out) if diff == 1 else ""


def _covers(implicant: str, minterm: int, n: int) -> bool:
    m = _bits(minterm, n)
    return all(i == "-" or i == b for i, b in zip(implicant, m))


def prime_implicants(minterms: Iterable[int], dont_cares: Iterable[int],
                     n_vars: int) -> List[str]:
    """All prime implicants of the function (ON-set + DC-set)."""
    current: Set[str] = {_bits(m, n_vars) for m in set(minterms) | set(dont_cares)}
    primes: Set[str] = set()
    while current:
        nxt: Set[str] = set()
        merged: Set[str] = set()
        items = sorted(current)
        for a, b in combinations(items, 2):
            c = _combine(a, b)
            if c:
                nxt.add(c)
                merged.add(a)
                merged.add(b)
        primes |= current - merged
        current = nxt
    return sorted(primes)


def minimize(minterms: Sequence[int], dont_cares: Sequence[int],
             n_vars: int) -> List[str]:
    """Minimal (greedy, essential-first) SOP cover of the ON-set.

    Returns a list of implicant strings; empty list = constant 0, and a
    single all-dash implicant = constant 1.
    """
    on = sorted(set(minterms))
    if not on:
        return []
    if n_vars == 0:
        return ["-" * 0] if on else []
    dc = set(dont_cares) - set(on)
    if len(on) + len(dc) == 2 ** n_vars:
        return ["-" * n_vars]
    primes = prime_implicants(on, dc, n_vars)

    cover_map: Dict[int, List[str]] = {
        m: [p for p in primes if _covers(p, m, n_vars)] for m in on
    }
    chosen: List[str] = []
    remaining: Set[int] = set(on)

    # Essential primes first.
    for m in on:
        if len(cover_map[m]) == 1:
            p = cover_map[m][0]
            if p not in chosen:
                chosen.append(p)
    for p in chosen:
        remaining -= {m for m in remaining if _covers(p, m, n_vars)}

    # Greedy cover of the rest.
    while remaining:
        best = max(primes, key=lambda p: (
            sum(1 for m in remaining if _covers(p, m, n_vars)),
            p.count("-"),
        ))
        gained = {m for m in remaining if _covers(best, m, n_vars)}
        if not gained:  # pragma: no cover - cannot happen with true primes
            raise RuntimeError("prime implicant table does not cover ON-set")
        chosen.append(best)
        remaining -= gained
    return chosen


def implicant_to_expr(implicant: str, names: Sequence[str]) -> str:
    """Render one implicant, e.g. ``"1-0"`` with names [a,b,c] -> ``"a c'"``."""
    parts = []
    for ch, name in zip(implicant, names):
        if ch == "1":
            parts.append(name)
        elif ch == "0":
            parts.append(f"{name}'")
    return " ".join(parts) if parts else "1"


def sop_to_expr(implicants: Sequence[str], names: Sequence[str]) -> str:
    """Render a cover as a sum-of-products string (``"0"`` for empty)."""
    if not implicants:
        return "0"
    return " + ".join(implicant_to_expr(i, names) for i in implicants)


def evaluate_sop(implicants: Sequence[str], assignment: Sequence[int]) -> bool:
    """Evaluate a cover on a 0/1 assignment vector."""
    for imp in implicants:
        if all(ch == "-" or int(ch) == bit for ch, bit in zip(imp, assignment)):
            return True
    return False


def support(implicants: Sequence[str]) -> FrozenSet[int]:
    """Indices of variables the cover actually depends on."""
    used = set()
    for imp in implicants:
        for i, ch in enumerate(imp):
            if ch != "-":
                used.add(i)
    return frozenset(used)
