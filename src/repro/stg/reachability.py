"""Reachability analysis: state graph construction for STGs.

A state is a reachable marking together with the binary signal code.
Initial signal values may be left unspecified — they are inferred on first
use (a rising edge implies the signal was 0) and contradictions across
paths are reported as consistency violations.

The builder also detects, on the fly:

- **non-safeness** (a place accumulating more than one token),
- **inconsistency** (``a+`` firing while ``a`` is already 1, or two paths
  reaching one marking with different codes),
- **deadlocks** (states with no enabled transitions).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .petri import Marking, marking_key
from .stg import STG, Label, SignalType

#: signal-code cell values
V0, V1, VUNKNOWN = 0, 1, 2

Code = Tuple[int, ...]
StateKey = Tuple[Marking, Code]


class ReachabilityError(RuntimeError):
    """State-space construction failed (explosion guard tripped)."""


class ConsistencyViolation:
    """A rise-of-1 / fall-of-0 event, or a marking with conflicting codes."""

    def __init__(self, kind: str, detail: str, trace: List[str]):
        self.kind = kind
        self.detail = detail
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConsistencyViolation({self.kind}: {self.detail})"


class State:
    """One node of the state graph."""

    __slots__ = ("index", "marking", "code", "successors", "parent", "via")

    def __init__(self, index: int, marking: Marking, code: Code,
                 parent: Optional["State"], via: Optional[str]):
        self.index = index
        self.marking = marking
        self.code = code
        #: list of (transition_name, successor State)
        self.successors: List[Tuple[str, "State"]] = []
        self.parent = parent
        self.via = via

    def trace(self) -> List[str]:
        """Firing sequence from the initial state to this state."""
        steps: List[str] = []
        node: Optional[State] = self
        while node is not None and node.via is not None:
            steps.append(node.via)
            node = node.parent
        return list(reversed(steps))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"State(#{self.index}, code={''.join(map(str, self.code))})"


class StateGraph:
    """Explicit state graph of an STG.

    Parameters
    ----------
    max_states:
        Explosion guard; :class:`ReachabilityError` when exceeded.
    """

    def __init__(self, stg: STG, max_states: int = 200_000):
        self.stg = stg
        self.signal_order: List[str] = sorted(stg.signal_types)
        self._signal_index = {s: i for i, s in enumerate(self.signal_order)}
        self.states: Dict[StateKey, State] = {}
        self.initial: Optional[State] = None
        self.deadlocks: List[State] = []
        self.consistency_violations: List[ConsistencyViolation] = []
        self.unsafe_places: Set[str] = set()
        self._max_states = max_states
        self._code_of_marking: Dict[Marking, Code] = {}
        self._inferred: Dict[str, bool] = {}
        needs_inference = any(
            s not in stg.initial_values
            for s in self.signal_order
            if stg.transitions_of(s))
        if needs_inference:
            self._infer_initial_values()
        self._build()

    # ------------------------------------------------------------------
    def _initial_code(self) -> Code:
        code = []
        for s in self.signal_order:
            if s in self.stg.initial_values:
                code.append(V1 if self.stg.initial_values[s] else V0)
            elif s in self._inferred:
                code.append(V1 if self._inferred[s] else V0)
            else:
                code.append(VUNKNOWN)
        return tuple(code)

    def _infer_initial_values(self) -> None:
        """Pre-pass: walk the marking graph resolving unknown initial
        signal values on first use (a rising edge implies the signal was
        0 at t=0 along that path).  Cross-path disagreements are recorded
        as consistency violations; the main build then runs with fully
        resolved initial values so cyclic behaviour closes properly."""
        stg = self.stg
        unresolved = {s for s in self.signal_order
                      if s not in stg.initial_values and stg.transitions_of(s)}
        init_marking = marking_key(stg.initial_marking())
        init_code = tuple(
            (V1 if stg.initial_values[s] else V0)
            if s in stg.initial_values else VUNKNOWN
            for s in self.signal_order)
        seen = {(init_marking, init_code)}
        queue = deque([(init_marking, init_code)])
        explored = 0
        while queue and unresolved:
            marking, code = queue.popleft()
            explored += 1
            if explored > self._max_states:
                break
            marking_dict = dict(marking)
            for t in stg.enabled(marking_dict):
                new_marking_dict = stg.fire(t, marking_dict)
                if any(c > 1 for c in new_marking_dict.values()):
                    continue
                label = stg.label_of(t)
                new_code = code
                if label is not None:
                    idx = self._signal_index[label.signal]
                    value = code[idx]
                    want_pre = V0 if label.rising else V1
                    if value == VUNKNOWN:
                        inferred = bool(want_pre)
                        prior = self._inferred.get(label.signal)
                        if prior is None:
                            self._inferred[label.signal] = inferred
                            unresolved.discard(label.signal)
                        elif prior != inferred:
                            self.consistency_violations.append(
                                ConsistencyViolation(
                                    "initial",
                                    f"paths disagree on the initial value "
                                    f"of {label.signal!r}", [t]))
                        value = want_pre
                    if value != want_pre:
                        continue  # inconsistent branch; main pass reports it
                    cells = list(code)
                    cells[idx] = V1 if label.rising else V0
                    new_code = tuple(cells)
                key = (marking_key(new_marking_dict), new_code)
                if key not in seen:
                    seen.add(key)
                    queue.append(key)

    def _apply_label(self, code: Code, label: Label,
                     trace_state: State, transition: str) -> Optional[Code]:
        """Next code after firing a labelled transition; None on conflict."""
        idx = self._signal_index[label.signal]
        value = code[idx]
        want_pre = V0 if label.rising else V1
        if value == VUNKNOWN:
            value = want_pre  # inferred initial value
        if value != want_pre:
            self.consistency_violations.append(ConsistencyViolation(
                "edge",
                f"{transition} fires while {label.signal}="
                f"{1 if value == V1 else 0}",
                trace_state.trace() + [transition],
            ))
            return None
        new = list(code)
        new[idx] = V1 if label.rising else V0
        return tuple(new)

    def _build(self) -> None:
        stg = self.stg
        init_marking = marking_key(stg.initial_marking())
        init_code = self._initial_code()
        self.initial = State(0, init_marking, init_code, None, None)
        self.states[(init_marking, init_code)] = self.initial
        self._code_of_marking[init_marking] = init_code
        queue = deque([self.initial])

        while queue:
            state = queue.popleft()
            marking = dict(state.marking)
            enabled = stg.enabled(marking)
            if not enabled:
                self.deadlocks.append(state)
                continue
            for t in enabled:
                new_marking_dict = stg.fire(t, marking)
                unsafe_here = [p for p, c in new_marking_dict.items() if c > 1]
                if unsafe_here:
                    # Record the violation but do not expand past it: STG
                    # semantics require 1-safeness, and an unbounded net
                    # would otherwise blow up the exploration.
                    self.unsafe_places.update(unsafe_here)
                    continue
                new_marking = marking_key(new_marking_dict)
                label = stg.label_of(t)
                if label is not None:
                    new_code = self._apply_label(state.code, label, state, t)
                    if new_code is None:
                        continue  # inconsistent branch: do not expand
                else:
                    new_code = state.code
                key = (new_marking, new_code)
                nxt = self.states.get(key)
                if nxt is None:
                    if len(self.states) >= self._max_states:
                        raise ReachabilityError(
                            f"state graph of {stg.name!r} exceeds "
                            f"{self._max_states} states")
                    nxt = State(len(self.states), new_marking, new_code,
                                state, t)
                    self.states[key] = nxt
                    queue.append(nxt)
                    known = self._code_of_marking.get(new_marking)
                    if known is None:
                        self._code_of_marking[new_marking] = new_code
                    elif known != new_code:
                        self.consistency_violations.append(ConsistencyViolation(
                            "marking-code",
                            f"marking reached with codes {known} and {new_code}",
                            nxt.trace(),
                        ))
                state.successors.append((t, nxt))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.states)

    def all_states(self) -> List[State]:
        return list(self.states.values())

    def is_safe(self) -> bool:
        return not self.unsafe_places

    def is_consistent(self) -> bool:
        return not self.consistency_violations

    def is_deadlock_free(self) -> bool:
        return not self.deadlocks

    def enabled_labels(self, state: State) -> List[Label]:
        out = []
        for t, _ in state.successors:
            label = self.stg.label_of(t)
            if label is not None:
                out.append(label)
        return out

    def code_str(self, state: State) -> str:
        """Human-readable signal code, e.g. ``"a=1 b=0"``."""
        cells = []
        for s, v in zip(self.signal_order, state.code):
            cells.append(f"{s}={'?' if v == VUNKNOWN else v}")
        return " ".join(cells)
