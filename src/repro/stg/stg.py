"""Signal transition graphs (STGs).

An STG is a Petri net whose transitions are labelled with rising (``a+``)
or falling (``a-``) edges of circuit signals (Chu [10] in the paper).
Signals are classified as *input* (driven by the environment), *output* /
*internal* (driven by the circuit), or *dummy* (unlabelled structural
transitions).

Transition naming follows the astg/petrify convention: ``a+``, ``a-``,
and numbered instances ``a+/1``, ``a-/2`` when a signal edge occurs in
several places of the net.
"""

from __future__ import annotations

import re
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from .petri import PetriNet, PetriNetError


class SignalType(Enum):
    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_\[\].]*)([+\-~])(?:/(\d+))?$")


class Label:
    """Parsed transition label: signal, direction, instance number."""

    __slots__ = ("signal", "direction", "instance")

    def __init__(self, signal: str, direction: str, instance: int = 0):
        if direction not in ("+", "-"):
            raise ValueError(f"direction must be '+' or '-', got {direction!r}")
        self.signal = signal
        self.direction = direction
        self.instance = instance

    @classmethod
    def parse(cls, text: str) -> Optional["Label"]:
        """Parse ``a+``, ``b-/2`` ... ; returns None for dummy names."""
        match = _LABEL_RE.match(text)
        if match is None or match.group(2) == "~":
            return None
        return cls(match.group(1), match.group(2), int(match.group(3) or 0))

    @property
    def rising(self) -> bool:
        return self.direction == "+"

    def __str__(self) -> str:
        suffix = f"/{self.instance}" if self.instance else ""
        return f"{self.signal}{self.direction}{suffix}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Label({self!s})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Label) and self.signal == other.signal
                and self.direction == other.direction
                and self.instance == other.instance)

    def __hash__(self) -> int:
        return hash((self.signal, self.direction, self.instance))


class STG(PetriNet):
    """A signal transition graph.

    Use :meth:`add_signal` to declare signals, then
    :meth:`add_signal_transition` (or plain :meth:`add_transition` for
    dummies).  ``initial_values`` may leave signals unset; the reachability
    layer infers values on first use and flags contradictions.
    """

    def __init__(self, name: str = "stg"):
        super().__init__(name)
        self.signal_types: Dict[str, SignalType] = {}
        self.labels: Dict[str, Optional[Label]] = {}
        self.initial_values: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_signal(self, signal: str, kind: SignalType,
                   initial: Optional[bool] = None) -> None:
        if signal in self.signal_types:
            raise PetriNetError(f"duplicate signal {signal!r}")
        if kind == SignalType.DUMMY:
            raise PetriNetError("dummy is a transition property, not a signal type")
        self.signal_types[signal] = kind
        if initial is not None:
            self.initial_values[signal] = bool(initial)

    def add_signal_transition(self, label_text: str) -> str:
        """Add a transition labelled e.g. ``"uv+"`` or ``"gp-/1"``.

        Returns the transition name (identical to the label text).
        """
        label = Label.parse(label_text)
        if label is None:
            raise PetriNetError(f"cannot parse signal label {label_text!r}")
        if label.signal not in self.signal_types:
            raise PetriNetError(f"unknown signal {label.signal!r} in {label_text!r}")
        self.add_transition(label_text)
        self.labels[label_text] = label
        return label_text

    def add_transition(self, transition: str) -> None:
        super().add_transition(transition)
        self.labels.setdefault(transition, None)

    def add_dummy(self, name: str) -> str:
        """Add an unlabelled (dummy) transition."""
        self.add_transition(name)
        return name

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def label_of(self, transition: str) -> Optional[Label]:
        return self.labels.get(transition)

    def signals(self, kind: Optional[SignalType] = None) -> List[str]:
        if kind is None:
            return sorted(self.signal_types)
        return sorted(s for s, k in self.signal_types.items() if k == kind)

    @property
    def inputs(self) -> List[str]:
        return self.signals(SignalType.INPUT)

    @property
    def outputs(self) -> List[str]:
        return self.signals(SignalType.OUTPUT)

    @property
    def internals(self) -> List[str]:
        return self.signals(SignalType.INTERNAL)

    @property
    def non_inputs(self) -> List[str]:
        return sorted(self.outputs + self.internals)

    def is_input_transition(self, transition: str) -> bool:
        label = self.labels.get(transition)
        return (label is not None
                and self.signal_types[label.signal] == SignalType.INPUT)

    def transitions_of(self, signal: str) -> List[str]:
        return [t for t, lbl in self.labels.items()
                if lbl is not None and lbl.signal == signal]

    # ------------------------------------------------------------------
    # Convenience construction: chains of transitions
    # ------------------------------------------------------------------
    _auto_place = 0

    def connect(self, from_transition: str, to_transition: str,
                tokens: int = 0, place: Optional[str] = None) -> str:
        """Insert an implicit place between two transitions.

        Returns the place name.  ``tokens`` sets its initial marking —
        ``tokens=1`` creates the token that makes ``to_transition`` the
        first to fire on that path.
        """
        if place is None:
            STG._auto_place += 1
            place = f"<{from_transition},{to_transition}>#{STG._auto_place}"
        self.add_place(place, tokens)
        self.add_arc(from_transition, place)
        self.add_arc(place, to_transition)
        return place

    def chain(self, transitions: Iterable[str], cyclic: bool = True,
              token_before: Optional[str] = None) -> None:
        """Connect ``transitions`` in sequence with implicit places.

        With ``cyclic=True`` the last transition is connected back to the
        first.  ``token_before`` names the transition whose input place
        carries the single initial token (default: the first one).
        """
        seq = list(transitions)
        if len(seq) < 2:
            raise PetriNetError("chain needs at least two transitions")
        first = token_before if token_before is not None else seq[0]
        if first not in seq:
            raise PetriNetError(f"{first!r} is not in the chain")
        for a, b in zip(seq, seq[1:]):
            self.connect(a, b, tokens=1 if b == first else 0)
        if cyclic:
            self.connect(seq[-1], seq[0], tokens=1 if seq[0] == first else 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (f"STG({self.name!r}, in={len(self.inputs)}, "
                f"out={len(self.outputs)}, |T|={s['transitions']})")
