"""Speed-independent logic synthesis from STG state graphs.

Derives, for every output/internal signal:

- the **complex-gate** next-state function ``s' = F(code)``, or
- the **generalised C-element (gC)** set/reset pair ``S(code)``/``R(code)``,

minimised with Quine–McCluskey.  A CSC conflict (two reachable states with
identical codes requiring different behaviour of a non-input signal) makes
synthesis impossible and raises :class:`CSCConflictError` with the
offending traces — this mirrors Petrify/MPSat behaviour in the A4A flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import qm
from .reachability import State, StateGraph, V1, VUNKNOWN
from .stg import STG, SignalType


class SynthesisError(RuntimeError):
    """Synthesis could not proceed (unknown codes, bad signal kind...)."""


class CSCConflictError(SynthesisError):
    """Complete State Coding violation for a specific signal."""

    def __init__(self, signal: str, code: Tuple[int, ...],
                 state_a: State, state_b: State):
        self.signal = signal
        self.code = code
        self.state_a = state_a
        self.state_b = state_b
        super().__init__(
            f"CSC conflict for {signal!r}: states #{state_a.index} and "
            f"#{state_b.index} share code {''.join(map(str, code))}")


@dataclass
class SignalFunction:
    """Synthesised logic for one signal."""

    signal: str
    variables: List[str]
    implicants: List[str]          # SOP cover over ``variables``
    style: str                     # 'complex-gate' | 'gc-set' | 'gc-reset'

    def expression(self) -> str:
        return qm.sop_to_expr(self.implicants, self.variables)

    def evaluate(self, values: Dict[str, bool]) -> bool:
        assignment = [int(values[v]) for v in self.variables]
        return qm.evaluate_sop(self.implicants, assignment)

    def literal_count(self) -> int:
        return sum(len(i) - i.count("-") for i in self.implicants)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SignalFunction({self.signal} [{self.style}] = {self.expression()})"


@dataclass
class GCImplementation:
    """Set/reset pair targeting an asymmetric C-element."""

    signal: str
    set_function: SignalFunction
    reset_function: SignalFunction

    def expression(self) -> str:
        return (f"{self.signal}: set = {self.set_function.expression()}, "
                f"reset = {self.reset_function.expression()}")


def _excitation(sg: StateGraph, signal: str):
    """Classify every reachable state for ``signal``.

    Returns (codes, rising, falling, high) where ``rising``/``falling`` are
    the sets of codes in which ``signal+``/``signal-`` is enabled and
    ``high`` the codes where the signal is currently 1.  Raises on unknown
    code bits or CSC conflicts.
    """
    stg = sg.stg
    if signal not in stg.signal_types:
        raise SynthesisError(f"unknown signal {signal!r}")
    if stg.signal_types[signal] == SignalType.INPUT:
        raise SynthesisError(f"cannot synthesise logic for input {signal!r}")
    idx = sg.signal_order.index(signal)

    seen: Dict[Tuple[int, ...], Tuple[State, bool, bool]] = {}
    for state in sg.all_states():
        if any(v == VUNKNOWN for v in state.code):
            raise SynthesisError(
                f"state #{state.index} has undetermined signal values; "
                f"provide initial values for all signals of {stg.name!r}")
        rising = falling = False
        for t, _ in state.successors:
            lbl = stg.label_of(t)
            if lbl is not None and lbl.signal == signal:
                if lbl.rising:
                    rising = True
                else:
                    falling = True
        prev = seen.get(state.code)
        if prev is None:
            seen[state.code] = (state, rising, falling)
        elif (prev[1], prev[2]) != (rising, falling):
            raise CSCConflictError(signal, state.code, prev[0], state)
    codes = {}
    for code, (state, rising, falling) in seen.items():
        high = code[idx] == V1
        codes[code] = (rising, falling, high)
    return codes


def _code_to_int(code: Tuple[int, ...]) -> int:
    value = 0
    for bit in code:
        value = (value << 1) | bit
    return value


def synthesize_complex_gate(sg: StateGraph, signal: str) -> SignalFunction:
    """Next-state function: 1 where the signal is (or is becoming) high.

    ON-set: states where the signal is 1 and stable, or rising.
    OFF-set: states where it is 0 and stable, or falling.
    Unreachable codes are don't-cares.
    """
    codes = _excitation(sg, signal)
    n = len(sg.signal_order)
    on, off = [], []
    for code, (rising, falling, high) in codes.items():
        target = rising or (high and not falling)
        (on if target else off).append(_code_to_int(code))
    dc = [v for v in range(2 ** n) if v not in set(on) | set(off)]
    cover = qm.minimize(on, dc, n)
    return SignalFunction(signal, list(sg.signal_order), cover, "complex-gate")


def synthesize_gc(sg: StateGraph, signal: str) -> GCImplementation:
    """Set/reset pair for a gC latch implementation.

    Set must hold in every rising-excited state and must not hold in any
    stable-0 or falling state (don't-care while the signal is stable 1);
    dually for reset.
    """
    codes = _excitation(sg, signal)
    n = len(sg.signal_order)
    set_on, set_off, reset_on, reset_off = [], [], [], []
    for code, (rising, falling, high) in codes.items():
        value = _code_to_int(code)
        if rising:
            set_on.append(value)
            reset_off.append(value)
        elif falling:
            reset_on.append(value)
            set_off.append(value)
        elif high:
            reset_off.append(value)   # must not spuriously reset
        else:
            set_off.append(value)     # must not spuriously set
    all_codes = set(range(2 ** n))
    set_dc = sorted(all_codes - set(set_on) - set(set_off))
    reset_dc = sorted(all_codes - set(reset_on) - set(reset_off))
    set_cover = qm.minimize(set_on, set_dc, n)
    reset_cover = qm.minimize(reset_on, reset_dc, n)
    names = list(sg.signal_order)
    return GCImplementation(
        signal,
        SignalFunction(signal, names, set_cover, "gc-set"),
        SignalFunction(signal, names, reset_cover, "gc-reset"),
    )


@dataclass
class SynthesisResult:
    """Complete synthesis of an STG: one function per non-input signal."""

    stg_name: str
    complex_gates: Dict[str, SignalFunction] = field(default_factory=dict)
    gc_latches: Dict[str, GCImplementation] = field(default_factory=dict)

    def netlist_summary(self) -> str:
        lines = [f"synthesis of {self.stg_name!r}:"]
        for s, fn in sorted(self.complex_gates.items()):
            lines.append(f"  [{s}] = {fn.expression()}")
        for s, gc in sorted(self.gc_latches.items()):
            lines.append(f"  {gc.expression()}")
        return "\n".join(lines)

    def total_literals(self) -> int:
        total = sum(f.literal_count() for f in self.complex_gates.values())
        total += sum(g.set_function.literal_count() +
                     g.reset_function.literal_count()
                     for g in self.gc_latches.values())
        return total


def synthesize(stg: STG, style: str = "complex-gate",
               max_states: int = 200_000) -> SynthesisResult:
    """Synthesise every output/internal signal of ``stg``.

    ``style`` is ``"complex-gate"`` or ``"gc"``.
    """
    if style not in ("complex-gate", "gc"):
        raise SynthesisError(f"unknown synthesis style {style!r}")
    sg = StateGraph(stg, max_states=max_states)
    result = SynthesisResult(stg.name)
    for signal in stg.non_inputs:
        if style == "complex-gate":
            result.complex_gates[signal] = synthesize_complex_gate(sg, signal)
        else:
            result.gc_latches[signal] = synthesize_gc(sg, signal)
    return result
