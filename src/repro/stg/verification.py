"""STG verification: the A4A flow's sanity and correctness checks.

The paper (Sec. IV) verifies, for every controller module: consistency,
deadlock-freeness, output-persistence, plus design-specific invariants —
most importantly *the absence of a short circuit* (PMOS and NMOS gate
signals never both active).  This module implements those checks on the
explicit state graph, each returning a :class:`CheckResult` carrying a
counterexample trace when violated (Workcraft's "violation traces").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .reachability import State, StateGraph, V1, VUNKNOWN
from .stg import STG, SignalType


@dataclass
class CheckResult:
    """Outcome of one verification check."""

    name: str
    passed: bool
    detail: str = ""
    trace: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.passed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "PASS" if self.passed else f"FAIL ({self.detail})"
        return f"CheckResult({self.name}: {status})"


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------

def check_safeness(sg: StateGraph) -> CheckResult:
    """Every place holds at most one token in every reachable marking."""
    if sg.is_safe():
        return CheckResult("safeness", True)
    return CheckResult("safeness", False,
                       f"unsafe places: {sorted(sg.unsafe_places)}")


def check_consistency(sg: StateGraph) -> CheckResult:
    """Signal edges strictly alternate (a+ only from a=0, a- from a=1)."""
    if sg.is_consistent():
        return CheckResult("consistency", True)
    v = sg.consistency_violations[0]
    return CheckResult("consistency", False, v.detail, v.trace)


def check_deadlock_freeness(sg: StateGraph) -> CheckResult:
    """Every reachable state enables at least one transition."""
    if sg.is_deadlock_free():
        return CheckResult("deadlock-freeness", True)
    dead = sg.deadlocks[0]
    return CheckResult("deadlock-freeness", False,
                       f"deadlock in state #{dead.index}", dead.trace())


def check_output_persistence(sg: StateGraph) -> CheckResult:
    """An enabled non-input transition may not be disabled by another
    transition firing — the hazard-freedom requirement for speed-
    independent implementability.

    Two enabled transitions of the *same signal and direction* are treated
    as one commitment (firing either keeps the promise), as are mutually
    exclusive choices between input transitions (environment's choice).
    """
    stg = sg.stg
    for state in sg.all_states():
        enabled = {t for t, _ in state.successors}
        for t in enabled:
            if stg.is_input_transition(t) or stg.label_of(t) is None:
                continue
            label = stg.label_of(t)
            for u, nxt in state.successors:
                if u == t:
                    continue
                still = {name for name, _ in nxt.successors}
                if t in still:
                    continue
                # same signal+direction counts as the same commitment
                same_promise = any(
                    (lbl := stg.label_of(name)) is not None
                    and lbl.signal == label.signal
                    and lbl.direction == label.direction
                    for name in still)
                u_label = stg.label_of(u)
                fired_same = (u_label is not None
                              and u_label.signal == label.signal
                              and u_label.direction == label.direction)
                if not (same_promise or fired_same):
                    return CheckResult(
                        "output-persistence", False,
                        f"{u} disables pending {t} in state #{state.index}",
                        state.trace() + [u])
    return CheckResult("output-persistence", True)


def check_csc(sg: StateGraph) -> CheckResult:
    """Complete State Coding: states with equal codes must enable the same
    non-input signal edges (otherwise next-state logic is ambiguous)."""
    stg = sg.stg
    by_code: Dict[Tuple[int, ...], Tuple[State, frozenset]] = {}
    for state in sg.all_states():
        excited = frozenset(
            (lbl.signal, lbl.direction)
            for t, _ in state.successors
            if (lbl := stg.label_of(t)) is not None
            and stg.signal_types[lbl.signal] != SignalType.INPUT)
        seen = by_code.get(state.code)
        if seen is None:
            by_code[state.code] = (state, excited)
        elif seen[1] != excited:
            return CheckResult(
                "csc", False,
                f"states #{seen[0].index} and #{state.index} share a code "
                f"but enable different outputs", state.trace())
    return CheckResult("csc", True)


def check_usc(sg: StateGraph) -> CheckResult:
    """Unique State Coding: distinct markings never share a signal code."""
    seen: Dict[Tuple[int, ...], State] = {}
    for state in sg.all_states():
        other = seen.get(state.code)
        if other is None:
            seen[state.code] = state
        elif other.marking != state.marking:
            return CheckResult(
                "usc", False,
                f"markings of states #{other.index} and #{state.index} "
                f"share code", state.trace())
    return CheckResult("usc", True)


def check_mutual_exclusion(sg: StateGraph, a: str, b: str) -> CheckResult:
    """Signals ``a`` and ``b`` are never 1 simultaneously.

    This is the paper's short-circuit check with ``a=gp``, ``b=gn``.
    """
    ia = sg.signal_order.index(a)
    ib = sg.signal_order.index(b)
    for state in sg.all_states():
        if state.code[ia] == V1 and state.code[ib] == V1:
            return CheckResult(
                f"mutex({a},{b})", False,
                f"both {a} and {b} high in state #{state.index}",
                state.trace())
    return CheckResult(f"mutex({a},{b})", True)


def check_never_all(sg: StateGraph, signals: Sequence[str]) -> CheckResult:
    """Generalised mutual exclusion over any signal set."""
    idx = [sg.signal_order.index(s) for s in signals]
    for state in sg.all_states():
        if all(state.code[i] == V1 for i in idx):
            return CheckResult(
                f"never-all({','.join(signals)})", False,
                f"all high in state #{state.index}", state.trace())
    return CheckResult(f"never-all({','.join(signals)})", True)


# ---------------------------------------------------------------------------
# Combined report
# ---------------------------------------------------------------------------

@dataclass
class VerificationReport:
    """All standard checks for one STG, Workcraft-style."""

    stg_name: str
    n_states: int
    results: List[CheckResult]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def result(self, name: str) -> CheckResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def summary(self) -> str:
        lines = [f"verification of {self.stg_name!r} ({self.n_states} states):"]
        for r in self.results:
            status = "PASS" if r.passed else f"FAIL - {r.detail}"
            lines.append(f"  {r.name + ':':<25} {status}")
            if not r.passed and r.trace:
                lines.append(f"    trace: {' '.join(r.trace)}")
        return "\n".join(lines)


def verify(stg: STG, mutex_pairs: Sequence[Tuple[str, str]] = (),
           require_csc: bool = False,
           max_states: int = 200_000) -> VerificationReport:
    """Run the A4A sanity suite on ``stg``.

    ``mutex_pairs`` adds design-specific short-circuit checks;
    ``require_csc`` includes CSC (needed before synthesis, but optional for
    environment-facing specs).
    """
    sg = StateGraph(stg, max_states=max_states)
    results = [
        check_safeness(sg),
        check_consistency(sg),
        check_deadlock_freeness(sg),
        check_output_persistence(sg),
    ]
    if require_csc:
        results.append(check_csc(sg))
    for a, b in mutex_pairs:
        results.append(check_mutual_exclusion(sg, a, b))
    return VerificationReport(stg.name, len(sg), results)
