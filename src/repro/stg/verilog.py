"""Verilog netlist export for synthesised speed-independent circuits.

The A4A flow's synthesis step hands "speed-independent components
(Verilog netlist)" to standard EDA tools for place-and-route (paper
Fig. 3).  This module renders a :class:`~repro.stg.synthesis.
SynthesisResult` as structural/behavioural Verilog:

- complex gates as continuous ``assign`` statements;
- gC latches as set/reset expressions around a Muller-C style keeper
  (``assign q = set | (q & ~reset)`` — the standard gC semantics).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .stg import STG
from .synthesis import GCImplementation, SignalFunction, SynthesisResult

_KEYWORDS = {"input", "output", "wire", "assign", "module", "endmodule",
             "reg", "always", "begin", "end", "not", "and", "or"}


def _escape(name: str) -> str:
    """Make a signal name Verilog-safe."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or safe[0].isdigit() or safe in _KEYWORDS:
        safe = "n_" + safe
    return safe


def _sop_verilog(fn: SignalFunction) -> str:
    """Render a SOP cover as a Verilog expression."""
    if not fn.implicants:
        return "1'b0"
    if fn.implicants == ["-" * len(fn.variables)]:
        return "1'b1"
    terms: List[str] = []
    for imp in fn.implicants:
        lits = []
        for ch, var in zip(imp, fn.variables):
            if ch == "1":
                lits.append(_escape(var))
            elif ch == "0":
                lits.append(f"~{_escape(var)}")
        terms.append(" & ".join(lits) if lits else "1'b1")
    if len(terms) == 1:
        return terms[0]
    return " | ".join(f"({t})" for t in terms)


def to_verilog(stg: STG, result: SynthesisResult,
               module_name: str = "") -> str:
    """Render the synthesis result as a Verilog module.

    Inputs are the STG's input signals; outputs its outputs; internal
    signals become wires.  gC latches use the combinational-feedback gC
    form, which behaves as set-dominant storage under SI assumptions.
    """
    module = _escape(module_name or stg.name)
    inputs = [_escape(s) for s in stg.inputs]
    outputs = [_escape(s) for s in stg.outputs]
    internals = [_escape(s) for s in stg.internals]

    lines = [
        f"// Speed-independent netlist synthesised from STG '{stg.name}'",
        "// by the repro A4A flow (complex-gate / gC style).",
        f"module {module} (",
    ]
    ports = [f"    input  wire {s}" for s in inputs]
    ports += [f"    output wire {s}" for s in outputs]
    lines.append(",\n".join(ports))
    lines.append(");")
    for s in internals:
        lines.append(f"    wire {s};")
    lines.append("")

    for signal in sorted(result.complex_gates):
        fn = result.complex_gates[signal]
        lines.append(f"    // [{signal}] = {fn.expression()}")
        lines.append(f"    assign {_escape(signal)} = {_sop_verilog(fn)};")
    for signal in sorted(result.gc_latches):
        gc = result.gc_latches[signal]
        s_expr = _sop_verilog(gc.set_function)
        r_expr = _sop_verilog(gc.reset_function)
        name = _escape(signal)
        lines.append(f"    // gC: {gc.expression()}")
        lines.append(f"    assign {name} = ({s_expr}) | "
                     f"({name} & ~({r_expr}));")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def testbench_skeleton(stg: STG, module_name: str = "") -> str:
    """Emit a minimal Verilog testbench instantiating the module (for
    off-line simulation in a conventional flow)."""
    module = _escape(module_name or stg.name)
    inputs = [_escape(s) for s in stg.inputs]
    outputs = [_escape(s) for s in stg.outputs]
    lines = [f"module tb_{module};"]
    for s in inputs:
        lines.append(f"    reg {s} = 1'b0;")
    for s in outputs:
        lines.append(f"    wire {s};")
    conns = ", ".join(f".{s}({s})" for s in inputs + outputs)
    lines.append(f"    {module} dut ({conns});")
    lines.append("    initial begin")
    lines.append(f"        $dumpfile(\"tb_{module}.vcd\");")
    lines.append(f"        $dumpvars(0, tb_{module});")
    lines.append("        #1000 $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
