"""Top-level system assembly: a complete closed-loop buck simulation.

:class:`BuckSystem` wires the analog power stage, sensor bank, gate
drivers, the analog solver, and one of the two controllers into a single
simulator, mirroring the paper's AMS testbench (Sec. V).

The public front door for running simulations is
:class:`repro.session.Session` — it owns backend selection, worker
sharding, and the content-addressed result cache:

>>> from repro import Session
>>> session = Session()
>>> result = session.run({"controller": "async", "sim_time": 10e-6})
>>> result.peak_coil_current < 1.0
True

:meth:`BuckSystem.measure` remains the supported way to execute an
already-built system (waveform-level work keeps a live handle);
:meth:`BuckSystem.run` is a deprecated shim delegating to the default
session.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle / lazy-NumPy guard
    from .trace import TraceSet

from .analog.buck import MultiphasePowerStage, make_power_stage
from .analog.coil import Coil, make_coil
from .analog.gate_driver import GateDriverBank
from .analog.load import LoadProfile
from .analog.sensors import BuckReferences, SensorBank
from .analog.solver import AnalogSolver
from .analog.stepping import (DEFAULT_ATOL_I, DEFAULT_ATOL_V, DEFAULT_RTOL,
                              GATING_MODES, STEPPING_MODES, SteppingPolicy)
from .control.async_controller import AsyncMultiphaseController, AsyncTimings
from .control.params import BuckControlParams
from .control.sync_controller import SyncMultiphaseController
from .sim.core import Simulator
from .sim.units import MHZ, NS, UH, US


@dataclass
class SystemConfig:
    """Everything needed to reproduce one simulation run of the paper."""

    controller: str = "async"          #: 'async' or 'sync'
    fsm_frequency: float = 333 * MHZ   #: sync controller clock (ignored for async)
    n_phases: int = 4
    inductance: float = 4.7 * UH
    coil: Optional[Coil] = None        #: overrides ``inductance`` when given
    v_in: float = 5.0
    c_out: float = 0.47e-6
    v_out0: float = 0.0                #: 0 = cold startup (Fig. 6)
    load: Optional[LoadProfile] = None #: default: Fig. 6 scenario
    refs: Optional[BuckReferences] = None
    params: Optional[BuckControlParams] = None
    timings: Optional[AsyncTimings] = None
    dt: float = 1.0 * NS               #: analog solver micro-step
    stepping: str = "fixed"            #: 'fixed' or 'adaptive' (error-controlled)
    dt_min: Optional[float] = None     #: adaptive floor (default dt/4)
    dt_max: Optional[float] = None     #: adaptive ceiling (default 64*dt)
    rtol: float = DEFAULT_RTOL         #: adaptive relative tolerance
    atol_i: float = DEFAULT_ATOL_I     #: adaptive absolute current tol (A)
    atol_v: float = DEFAULT_ATOL_V     #: adaptive absolute voltage tol (V)
    gating: str = "auto"               #: 'auto' or 'off' — clock-edge fast-forward
    sensor_delay: float = 1.0 * NS
    sensor_noise: float = 0.0
    t_gate: float = 1.0 * NS
    sim_time: float = 10 * US
    seed: int = 0
    trace: bool = True                 #: keep waveforms (turn off for sweeps)

    def __post_init__(self) -> None:
        if self.controller not in ("async", "sync"):
            raise ValueError("controller must be 'async' or 'sync'")
        if self.n_phases < 1:
            raise ValueError("need at least one phase")
        if self.stepping not in STEPPING_MODES:
            raise ValueError(
                f"stepping must be one of {STEPPING_MODES}, "
                f"got {self.stepping!r}")
        if self.gating not in GATING_MODES:
            raise ValueError(
                f"gating must be one of {GATING_MODES}, "
                f"got {self.gating!r}")


@dataclass
class RunResult:
    """Headline measurements of one run (Fig. 6 / Fig. 7 quantities)."""

    controller: str
    v_final: float
    peak_coil_current: float        #: max |i_L| over any phase (Fig. 7a/b)
    ripple: float                   #: steady-state V_out peak-to-peak (Fig. 6)
    coil_loss_w: float              #: mean coil conduction loss (Fig. 7c)
    efficiency: float
    ov_events: int                  #: over-voltage episodes observed
    cycles: List[int] = field(default_factory=list)
    metastable_events: int = 0
    solver_ticks: int = 0           #: analog micro-steps the run committed
    events_delivered: int = 0       #: kernel events fired through the loop
    clock_edges_simulated: int = 0  #: controller clock edges delivered
    clock_edges_skipped: int = 0    #: controller clock edges fast-forwarded
    #: traced waveforms (a :class:`repro.trace.TraceSet`) — attached by
    #: traced runs, ``None`` otherwise; compared exactly by dataclass eq
    trace: Optional["TraceSet"] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-primitive form (JSON-safe; floats round-trip exactly
        through ``repr``, so serialization is bit-preserving).  A traced
        result embeds its waveforms as the TraceSet's JSON form; the
        result cache stores them as npz arrays instead."""
        payload: Dict[str, Any] = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__ if name != "trace"
        }
        payload["cycles"] = list(self.cycles)
        if self.trace is not None:
            payload["trace"] = self.trace.to_jsonable()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        fields = dict(payload)
        unknown = set(fields) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"RunResult payload has unknown fields {sorted(unknown)}")
        fields["cycles"] = [int(c) for c in fields.get("cycles", [])]
        trace = fields.get("trace")
        if trace is not None and not hasattr(trace, "to_jsonable"):
            from .trace import TraceSet
            fields["trace"] = TraceSet.from_jsonable(trace)
        return cls(**fields)


class BuckSystem:
    """A fully wired buck + controller co-simulation."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.sim = Simulator(seed=config.seed)
        coil = config.coil or make_coil(config.inductance)
        load = config.load or LoadProfile.fig6_scenario()
        self.stage: MultiphasePowerStage = make_power_stage(
            config.n_phases, coil, v_in=config.v_in, c_out=config.c_out,
            load=load, v_out0=config.v_out0)
        self.sensors = SensorBank(self.sim, self.stage,
                                  refs=config.refs,
                                  delay=config.sensor_delay,
                                  noise=config.sensor_noise,
                                  trace=config.trace)
        self.gates = GateDriverBank(self.sim, self.stage,
                                    t_gate=config.t_gate, trace=config.trace)
        policy = SteppingPolicy.from_config(config)
        self.solver = AnalogSolver(self.sim, self.stage, self.sensors,
                                   dt=config.dt, trace=config.trace,
                                   policy=policy)
        if policy.adaptive:
            if config.sensor_delay <= 0 or config.t_gate <= 0:
                raise ValueError(
                    "adaptive stepping needs positive sensor_delay and "
                    "t_gate (the guard window that keeps comparator edges "
                    "exact is derived from them)")
            # the step end snaps onto every scheduled transistor flip
            for driver in self.gates.drivers:
                driver.on_commute = self.solver.note_commutation
        params = config.params or BuckControlParams()
        if config.controller == "sync":
            self.controller = SyncMultiphaseController(
                self.sim, self.sensors, self.gates, config.n_phases,
                config.fsm_frequency, params=params, trace=config.trace,
                gating=policy.gating,
                crossing_bound=self.solver.crossing_bound)
        else:
            self.controller = AsyncMultiphaseController(
                self.sim, self.sensors, self.gates, config.n_phases,
                params=params, timings=config.timings, trace=config.trace)
        self.solver.start()
        self._ran = False

    # ------------------------------------------------------------------
    def run(self, duration: Optional[float] = None,
            settle: Optional[float] = None) -> RunResult:
        """Deprecated shim: delegate to the default session.

        Use :meth:`repro.session.Session.run` (spec in, cached result
        out) for new code, or :meth:`measure` to execute a system you
        built yourself.
        """
        warnings.warn(
            "BuckSystem.run() is deprecated; use repro.session.Session.run"
            "(spec) as the front door (or BuckSystem.measure() for an "
            "already-built system)", DeprecationWarning, stacklevel=2)
        from .session import default_session
        return default_session().run_system(self, duration=duration,
                                            settle=settle)

    def measure(self, duration: Optional[float] = None,
                settle: Optional[float] = None) -> RunResult:
        """Run the simulation and collect the headline measurements.

        ``settle``: statistics (ripple, peak current, losses) are measured
        only *after* this time, excluding the startup transient — defaults
        to 20% of the run.
        """
        duration = duration if duration is not None else self.config.sim_time
        settle = settle if settle is not None else 0.2 * duration
        if settle < 0:
            raise ValueError(f"settle cannot be negative (got {settle:g})")
        if settle >= duration:
            raise ValueError(
                f"settle ({settle:g} s) must be smaller than the run "
                f"duration ({duration:g} s): the run would overshoot the "
                f"requested end time and leave a zero-span measurement "
                f"window")
        t0 = self.sim.now
        loss0 = self.stage.coil_losses_j()
        peak_startup = 0.0
        if settle > 0:
            self.sim.run_until(t0 + settle)
            self.solver.sync()   # adaptive: integrate up to the boundary
            # Ripple and losses exclude the startup transient, but the
            # peak current must not (Fig. 7's peaks are set by the
            # startup/HL transients, where reaction latency bites).
            peak_startup = self.solver.peak_coil_current()
            self.solver.reset_measurements()
            loss0 = self.stage.coil_losses_j()
        self.sim.run_until(t0 + duration)
        self.solver.sync()
        self._ran = True

        vp = self.solver.v_probe
        ripple = (vp.maximum - vp.minimum) if vp.maximum >= vp.minimum else 0.0
        span = duration - settle
        loss_w = (self.stage.coil_losses_j() - loss0) / span if span > 0 else 0.0
        return RunResult(
            controller=self.config.controller,
            v_final=self.stage.v_out,
            peak_coil_current=max(peak_startup,
                                  self.solver.peak_coil_current()),
            ripple=ripple,
            coil_loss_w=loss_w,
            efficiency=self.stage.efficiency(),
            ov_events=len(self.sensors.ov.output.edges("rise")),
            cycles=list(self.controller.cycles_started),
            metastable_events=self.controller.metastable_events(),
            solver_ticks=self.solver.tick_count,
            events_delivered=self.sim.events_delivered,
            clock_edges_simulated=getattr(
                self.controller, "clock_edges_simulated", 0),
            clock_edges_skipped=getattr(
                self.controller, "clock_edges_skipped", 0),
            trace=self.trace_set() if self.config.trace else None,
        )

    # ------------------------------------------------------------------
    def trace_set(self) -> "TraceSet":
        """The full traced run as a :class:`~repro.trace.TraceSet`:
        analog waveforms (``v_load`` / ``i_coil{k}`` / ``i_total``) plus
        every Fig. 6 digital signal (comparators, gate drives, token or
        activator state) as bool channels — the canonical, cacheable,
        VCD-exportable representation.  ``meta`` carries the run's
        reference voltage and controller so post-hoc measurements
        (e.g. overshoot vs ``v_ref``) need nothing but the trace."""
        from .trace import add_signals
        ts = add_signals(self.solver.trace_set(), self.waveform_signals())
        ts.meta["v_ref"] = self.sensors.refs.v_ref
        ts.meta["controller"] = self.config.controller
        return ts

    def waveform_signals(self):
        """The Fig. 6 trace set (for VCD export / plotting)."""
        sensors = self.sensors
        signals = [sensors.hl.output, sensors.uv.output, sensors.ov.output]
        signals += [c.output for c in sensors.oc]
        signals += [c.output for c in sensors.zc]
        signals += self.gates.gp + self.gates.gn
        if self.config.controller == "async":
            signals += self.controller.token_at
        else:
            signals += self.controller.activator.act
        return signals

    def probes(self):
        """Analog probes: load voltage and per-coil currents."""
        return [self.solver.v_probe] + self.solver.i_probes
