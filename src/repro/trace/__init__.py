"""First-class waveform subsystem: columnar, cacheable, compactable traces.

- :class:`TraceSet` — named channels (NumPy arrays) over named time
  grids; windowing / decimation / idle-row compaction; npz, JSON, and
  pickle serialization; VCD export; the canonical trace representation
  carried on :class:`repro.system.RunResult` by traced runs.
- :class:`ChannelView` — probe-like read adapter consumed by the
  waveform metrics and the VCD writer.
- :class:`BatchTraceRecorder` / :func:`probe_trace_set` /
  :func:`add_signals` — the recording surfaces the vector and scalar
  solvers emit into.
"""

from .recorder import (ANALOG_GRID, BatchTraceRecorder, add_signals,
                       probe_trace_set)
from .traceset import ChannelView, TraceSet

__all__ = ["TraceSet", "ChannelView", "BatchTraceRecorder",
           "probe_trace_set", "add_signals", "ANALOG_GRID"]
