"""Trace recording buffers feeding :class:`~repro.trace.TraceSet`.

:class:`BatchTraceRecorder` is the vector solver's waveform buffer: one
append per array step (per-step ``(N,)`` voltage and ``(N, P)`` current
snapshots, plus the scalar-or-per-lane step time), finalized once into
stacked column arrays from which per-lane :class:`TraceSet` objects are
sliced.  In adaptive mode a lane that idled while batch stragglers
finished repeats its last boundary; :meth:`lane_trace_set` compacts
those duplicate rows away by default (see :meth:`TraceSet.compacted`).

:func:`probe_trace_set` builds the scalar solver's TraceSet from its
live :class:`~repro.sim.signal.AnalogProbe` append buffers — the probes
stay the in-flight recording surface (and the legacy access path), the
TraceSet is the canonical result.  :func:`add_signals` appends digital
:class:`~repro.sim.signal.Signal` histories as bool channels.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .traceset import TraceSet

#: grid name shared by the analog channels of one lane/run
ANALOG_GRID = "t"


class BatchTraceRecorder:
    """Row-append buffer for an ``(N,)``-lane vector solver."""

    def __init__(self, n_lanes: int, n_phases: int):
        self.n_lanes = n_lanes
        self.n_phases = n_phases
        self.times: List = []       # per-step scalar t or (N,) per-lane t
        self.v: List[np.ndarray] = []        # per-step (N,) copies
        self.i: List[np.ndarray] = []        # per-step (N, P) copies
        self._stacked = None        # (rows, T, V, I) cache

    def append(self, t, v_out: np.ndarray, currents: np.ndarray) -> None:
        self.times.append(t.copy() if np.ndim(t) else t)
        self.v.append(v_out.copy())
        self.i.append(currents.copy())

    def __len__(self) -> int:
        return len(self.times)

    # ------------------------------------------------------------------
    def _finalize(self):
        """Stack the row buffers into column-sliceable arrays (cached
        until more rows arrive)."""
        rows = len(self.times)
        if self._stacked is None or self._stacked[0] != rows:
            times = self.times
            if any(np.ndim(t) for t in times):
                # adaptive batches mix scalar rows (the shared t=0 start
                # record) with per-lane (N,) rows; broadcast the scalars
                times = [np.full(self.n_lanes, t) if np.ndim(t) == 0 else t
                         for t in times]
            T = np.array(times)
            V = np.array(self.v) if rows else np.empty((0, self.n_lanes))
            I = (np.array(self.i) if rows
                 else np.empty((0, self.n_lanes, self.n_phases)))
            self._stacked = (rows, T, V, I)
        return self._stacked

    def lane_times(self, lane: int) -> np.ndarray:
        _, T, _, _ = self._finalize()
        return T if T.ndim == 1 else T[:, lane]

    def lane_v(self, lane: int) -> np.ndarray:
        _, _, V, _ = self._finalize()
        return V[:, lane]

    def lane_i(self, lane: int, phase: int) -> np.ndarray:
        _, _, _, I = self._finalize()
        return I[:, lane, phase]

    def lane_trace_set(self, lane: int, compact: bool = True) -> TraceSet:
        """One lane's analog channels as a TraceSet (``v_load``,
        ``i_coil{k}``, ``i_total`` on the shared :data:`ANALOG_GRID`).

        ``compact=False`` keeps the raw rows — including the duplicate
        idle-lane rows of adaptive batches — which is what the trace
        memory benchmark measures the compaction win against.
        """
        _, T, V, I = self._finalize()
        times = np.ascontiguousarray(T if T.ndim == 1 else T[:, lane])
        ts = TraceSet().add_grid(ANALOG_GRID, times)
        ts.add_channel("v_load", np.ascontiguousarray(V[:, lane]),
                       grid=ANALOG_GRID)
        lane_i = I[:, lane, :]
        for k in range(self.n_phases):
            ts.add_channel(f"i_coil{k}", np.ascontiguousarray(lane_i[:, k]),
                           grid=ANALOG_GRID)
        # left-to-right reduction matches the scalar solver's running sum
        ts.add_channel("i_total", np.add.reduce(lane_i, axis=1),
                       grid=ANALOG_GRID)
        return ts.compacted() if compact else ts


def probe_trace_set(v_probe, i_probes: Sequence, i_total_probe) -> TraceSet:
    """The scalar solver's probes as one TraceSet (shared time grid)."""
    if not v_probe.trace:
        raise ValueError("solver ran with trace=False; no waveforms kept")
    ts = TraceSet().add_grid(ANALOG_GRID,
                             np.asarray(v_probe.times, dtype=np.float64))
    ts.add_channel("v_load", np.asarray(v_probe.values, dtype=np.float64),
                   grid=ANALOG_GRID)
    for k, probe in enumerate(i_probes):
        ts.add_channel(f"i_coil{k}",
                       np.asarray(probe.values, dtype=np.float64),
                       grid=ANALOG_GRID)
    ts.add_channel("i_total",
                   np.asarray(i_total_probe.values, dtype=np.float64),
                   grid=ANALOG_GRID)
    return ts


def add_signals(ts: TraceSet, signals: Iterable) -> TraceSet:
    """Append traced digital :class:`Signal` histories as bool channels
    (each on its own grid, named after the signal)."""
    for signal in signals:
        ts.add_signal(signal.name, signal.history)
    return ts
