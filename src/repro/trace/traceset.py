"""Columnar waveform container: the canonical trace representation.

A :class:`TraceSet` holds named *channels* — contiguous NumPy value
arrays — each referencing a named *time grid*.  Channels that were
sampled together (the analog solver's per-step records) share one grid;
channels with their own change instants (digital signal histories, the
per-lane grids of adaptive stepping) carry their own.  Two dtypes are
supported: ``float64`` for analog waveforms and ``bool`` for digital
signals.

Unlike the per-probe Python lists it replaces, a TraceSet is

- **columnar** — one contiguous array per channel, cheap to slice,
  window, decimate, and measure;
- **picklable** — plain dicts of ndarrays, so traced results cross
  process boundaries intact (``Session.sweep(trace=True, workers=N)``);
- **serializable** — :meth:`to_npz` / :meth:`from_npz` for standalone
  files, :meth:`to_arrays` / :meth:`from_arrays` for embedding into a
  result-cache entry, :meth:`to_jsonable` / :meth:`from_jsonable` for
  the JSON round-trip of :meth:`repro.system.RunResult.to_dict`;
- **compactable** — :meth:`compacted` drops rows that repeat both the
  timestamp and every channel value on their grid, which is exactly the
  shape of the duplicate rows an adaptive vector batch records for
  lanes idling while batch stragglers finish.

:meth:`probe` returns a :class:`ChannelView` — the adapter the waveform
metrics (:mod:`repro.metrics.waveform`) and the VCD writer consume, with
the same surface as a traced :class:`~repro.sim.signal.AnalogProbe`
(``times`` / ``values`` / ``window`` / ``value_at``) plus ``edges`` /
``history`` / ``value_at`` for digital channels.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import (Any, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

#: edge kinds accepted by :meth:`ChannelView.edges` (mirrors sim.signal)
RISE = "rise"
FALL = "fall"
ANY = "any"


class ChannelView:
    """Read-only probe-like adapter over one channel of a TraceSet.

    Duck-compatible with the traced parts of
    :class:`~repro.sim.signal.AnalogProbe` (analog channels) and with
    the history/edge readers of :class:`~repro.sim.signal.Signal`
    (digital channels), so metrics and the VCD writer accept either.
    """

    __slots__ = ("trace", "name")

    def __init__(self, trace: "TraceSet", name: str):
        if name not in trace:
            raise KeyError(f"trace has no channel {name!r}")
        self.trace = trace
        self.name = name

    # -- analog-probe surface ------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return self.trace.times(self.name)

    @property
    def values(self) -> np.ndarray:
        return self.trace.values(self.name)

    @property
    def is_digital(self) -> bool:
        return self.values.dtype == np.bool_

    def window(self, t_start: float, t_end: float
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``t_start <= t <= t_end`` (times, values)."""
        times, values = self.times, self.values
        mask = (times >= t_start) & (times <= t_end)
        return times[mask], values[mask]

    def value_at(self, t: float) -> Union[float, bool]:
        """Channel value at time ``t``: linear interpolation for analog
        channels, the last driven value for digital ones."""
        times, values = self.times, self.values
        if len(times) == 0:
            raise ValueError(f"channel {self.name!r} has no samples")
        if self.is_digital:
            i = bisect_right(times, t)
            return bool(values[0] if i == 0 else values[i - 1])
        if t <= times[0]:
            return float(values[0])
        if t >= times[-1]:
            return float(values[-1])
        i = int(np.searchsorted(times, t, side="right"))
        t0, t1 = times[i - 1], times[i]
        v0, v1 = values[i - 1], values[i]
        if t1 == t0:
            return float(v1)
        return float(v0 + (v1 - v0) * (t - t0) / (t1 - t0))

    # -- digital-signal surface ----------------------------------------
    @property
    def history(self) -> List[Tuple[float, bool]]:
        """``(time, value)`` pairs (digital channels)."""
        return [(float(t), bool(v))
                for t, v in zip(self.times, self.values)]

    def edges(self, kind: str = ANY) -> List[float]:
        """Timestamps of value changes of the requested kind."""
        if kind not in (RISE, FALL, ANY):
            raise ValueError(f"unknown edge kind {kind!r}")
        times, values = self.times, self.values
        out: List[float] = []
        for i in range(1, len(times)):
            if values[i] != values[i - 1]:
                edge = RISE if values[i] else FALL
                if kind == ANY or kind == edge:
                    out.append(float(times[i]))
        return out

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "digital" if self.is_digital else "analog"
        return f"ChannelView({self.name!r}, {kind}, n={len(self)})"


class TraceSet:
    """Named waveform channels over named time grids.

    Construction is incremental: :meth:`add_grid` registers a strictly
    ordered time axis, :meth:`add_channel` attaches a value array to it,
    and :meth:`add_signal` ingests a digital ``(time, value)`` history
    on a private grid.  All arrays are held as-is (no copies), so
    channels sharing a grid share one array object in memory and in the
    npz serialization.
    """

    def __init__(self) -> None:
        self._grids: Dict[str, np.ndarray] = {}
        #: channel name -> (grid name, values)
        self._channels: Dict[str, Tuple[str, np.ndarray]] = {}
        #: free-form JSON-safe annotations (e.g. ``v_ref``,
        #: ``controller``) — carried through every serialization, so
        #: measurements on a cached trace see the run's references
        self.meta: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_grid(self, name: str, times: Sequence[float]) -> "TraceSet":
        if name in self._grids:
            raise ValueError(f"grid {name!r} already exists")
        self._grids[name] = np.asarray(times, dtype=np.float64)
        return self

    def add_channel(self, name: str, values: Sequence[Any],
                    grid: str) -> "TraceSet":
        if name in self._channels:
            raise ValueError(f"channel {name!r} already exists")
        if grid not in self._grids:
            raise ValueError(f"unknown grid {grid!r} for channel {name!r}")
        arr = np.asarray(values)
        if arr.dtype != np.bool_:
            arr = np.asarray(arr, dtype=np.float64)
        if arr.shape != self._grids[grid].shape:
            raise ValueError(
                f"channel {name!r} has {arr.shape[0] if arr.ndim else 0} "
                f"samples but grid {grid!r} has {len(self._grids[grid])}")
        self._channels[name] = (grid, arr)
        return self

    def add_signal(self, name: str,
                   history: Sequence[Tuple[float, bool]]) -> "TraceSet":
        """Ingest a digital signal history on a private grid named after
        the channel (e.g. a :class:`~repro.sim.signal.Signal.history`)."""
        times = [t for t, _ in history]
        values = [bool(v) for _, v in history]
        self.add_grid(name, times)
        return self.add_channel(name, np.asarray(values, dtype=bool),
                                grid=name)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def channels(self) -> List[str]:
        return list(self._channels)

    @property
    def grids(self) -> List[str]:
        return list(self._grids)

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def __len__(self) -> int:
        return len(self._channels)

    def grid_of(self, channel: str) -> str:
        return self._channels[channel][0]

    def times(self, channel: str) -> np.ndarray:
        return self._grids[self._channels[channel][0]]

    def grid(self, name: str) -> np.ndarray:
        return self._grids[name]

    def values(self, channel: str) -> np.ndarray:
        return self._channels[channel][1]

    def probe(self, channel: str) -> ChannelView:
        """Probe-like adapter for metrics / VCD (see :class:`ChannelView`)."""
        return ChannelView(self, channel)

    def views(self, channels: Optional[Sequence[str]] = None
              ) -> List[ChannelView]:
        return [ChannelView(self, c) for c in (channels or self.channels)]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the distinct arrays held (shared grids and
        aliased channel arrays are counted once)."""
        seen, total = set(), 0
        for arr in list(self._grids.values()) + [
                v for _, v in self._channels.values()]:
            if id(arr) not in seen:
                seen.add(id(arr))
                total += arr.nbytes
        return total

    def n_samples(self, channel: str) -> int:
        return len(self._channels[channel][1])

    # ------------------------------------------------------------------
    # Transformations (each returns a new TraceSet)
    # ------------------------------------------------------------------
    def _grid_is_digital(self, gname: str) -> bool:
        """A change-history grid: every channel on it is boolean."""
        values = [v for g, v in self._channels.values() if g == gname]
        return bool(values) and all(v.dtype == np.bool_ for v in values)

    def _transform(self, masks: Dict[str, np.ndarray]) -> "TraceSet":
        out = TraceSet()
        out.meta = dict(self.meta)
        for gname, times in self._grids.items():
            out.add_grid(gname, times[masks[gname]])
        for cname, (gname, values) in self._channels.items():
            out.add_channel(cname, values[masks[gname]], grid=gname)
        return out

    def windowed(self, t_start: float, t_end: float) -> "TraceSet":
        """Restrict every channel to the ``[t_start, t_end]`` window.

        Sampled (analog) grids keep the rows with ``t_start <= t <=
        t_end``.  Change-history (digital) grids are *event lists*, not
        sample grids: the state held entering the window matters, so the
        window gets a synthetic row at ``t_start`` carrying each
        channel's value from just *before* the window, followed by every
        change with ``t_start <= t <= t_end`` — edge counts and episodes
        inside the window (boundary edges included) are preserved
        exactly.
        """
        out = TraceSet()
        out.meta = dict(self.meta)
        new_grids: Dict[str, np.ndarray] = {}
        selectors: Dict[str, Any] = {}
        for gname, times in self._grids.items():
            if self._grid_is_digital(gname):
                inside = (times >= t_start) & (times <= t_end)
                pre = np.nonzero(times < t_start)[0]
                if len(pre):
                    hold = int(pre[-1])
                    new_grids[gname] = np.concatenate(
                        ([t_start], times[inside]))
                    selectors[gname] = (
                        lambda v, h=hold, m=inside:
                        np.concatenate(([v[h]], v[m])))
                else:
                    new_grids[gname] = times[inside]
                    selectors[gname] = lambda v, m=inside: v[m]
            else:
                mask = (times >= t_start) & (times <= t_end)
                new_grids[gname] = times[mask]
                selectors[gname] = lambda v, m=mask: v[m]
        for gname in self._grids:
            out.add_grid(gname, new_grids[gname])
        for cname, (gname, values) in self._channels.items():
            out.add_channel(cname, selectors[gname](values), grid=gname)
        return out

    def decimated(self, factor: int) -> "TraceSet":
        """Keep every ``factor``-th row of each *sampled* grid (the
        first and last rows always survive, so windows stay anchored).

        Change-history (digital) grids pass through untouched: they are
        already minimal event lists, and thinning them would delete real
        edges rather than lower resolution.
        """
        if factor < 1:
            raise ValueError("decimation factor must be >= 1")
        masks = {}
        for g, t in self._grids.items():
            if self._grid_is_digital(g):
                masks[g] = np.ones(len(t), dtype=bool)
                continue
            mask = np.zeros(len(t), dtype=bool)
            mask[::factor] = True
            if len(t):
                mask[-1] = True
            masks[g] = mask
        return self._transform(masks)

    def compacted(self) -> "TraceSet":
        """Drop rows that repeat both the timestamp and every channel
        value on their grid.

        This is exactly the signature of the duplicate rows an adaptive
        vector batch records for lanes that idle (zero-width steps)
        while batch stragglers finish: the compacted per-lane trace
        equals the one the scalar adaptive solver records.  Same-time
        rows whose values differ (e.g. a zero-width digital pulse) are
        preserved.
        """
        by_grid: Dict[str, List[np.ndarray]] = {g: [] for g in self._grids}
        for _, (gname, values) in self._channels.items():
            by_grid[gname].append(values)
        masks = {}
        for gname, times in self._grids.items():
            n = len(times)
            dup = np.zeros(n, dtype=bool)
            if n > 1:
                dup[1:] = times[1:] == times[:-1]
                for values in by_grid[gname]:
                    dup[1:] &= values[1:] == values[:-1]
            masks[gname] = ~dup
        return self._transform(masks)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_arrays(self, prefix: str = ""
                  ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Flatten into (manifest, arrays) for embedding in an npz.

        The manifest is JSON-safe (grid-name list plus ``(channel,
        grid-index)`` pairs); the arrays dict maps ``{prefix}grid{j}`` /
        ``{prefix}chan{j}`` to the held ndarrays (no copies).
        """
        arrays: Dict[str, np.ndarray] = {}
        grid_names = list(self._grids)
        for j, g in enumerate(grid_names):
            arrays[f"{prefix}grid{j}"] = self._grids[g]
        channels = []
        for j, (name, (gname, values)) in enumerate(self._channels.items()):
            arrays[f"{prefix}chan{j}"] = values
            channels.append([name, grid_names.index(gname)])
        return {"grids": grid_names, "channels": channels,
                "meta": dict(self.meta)}, arrays

    @classmethod
    def from_arrays(cls, manifest: Mapping[str, Any],
                    arrays: Mapping[str, np.ndarray],
                    prefix: str = "") -> "TraceSet":
        ts = cls()
        grid_names = list(manifest["grids"])
        for j, g in enumerate(grid_names):
            ts.add_grid(g, np.asarray(arrays[f"{prefix}grid{j}"]))
        for j, (name, gi) in enumerate(manifest["channels"]):
            ts.add_channel(name, np.asarray(arrays[f"{prefix}chan{j}"]),
                           grid=grid_names[int(gi)])
        ts.meta = dict(manifest.get("meta", {}))
        return ts

    def to_npz(self, path) -> None:
        """Write a standalone ``.npz`` (manifest embedded as JSON)."""
        manifest, arrays = self.to_arrays()
        np.savez(path, __traceset__=np.array(json.dumps(manifest)), **arrays)

    @classmethod
    def from_npz(cls, path) -> "TraceSet":
        with np.load(path) as data:
            manifest = json.loads(str(data["__traceset__"][()]))
            return cls.from_arrays(manifest, data)

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-primitive form (floats round-trip exactly through
        ``repr``, so the JSON round-trip is bit-preserving)."""
        return {
            "meta": dict(self.meta),
            "grids": {g: times.tolist()
                      for g, times in self._grids.items()},
            "channels": {
                name: {
                    "grid": gname,
                    "dtype": "bool" if values.dtype == np.bool_ else "float",
                    "values": values.tolist(),
                }
                for name, (gname, values) in self._channels.items()
            },
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "TraceSet":
        ts = cls()
        for g, times in payload["grids"].items():
            ts.add_grid(g, times)
        for name, ch in payload["channels"].items():
            dtype = bool if ch.get("dtype") == "bool" else np.float64
            ts.add_channel(name, np.asarray(ch["values"], dtype=dtype),
                           grid=ch["grid"])
        ts.meta = dict(payload.get("meta", {}))
        return ts

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_vcd(self, path: str,
               channels: Optional[Sequence[str]] = None, **kwargs) -> None:
        """Dump channels as a VCD file (digital channels as 1-bit wires,
        analog as ``real`` variables) — so a cached traced run can be
        inspected in GTKWave without re-simulating."""
        from ..sim.vcd import dump_vcd
        dump_vcd(path, self.views(channels), **kwargs)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Exact (bit-level) equality of structure, grids, and values."""
        if not isinstance(other, TraceSet):
            return NotImplemented
        if (self.meta != other.meta
                or list(self._grids) != list(other._grids)
                or list(self._channels) != list(other._channels)):
            return False
        for g, times in self._grids.items():
            o = other._grids[g]
            if times.dtype != o.dtype or not np.array_equal(times, o):
                return False
        for name, (gname, values) in self._channels.items():
            ogname, ovalues = other._channels[name]
            if gname != ogname:
                return False
            if (values.dtype != ovalues.dtype
                    or not np.array_equal(values, ovalues)):
                return False
        return True

    __hash__ = None   # mutable container

    def __repr__(self) -> str:
        rows = max((len(t) for t in self._grids.values()), default=0)
        return (f"TraceSet({len(self._channels)} channels, "
                f"{len(self._grids)} grids, <= {rows} rows)")
