"""Unit tests for the opportunistic merge element."""

import pytest

from repro.a2a import OpportunisticMerge
from repro.sim import NS, US, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=9)


def _setup(sim, responder_delay=5):
    r1, r2 = Signal(sim, "r1"), Signal(sim, "r2")
    ai = Signal(sim, "ai")
    merge = OpportunisticMerge(sim, "m", r1, r2, ai)
    # auto-responder on the merged channel
    merge.ro.subscribe(lambda s, v: ai.set(v, responder_delay * NS))
    return r1, r2, ai, merge


class TestSingleRequest:
    def test_r1_served_and_acked(self, sim):
        r1, r2, ai, merge = _setup(sim)
        r1.set(True, 1 * NS)
        sim.run(20 * NS)
        assert merge.a1.value
        assert not merge.a2.value
        r1.set(False)
        sim.run(20 * NS)
        assert not merge.a1.value
        assert not merge.ro.value

    def test_r2_served(self, sim):
        r1, r2, ai, merge = _setup(sim)
        r2.set(True, 1 * NS)
        sim.run(20 * NS)
        assert merge.a2.value and not merge.a1.value

    def test_repeated_handshakes(self, sim):
        r1, r2, ai, merge = _setup(sim)
        for _ in range(3):
            r1.set(True)
            sim.run(20 * NS)
            assert merge.a1.value
            r1.set(False)
            sim.run(20 * NS)
            assert not merge.a1.value
        assert merge.merged_count == 0


class TestOrCausality:
    def test_second_request_merged_into_running_service(self, sim):
        """r2 arrives while r1's service is in flight (before ai+): one
        output handshake acknowledges both — the OR-causality of Sec. IV."""
        r1, r2, ai, merge = _setup(sim, responder_delay=10)
        r1.set(True, 1 * NS)
        r2.set(True, 4 * NS)   # inside the service window
        sim.run(30 * NS)
        assert merge.a1.value and merge.a2.value
        assert merge.merged_count == 1
        assert len(merge.ro.edges("rise")) == 1  # single service

    def test_late_request_gets_next_service(self, sim):
        r1, r2, ai, merge = _setup(sim, responder_delay=3)
        r1.set(True, 1 * NS)
        sim.run(20 * NS)       # r1 fully served (ai went high)
        assert merge.a1.value
        r2.set(True)
        r1.set(False)
        sim.run(40 * NS)
        assert merge.a2.value
        assert len(merge.ro.edges("rise")) == 2  # two services

    def test_simultaneous_requests_single_service(self, sim):
        r1, r2, ai, merge = _setup(sim, responder_delay=10)
        r1.set(True, 1 * NS)
        r2.set(True, 1 * NS)
        sim.run(40 * NS)
        assert merge.a1.value and merge.a2.value
        assert len(merge.ro.edges("rise")) == 1

    def test_negative_delay_rejected(self, sim):
        r1, r2 = Signal(sim, "r1"), Signal(sim, "r2")
        ai = Signal(sim, "ai")
        with pytest.raises(ValueError):
            OpportunisticMerge(sim, "m", r1, r2, ai, delay=-1.0)
