"""Unit tests for the WAIT-family A2A elements."""

import pytest

from repro.a2a import RWait, RWait0, Wait, Wait0, Wait01, Wait10, Wait2
from repro.sim import NS, US, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=11)


class TestWait:
    def test_ack_after_input_high(self, sim):
        inp = Signal(sim, "inp")
        w = Wait(sim, "w", inp)
        w.req.set(True, 1 * NS)
        sim.run(5 * NS)
        assert not w.ack.value
        inp.set(True)
        sim.run(2 * NS)
        assert w.ack.value

    def test_level_already_high_when_armed(self, sim):
        inp = Signal(sim, "inp", init=True)
        w = Wait(sim, "w", inp)
        w.req.set(True, 1 * NS)
        sim.run(3 * NS)
        assert w.ack.value

    def test_latched_despite_input_glitching_away(self, sim):
        inp = Signal(sim, "inp")
        w = Wait(sim, "w", inp)
        w.req.set(True, 1 * NS)
        inp.set(True, 2 * NS)
        inp.set(False, 10 * NS)  # non-persistent input drops again
        sim.run(20 * NS)
        assert w.ack.value  # stays latched until req released

    def test_release_handshake(self, sim):
        inp = Signal(sim, "inp", init=True)
        w = Wait(sim, "w", inp)
        w.req.set(True, 1 * NS)
        sim.run(5 * NS)
        w.req.set(False)
        sim.run(5 * NS)
        assert not w.ack.value

    def test_input_before_arming_is_level_sensitive(self, sim):
        inp = Signal(sim, "inp")
        w = Wait(sim, "w", inp)
        inp.set(True, 1 * NS)   # input rises before req
        w.req.set(True, 10 * NS)
        sim.run(15 * NS)
        assert w.ack.value

    def test_marginal_pulse_contained(self):
        """A pulse shorter than the latch window either latches or is
        missed — randomly — but the ack output never glitches."""
        latched = 0
        for seed in range(30):
            sim = Simulator(seed=seed)
            inp = Signal(sim, "inp")
            w = Wait(sim, "w", inp, t_latch=1 * NS)
            w.req.set(True, 1 * NS)
            inp.pulse(width=0.3 * NS, delay=5 * NS)  # marginal
            sim.run(1 * US)
            assert w.metastable_events == 1
            assert len(w.ack.edges()) in (0, 1)  # clean output either way
            if w.ack.value:
                latched += 1
        assert 0 < latched < 30  # genuinely random outcome

    def test_no_ack_without_req(self, sim):
        inp = Signal(sim, "inp")
        w = Wait(sim, "w", inp)
        inp.set(True, 1 * NS)
        sim.run(10 * NS)
        assert not w.ack.value

    def test_negative_timing_rejected(self, sim):
        inp = Signal(sim, "inp")
        with pytest.raises(ValueError):
            Wait(sim, "w", inp, t_latch=-1.0)


class TestWait0:
    def test_waits_for_low(self, sim):
        inp = Signal(sim, "inp", init=True)
        w = Wait0(sim, "w0", inp)
        w.req.set(True, 1 * NS)
        sim.run(5 * NS)
        assert not w.ack.value
        inp.set(False)
        sim.run(2 * NS)
        assert w.ack.value

    def test_already_low(self, sim):
        inp = Signal(sim, "inp")
        w = Wait0(sim, "w0", inp)
        w.req.set(True, 1 * NS)
        sim.run(3 * NS)
        assert w.ack.value


class TestWait01:
    def test_requires_edge_not_level(self, sim):
        inp = Signal(sim, "inp", init=True)  # already high
        w = Wait01(sim, "w01", inp)
        w.req.set(True, 1 * NS)
        sim.run(10 * NS)
        assert not w.ack.value  # high level does not satisfy WAIT01
        inp.set(False)
        inp.set(True, 5 * NS)  # a genuine rising edge
        sim.run(10 * NS)
        assert w.ack.value

    def test_edge_after_arming_fires(self, sim):
        inp = Signal(sim, "inp")
        w = Wait01(sim, "w01", inp)
        w.req.set(True, 1 * NS)
        inp.set(True, 5 * NS)
        sim.run(10 * NS)
        assert w.ack.value


class TestWait10:
    def test_falling_edge(self, sim):
        inp = Signal(sim, "inp")
        w = Wait10(sim, "w10", inp)
        w.req.set(True, 1 * NS)
        sim.run(3 * NS)
        assert not w.ack.value  # low level does not satisfy WAIT10
        inp.set(True, 5 * NS)
        inp.set(False, 8 * NS)
        sim.run(15 * NS)
        assert w.ack.value


class TestRWait:
    def test_fires_on_condition(self, sim):
        inp = Signal(sim, "inp")
        w = RWait(sim, "rw", inp)
        w.req.set(True, 1 * NS)
        inp.set(True, 5 * NS)
        sim.run(10 * NS)
        assert w.ack.value
        assert w.fired_by_condition

    def test_cancel_releases_without_condition(self, sim):
        inp = Signal(sim, "inp")
        w = RWait(sim, "rw", inp)
        w.req.set(True, 1 * NS)
        w.cancel.set(True, 5 * NS)
        sim.run(10 * NS)
        assert w.ack.value
        assert not w.fired_by_condition

    def test_condition_after_cancel_ignored(self, sim):
        inp = Signal(sim, "inp")
        w = RWait(sim, "rw", inp)
        w.req.set(True, 1 * NS)
        w.cancel.set(True, 5 * NS)
        inp.set(True, 6 * NS)
        sim.run(20 * NS)
        assert w.ack.value
        assert not w.fired_by_condition

    def test_next_request_after_cancel_works(self, sim):
        inp = Signal(sim, "inp")
        w = RWait(sim, "rw", inp)
        w.req.set(True, 1 * NS)
        w.cancel.set(True, 5 * NS)
        sim.run(10 * NS)
        w.req.set(False)
        w.cancel.set(False)
        sim.run(5 * NS)
        w.req.set(True)
        inp.set(True, 2 * NS)
        sim.run(10 * NS)
        assert w.ack.value
        assert w.fired_by_condition


class TestRWait0:
    def test_waits_low_and_cancellable(self, sim):
        inp = Signal(sim, "inp", init=True)
        w = RWait0(sim, "rw0", inp)
        w.req.set(True, 1 * NS)
        sim.run(5 * NS)
        assert not w.ack.value
        inp.set(False)
        sim.run(3 * NS)
        assert w.ack.value
        assert w.fired_by_condition

    def test_cancel(self, sim):
        inp = Signal(sim, "inp", init=True)
        w = RWait0(sim, "rw0", inp)
        w.req.set(True, 1 * NS)
        w.cancel.set(True, 3 * NS)
        sim.run(10 * NS)
        assert w.ack.value
        assert not w.fired_by_condition


class TestWait2:
    def test_alternates_high_then_low(self, sim):
        inp = Signal(sim, "inp")
        w = Wait2(sim, "w2", inp)
        assert w.awaiting == "high"
        # handshake 1: waits for high
        w.req.set(True, 1 * NS)
        inp.set(True, 3 * NS)
        sim.run(6 * NS)
        assert w.ack.value
        assert w.awaiting == "low"
        w.req.set(False)
        sim.run(2 * NS)
        assert not w.ack.value
        # handshake 2: waits for low
        w.req.set(True)
        sim.run(3 * NS)
        assert not w.ack.value  # input still high
        inp.set(False)
        sim.run(3 * NS)
        assert w.ack.value
        assert w.awaiting == "high"

    def test_oc_monitoring_pattern(self, sim):
        """The paper uses WAIT2 to monitor OC: detect assert, then deassert."""
        oc = Signal(sim, "oc")
        w = Wait2(sim, "w2", oc)
        events = []
        for cycle in range(3):
            w.req.set(True)
            oc.set(True, 2 * NS)
            sim.run(5 * NS)
            assert w.ack.value
            events.append(("oc_on", sim.now))
            w.req.set(False)
            sim.run(1 * NS)
            w.req.set(True)
            oc.set(False, 2 * NS)
            sim.run(5 * NS)
            assert w.ack.value
            events.append(("oc_off", sim.now))
            w.req.set(False)
            sim.run(1 * NS)
        assert len(events) == 6
