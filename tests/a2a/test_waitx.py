"""Unit tests for WAITX / WAITX2 arbitrating elements."""

import pytest

from repro.a2a import WaitX, WaitX2
from repro.sim import NS, US, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=5)


class TestWaitX:
    def test_single_input_grants_that_side(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wx = WaitX(sim, "wx", a, b)
        wx.req.set(True, 1 * NS)
        a.set(True, 5 * NS)
        sim.run(10 * NS)
        assert wx.grant_a.value
        assert not wx.grant_b.value
        assert wx.winner == "a"

    def test_other_side(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wx = WaitX(sim, "wx", a, b)
        wx.req.set(True, 1 * NS)
        b.set(True, 5 * NS)
        sim.run(10 * NS)
        assert wx.grant_b.value
        assert wx.winner == "b"

    def test_clearly_earlier_input_wins(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wx = WaitX(sim, "wx", a, b, t_latch=0.2 * NS)
        wx.req.set(True, 1 * NS)
        b.set(True, 5 * NS)
        a.set(True, 8 * NS)
        sim.run(12 * NS)
        assert wx.winner == "b"

    def test_one_hot_invariant_across_races(self):
        """Exactly one grant, never both, whatever the race outcome."""
        winners = set()
        for seed in range(30):
            sim = Simulator(seed=seed)
            a, b = Signal(sim, "a"), Signal(sim, "b")
            wx = WaitX(sim, "wx", a, b, t_latch=0.5 * NS)
            violations = []

            def check(_s, _v):
                if wx.grant_a.value and wx.grant_b.value:
                    violations.append(sim.now)

            wx.grant_a.subscribe(check)
            wx.grant_b.subscribe(check)
            wx.req.set(True, 1 * NS)
            a.set(True, 5 * NS)
            b.set(True, 5.01 * NS)  # inside the capture window: race
            sim.run(1 * US)
            assert violations == []
            assert (wx.grant_a.value != wx.grant_b.value)
            winners.add(wx.winner)
            assert wx.metastable_events == 1
        assert winners == {"a", "b"}  # both outcomes occur

    def test_release_on_req_fall(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wx = WaitX(sim, "wx", a, b)
        wx.req.set(True, 1 * NS)
        a.set(True, 3 * NS)
        sim.run(8 * NS)
        wx.req.set(False)
        sim.run(5 * NS)
        assert not wx.grant_a.value
        assert wx.winner is None

    def test_input_high_before_arming(self, sim):
        a, b = Signal(sim, "a", init=True), Signal(sim, "b")
        wx = WaitX(sim, "wx", a, b)
        wx.req.set(True, 1 * NS)
        sim.run(5 * NS)
        assert wx.grant_a.value

    def test_vanished_pulses_keep_waiting(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wx = WaitX(sim, "wx", a, b, t_latch=1 * NS)
        wx.req.set(True, 1 * NS)
        a.pulse(width=0.2 * NS, delay=3 * NS)  # vanishes inside window
        sim.run(10 * NS)
        # If the marginal pulse was missed the element keeps waiting and a
        # later solid input still wins.
        if not wx.grant_a.value:
            b.set(True)
            sim.run(5 * NS)
            assert wx.grant_b.value

    def test_negative_timing_rejected(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        with pytest.raises(ValueError):
            WaitX(sim, "wx", a, b, tau=-1.0)


class TestWaitX2:
    def test_grant_held_until_winner_low(self, sim):
        uv, ov = Signal(sim, "uv"), Signal(sim, "ov")
        wx = WaitX2(sim, "wx2", uv, ov)
        wx.req.set(True, 1 * NS)
        uv.set(True, 3 * NS)
        sim.run(8 * NS)
        assert wx.grant_a.value
        wx.req.set(False)  # controller done — but UV still asserted
        sim.run(5 * NS)
        assert wx.grant_a.value  # held: winner input still high
        uv.set(False)
        sim.run(5 * NS)
        assert not wx.grant_a.value  # released on winner-low

    def test_release_immediate_if_winner_already_low(self, sim):
        uv, ov = Signal(sim, "uv"), Signal(sim, "ov")
        wx = WaitX2(sim, "wx2", uv, ov)
        wx.req.set(True, 1 * NS)
        uv.set(True, 3 * NS)
        uv.set(False, 6 * NS)
        sim.run(8 * NS)
        assert wx.grant_a.value  # latched despite input dropping
        wx.req.set(False)
        sim.run(5 * NS)
        assert not wx.grant_a.value

    def test_next_cycle_can_pick_other_input(self, sim):
        uv, ov = Signal(sim, "uv"), Signal(sim, "ov")
        wx = WaitX2(sim, "wx2", uv, ov)
        # cycle 1: UV
        wx.req.set(True, 1 * NS)
        uv.set(True, 3 * NS)
        sim.run(8 * NS)
        assert wx.winner == "a"
        uv.set(False)
        wx.req.set(False)
        sim.run(5 * NS)
        # cycle 2: OV
        wx.req.set(True)
        ov.set(True, 2 * NS)
        sim.run(8 * NS)
        assert wx.winner == "b"
        assert wx.grant_b.value

    def test_mutual_exclusion_under_fast_switching(self):
        """UV and OV are theoretically exclusive but can switch fast
        (paper Sec. IV) — the element must still give a one-hot answer."""
        for seed in range(10):
            sim = Simulator(seed=seed)
            uv, ov = Signal(sim, "uv"), Signal(sim, "ov")
            wx = WaitX2(sim, "wx2", uv, ov, t_latch=0.5 * NS)
            wx.req.set(True, 1 * NS)
            uv.set(True, 5 * NS)
            uv.set(False, 5.3 * NS)
            ov.set(True, 5.35 * NS)
            sim.run(1 * US)
            assert not (wx.grant_a.value and wx.grant_b.value)
            assert wx.grant_a.value or wx.grant_b.value
