"""Unit tests for the buck power stage ODE model.

Stage construction and stepping come from the shared ``stage_factory`` /
``run_stage`` fixtures in ``tests/conftest.py``.
"""

import pytest

from repro.analog import (
    BuckPhase,
    LoadProfile,
    MultiphasePowerStage,
    ShortCircuitError,
    make_coil,
    make_power_stage,
)
from repro.sim import NS, UH, US


class TestBuckPhaseSwitching:
    def test_short_circuit_pmos_while_nmos(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_nmos(True)
        with pytest.raises(ShortCircuitError):
            phase.set_pmos(True)

    def test_short_circuit_nmos_while_pmos(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_pmos(True)
        with pytest.raises(ShortCircuitError):
            phase.set_nmos(True)

    def test_break_before_make_is_legal(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_pmos(True)
        phase.set_pmos(False)
        phase.set_nmos(True)
        assert phase.nmos_on

    def test_switch_count(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_pmos(True)
        phase.set_pmos(True)   # no change, no count
        phase.set_pmos(False)
        phase.set_nmos(True)
        assert phase.switch_count == 3


class TestPhaseDynamics:
    def test_pmos_on_current_slew_matches_formula(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.set_pmos(True)
        run_stage(stage, 100 * NS)
        # di/dt ~= (V_in - V_out)/L = (5-3.3)/1uH = 1.7 A/us -> 0.17 A in 100ns
        assert phase.current == pytest.approx(0.17, rel=0.1)

    def test_nmos_on_current_falls(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = 0.2
        phase.set_nmos(True)
        run_stage(stage, 50 * NS)
        # di/dt ~= -3.3/1uH = -3.3 A/us -> fell ~0.165 A in 50 ns
        assert phase.current == pytest.approx(0.2 - 0.165, rel=0.15)

    def test_both_off_positive_current_freewheels_down(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = 0.1
        run_stage(stage, 10 * NS)
        assert phase.current < 0.1

    def test_discontinuous_clamp_to_zero(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = 0.01
        run_stage(stage, 500 * NS)
        assert phase.current == 0.0

    def test_current_stays_zero_when_open(self, stage_factory, run_stage):
        stage = stage_factory(v_out0=3.3)
        run_stage(stage, 100 * NS)
        assert stage.phases[0].current == 0.0

    def test_negative_current_returns_to_zero_via_pmos_diode(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = -0.05
        run_stage(stage, 500 * NS)
        assert phase.current == 0.0

    def test_nmos_conducts_negative_current(self, stage_factory, run_stage):
        # synchronous rectifier: in OV mode the NMOS pulls current negative
        stage = stage_factory(l_uh=1.0, v_out0=3.6)
        phase = stage.phases[0]
        phase.set_nmos(True)
        run_stage(stage, 200 * NS)
        assert phase.current < 0.0


class TestOutputDynamics:
    def test_cap_discharges_through_load(self, stage_factory, run_stage):
        stage = stage_factory(v_out0=3.3, c_out=0.47e-6, r_load=6.0)
        run_stage(stage, 1 * US)
        # RC = 2.82 us -> v = 3.3*exp(-1/2.82) = 2.31 V
        import math
        expected = 3.3 * math.exp(-1e-6 / (6.0 * 0.47e-6))
        assert stage.v_out == pytest.approx(expected, rel=0.01)

    def test_charging_raises_voltage(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=4.7, v_out0=3.0)
        stage.phases[0].set_pmos(True)
        run_stage(stage, 2 * US)
        assert stage.v_out > 3.0

    def test_load_step_changes_discharge_rate(self, stage_factory, run_stage):
        load = LoadProfile([(0.0, 6.0), (1 * US, 2.0)])
        coil = make_coil(4.7 * UH)
        stage = make_power_stage(1, coil, load=load, v_out0=3.3)
        run_stage(stage, 1 * US)
        v_mid = stage.v_out
        run_stage(stage, 1 * US, t0=1 * US)
        v_end = stage.v_out
        # Discharge during the heavy-load microsecond must be faster.
        assert (v_mid - v_end) > (3.3 - v_mid)

    def test_total_current_sums_phases(self, stage_factory):
        stage = stage_factory(n=4, v_out0=3.3)
        for k, phase in enumerate(stage.phases):
            phase.current = 0.01 * (k + 1)
        assert stage.total_current() == pytest.approx(0.1)


class TestEnergyAccounting:
    def test_energy_in_accumulates_only_with_pmos_on(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        run_stage(stage, 100 * NS)
        assert stage.energy_in_j == 0.0
        stage.phases[0].set_pmos(True)
        run_stage(stage, 100 * NS, t0=100 * NS)
        assert stage.energy_in_j > 0.0

    def test_energy_out_accumulates(self, stage_factory, run_stage):
        stage = stage_factory(v_out0=3.3)
        run_stage(stage, 100 * NS)
        assert stage.energy_out_j > 0.0

    def test_coil_loss_accumulates_with_current(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=1.0, v_out0=3.3)
        stage.phases[0].set_pmos(True)
        run_stage(stage, 200 * NS)
        assert stage.coil_losses_j() > 0.0

    def test_efficiency_bounded(self, stage_factory, run_stage):
        stage = stage_factory(l_uh=4.7, v_out0=3.3)
        stage.phases[0].set_pmos(True)
        run_stage(stage, 1 * US)
        assert 0.0 < stage.efficiency() <= 1.5  # crude bound, open loop

    def test_efficiency_zero_before_any_input_energy(self, stage_factory):
        stage = stage_factory()
        assert stage.efficiency() == 0.0


class TestConstruction:
    def test_make_power_stage_phase_indices(self, stage_factory):
        stage = stage_factory(n=4)
        assert [p.index for p in stage.phases] == [0, 1, 2, 3]
        assert stage.n_phases == 4

    def test_zero_phases_rejected(self, stage_factory):
        with pytest.raises(ValueError):
            make_power_stage(0, make_coil(1 * UH))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MultiphasePowerStage([], v_in=5.0)
        phase = BuckPhase(0, make_coil(1 * UH))
        with pytest.raises(ValueError):
            MultiphasePowerStage([phase], v_in=-5.0)
        with pytest.raises(ValueError):
            MultiphasePowerStage([phase], c_out=0.0)
