"""Unit tests for the buck power stage ODE model."""

import pytest

from repro.analog import (
    BuckPhase,
    LoadProfile,
    MultiphasePowerStage,
    ShortCircuitError,
    make_coil,
    make_power_stage,
)
from repro.sim import NS, UH, US


def _stage(n=1, l_uh=4.7, v_in=5.0, c_out=0.47e-6, r_load=6.0, v_out0=0.0):
    coil = make_coil(l_uh * UH)
    return make_power_stage(n, coil, v_in=v_in, c_out=c_out,
                            load=LoadProfile.constant(r_load), v_out0=v_out0)


def _run(stage, duration, dt=1 * NS, t0=0.0):
    t = t0
    steps = int(round(duration / dt))
    for _ in range(steps):
        stage.step(t, dt)
        t += dt
    return t


class TestBuckPhaseSwitching:
    def test_short_circuit_pmos_while_nmos(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_nmos(True)
        with pytest.raises(ShortCircuitError):
            phase.set_pmos(True)

    def test_short_circuit_nmos_while_pmos(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_pmos(True)
        with pytest.raises(ShortCircuitError):
            phase.set_nmos(True)

    def test_break_before_make_is_legal(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_pmos(True)
        phase.set_pmos(False)
        phase.set_nmos(True)
        assert phase.nmos_on

    def test_switch_count(self):
        phase = BuckPhase(0, make_coil(4.7 * UH))
        phase.set_pmos(True)
        phase.set_pmos(True)   # no change, no count
        phase.set_pmos(False)
        phase.set_nmos(True)
        assert phase.switch_count == 3


class TestPhaseDynamics:
    def test_pmos_on_current_slew_matches_formula(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.set_pmos(True)
        _run(stage, 100 * NS)
        # di/dt ~= (V_in - V_out)/L = (5-3.3)/1uH = 1.7 A/us -> 0.17 A in 100ns
        assert phase.current == pytest.approx(0.17, rel=0.1)

    def test_nmos_on_current_falls(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = 0.2
        phase.set_nmos(True)
        _run(stage, 50 * NS)
        # di/dt ~= -3.3/1uH = -3.3 A/us -> fell ~0.165 A in 50 ns
        assert phase.current == pytest.approx(0.2 - 0.165, rel=0.15)

    def test_both_off_positive_current_freewheels_down(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = 0.1
        _run(stage, 10 * NS)
        assert phase.current < 0.1

    def test_discontinuous_clamp_to_zero(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = 0.01
        _run(stage, 500 * NS)
        assert phase.current == 0.0

    def test_current_stays_zero_when_open(self):
        stage = _stage(v_out0=3.3)
        _run(stage, 100 * NS)
        assert stage.phases[0].current == 0.0

    def test_negative_current_returns_to_zero_via_pmos_diode(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        phase = stage.phases[0]
        phase.current = -0.05
        _run(stage, 500 * NS)
        assert phase.current == 0.0

    def test_nmos_conducts_negative_current(self):
        # synchronous rectifier: in OV mode the NMOS pulls current negative
        stage = _stage(l_uh=1.0, v_out0=3.6)
        phase = stage.phases[0]
        phase.set_nmos(True)
        _run(stage, 200 * NS)
        assert phase.current < 0.0


class TestOutputDynamics:
    def test_cap_discharges_through_load(self):
        stage = _stage(v_out0=3.3, c_out=0.47e-6, r_load=6.0)
        _run(stage, 1 * US)
        # RC = 2.82 us -> v = 3.3*exp(-1/2.82) = 2.31 V
        import math
        expected = 3.3 * math.exp(-1e-6 / (6.0 * 0.47e-6))
        assert stage.v_out == pytest.approx(expected, rel=0.01)

    def test_charging_raises_voltage(self):
        stage = _stage(l_uh=4.7, v_out0=3.0)
        stage.phases[0].set_pmos(True)
        _run(stage, 2 * US)
        assert stage.v_out > 3.0

    def test_load_step_changes_discharge_rate(self):
        load = LoadProfile([(0.0, 6.0), (1 * US, 2.0)])
        coil = make_coil(4.7 * UH)
        stage = make_power_stage(1, coil, load=load, v_out0=3.3)
        _run(stage, 1 * US)
        v_mid = stage.v_out
        _run(stage, 1 * US, t0=1 * US)
        v_end = stage.v_out
        # Discharge during the heavy-load microsecond must be faster.
        assert (v_mid - v_end) > (3.3 - v_mid)

    def test_total_current_sums_phases(self):
        stage = _stage(n=4, v_out0=3.3)
        for k, phase in enumerate(stage.phases):
            phase.current = 0.01 * (k + 1)
        assert stage.total_current() == pytest.approx(0.1)


class TestEnergyAccounting:
    def test_energy_in_accumulates_only_with_pmos_on(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        _run(stage, 100 * NS)
        assert stage.energy_in_j == 0.0
        stage.phases[0].set_pmos(True)
        _run(stage, 100 * NS, t0=100 * NS)
        assert stage.energy_in_j > 0.0

    def test_energy_out_accumulates(self):
        stage = _stage(v_out0=3.3)
        _run(stage, 100 * NS)
        assert stage.energy_out_j > 0.0

    def test_coil_loss_accumulates_with_current(self):
        stage = _stage(l_uh=1.0, v_out0=3.3)
        stage.phases[0].set_pmos(True)
        _run(stage, 200 * NS)
        assert stage.coil_losses_j() > 0.0

    def test_efficiency_bounded(self):
        stage = _stage(l_uh=4.7, v_out0=3.3)
        stage.phases[0].set_pmos(True)
        _run(stage, 1 * US)
        assert 0.0 < stage.efficiency() <= 1.5  # crude bound, open loop

    def test_efficiency_zero_before_any_input_energy(self):
        stage = _stage()
        assert stage.efficiency() == 0.0


class TestConstruction:
    def test_make_power_stage_phase_indices(self):
        stage = _stage(n=4)
        assert [p.index for p in stage.phases] == [0, 1, 2, 3]
        assert stage.n_phases == 4

    def test_zero_phases_rejected(self):
        with pytest.raises(ValueError):
            make_power_stage(0, make_coil(1 * UH))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MultiphasePowerStage([], v_in=5.0)
        phase = BuckPhase(0, make_coil(1 * UH))
        with pytest.raises(ValueError):
            MultiphasePowerStage([phase], v_in=-5.0)
        with pytest.raises(ValueError):
            MultiphasePowerStage([phase], c_out=0.0)
