"""Unit tests for the coil library."""

import pytest

from repro.analog import (
    COIL_LIBRARY,
    Coil,
    dcr_model,
    i_sat_model,
    library_values,
    make_coil,
    nearest_coil,
    smallest_coil_for_peak,
)
from repro.sim import UH


class TestCoil:
    def test_basic_attributes(self):
        coil = Coil("test", 4.7 * UH, 0.3, i_sat=1.0)
        assert coil.inductance == pytest.approx(4.7 * UH)
        assert coil.dcr == 0.3

    def test_invalid_inductance(self):
        with pytest.raises(ValueError):
            Coil("bad", -1 * UH, 0.1)
        with pytest.raises(ValueError):
            Coil("bad", 0.0, 0.1)

    def test_invalid_dcr(self):
        with pytest.raises(ValueError):
            Coil("bad", 1 * UH, -0.1)

    def test_invalid_i_sat(self):
        with pytest.raises(ValueError):
            Coil("bad", 1 * UH, 0.1, i_sat=0.0)

    def test_effective_inductance_below_saturation(self):
        coil = Coil("test", 2 * UH, 0.1, i_sat=1.0)
        assert coil.effective_inductance(0.5) == pytest.approx(2 * UH)
        assert coil.effective_inductance(-0.99) == pytest.approx(2 * UH)

    def test_effective_inductance_derates_above_saturation(self):
        coil = Coil("test", 2 * UH, 0.1, i_sat=1.0)
        l_over = coil.effective_inductance(2.0)
        assert l_over < 2 * UH
        assert l_over > 0.4 * 2 * UH  # asymptote is 40% of nominal

    def test_effective_inductance_monotone_decreasing(self):
        coil = Coil("test", 2 * UH, 0.1, i_sat=1.0)
        values = [coil.effective_inductance(i) for i in (1.0, 1.5, 2.0, 5.0)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_conduction_loss_quadratic(self):
        coil = Coil("test", 1 * UH, 0.2)
        assert coil.conduction_loss(0.1) == pytest.approx(0.002)
        assert coil.conduction_loss(0.2) == pytest.approx(0.008)

    def test_stored_energy_linear_region(self):
        coil = Coil("test", 2 * UH, 0.1, i_sat=1.0)
        assert coil.stored_energy(0.5) == pytest.approx(0.5 * 2e-6 * 0.25)
        assert coil.stored_energy(-0.5) == coil.stored_energy(0.5)

    def test_stored_energy_saturated_below_naive(self):
        coil = Coil("test", 2 * UH, 0.1, i_sat=1.0)
        i = 2.0
        naive = 0.5 * coil.inductance * i * i
        assert coil.stored_energy(i) < naive
        # continuous at the saturation knee
        eps = 1e-6
        assert coil.stored_energy(1.0 + eps) == pytest.approx(
            coil.stored_energy(1.0 - eps), rel=1e-3)

    def test_stored_energy_monotone(self):
        coil = Coil("test", 1 * UH, 0.1, i_sat=0.8)
        values = [coil.stored_energy(i / 10) for i in range(0, 30)]
        assert all(a < b for a, b in zip(values, values[1:]))


class TestModels:
    def test_dcr_monotone_in_inductance(self):
        values = [dcr_model(l * UH) for l in (1, 2, 5, 10)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_dcr_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            dcr_model(0.0)

    def test_i_sat_clamped(self):
        assert i_sat_model(100 * UH) == pytest.approx(1.6)

    def test_i_sat_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            i_sat_model(-1.0)

    def test_make_coil_default_name(self):
        coil = make_coil(4.7 * UH)
        assert "4.7" in coil.name
        assert coil.dcr == pytest.approx(dcr_model(4.7 * UH))


class TestLibrary:
    def test_covers_paper_range(self):
        values = library_values()
        assert min(values) == pytest.approx(1.0 * UH)
        assert max(values) == pytest.approx(10.0 * UH)

    def test_contains_fig7a_annotated_values(self):
        # 1.8, 2.25, 3.1, 4.7, 5.7, 6.8, 8.2 uH are called out on Fig. 7a
        values = {round(v / UH, 2) for v in library_values()}
        for annotated in (1.8, 2.25, 3.1, 4.7, 5.7, 6.8, 8.2):
            assert annotated in values

    def test_dcr_monotone_across_library(self):
        coils = sorted(COIL_LIBRARY.values(), key=lambda c: c.inductance)
        dcrs = [c.dcr for c in coils]
        assert all(a < b for a, b in zip(dcrs, dcrs[1:]))

    def test_nearest_coil_exact(self):
        assert nearest_coil(4.7 * UH).inductance == pytest.approx(4.7 * UH)

    def test_nearest_coil_between_values(self):
        coil = nearest_coil(1.9 * UH)
        assert coil.inductance == pytest.approx(1.8 * UH)

    def test_nearest_coil_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            nearest_coil(0.0)


class TestCoilTradeoff:
    def test_smallest_coil_for_peak(self):
        peaks = {1e-6: 0.5, 2e-6: 0.35, 5e-6: 0.28, 10e-6: 0.22}
        assert smallest_coil_for_peak(peaks, 0.30) == pytest.approx(5e-6)

    def test_smallest_coil_unsatisfiable(self):
        with pytest.raises(ValueError):
            smallest_coil_for_peak({1e-6: 0.9}, 0.3)

    def test_limit_boundary_inclusive(self):
        peaks = {1e-6: 0.300, 2e-6: 0.2}
        assert smallest_coil_for_peak(peaks, 0.300) == pytest.approx(1e-6)
