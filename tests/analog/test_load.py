"""Unit tests for load profiles."""

import pytest

from repro.analog import LoadProfile
from repro.sim import US


class TestLoadProfile:
    def test_constant(self):
        load = LoadProfile.constant(6.0)
        assert load.resistance(0.0) == 6.0
        assert load.resistance(1.0) == 6.0

    def test_steps(self):
        load = LoadProfile([(0.0, 6.0), (6 * US, 2.0), (8 * US, 6.0)])
        assert load.resistance(0.0) == 6.0
        assert load.resistance(5.9 * US) == 6.0
        assert load.resistance(6 * US) == 2.0
        assert load.resistance(7 * US) == 2.0
        assert load.resistance(8.1 * US) == 6.0

    def test_before_zero_clamps(self):
        load = LoadProfile.constant(4.0)
        assert load.resistance(-1.0) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([])

    def test_first_step_must_be_zero(self):
        with pytest.raises(ValueError):
            LoadProfile([(1.0, 6.0)])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([(0.0, 6.0), (2.0, 3.0), (1.0, 4.0)])

    def test_duplicate_times_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([(0.0, 6.0), (1.0, 3.0), (1.0, 4.0)])

    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([(0.0, 0.0)])
        with pytest.raises(ValueError):
            LoadProfile([(0.0, 6.0), (1.0, -2.0)])

    def test_change_times(self):
        load = LoadProfile([(0.0, 6.0), (6 * US, 2.0), (8 * US, 6.0)])
        assert load.change_times() == [6 * US, 8 * US]

    def test_fig6_scenario_shape(self):
        load = LoadProfile.fig6_scenario()
        assert load.resistance(1 * US) == 6.0
        assert load.resistance(7 * US) == 2.0
        assert load.resistance(9 * US) == 6.0
