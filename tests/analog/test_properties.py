"""Property-based tests: physical invariants of the analog substrate."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analog import (
    BuckReferences,
    Comparator,
    LoadProfile,
    ShortCircuitError,
    make_coil,
    make_power_stage,
)
from repro.analog.sensors import ABOVE, BELOW
from repro.sim import NS, UH, Simulator

# a random but legal switching schedule: per phase, a sequence of
# (duration_ns, state) with state in {'p', 'n', '-'}
_STATE = st.sampled_from(["p", "n", "-"])
_SEGMENT = st.tuples(st.floats(min_value=5, max_value=200), _STATE)


def _apply(phase, state):
    if state == "p":
        phase.set_nmos(False)
        phase.set_pmos(True)
    elif state == "n":
        phase.set_pmos(False)
        phase.set_nmos(True)
    else:
        phase.set_pmos(False)
        phase.set_nmos(False)


@settings(max_examples=60, deadline=None)
@given(st.lists(_SEGMENT, min_size=1, max_size=12),
       st.floats(min_value=0.5, max_value=10.0),
       st.floats(min_value=0.0, max_value=4.0))
def test_energy_accounting_is_conservative(schedule, l_uh, v0):
    """Input energy + initially stored energy must cover delivered energy
    plus tracked coil losses plus finally stored energy (the difference is
    the untracked switch/diode dissipation, which is non-negative)."""
    coil = make_coil(l_uh * UH)
    stage = make_power_stage(1, coil, load=LoadProfile.constant(6.0),
                             v_out0=v0)
    phase = stage.phases[0]

    def stored():
        return (0.5 * stage.c_out * stage.v_out ** 2
                + coil.stored_energy(phase.current))

    e0 = stored()
    t = 0.0
    dt = 1 * NS
    for duration_ns, state in schedule:
        _apply(phase, state)
        for _ in range(int(duration_ns)):
            stage.step(t, dt)
            t += dt
    budget = stage.energy_in_j + e0
    spent = stage.energy_out_j + stage.coil_losses_j() + stored()
    # numerical integration tolerance: 5% of the larger side + epsilon
    tol = 0.05 * max(budget, spent) + 1e-12
    assert spent <= budget + tol


@settings(max_examples=60, deadline=None)
@given(st.lists(_SEGMENT, min_size=1, max_size=12),
       st.floats(min_value=0.5, max_value=10.0))
def test_output_voltage_bounded_by_rails(schedule, l_uh):
    """Within the coil's rated envelope the buck output can never exceed
    V_in plus a diode drop, nor dive below minus a diode drop.

    The envelope condition matters: a schedule that forces the PMOS on
    long enough drives the coil far past its saturation current, and the
    stored magnetic energy can then legitimately ring the LC tank above
    the rail (hypothesis finds e.g. ~770 ns of continuous ON at 0.5 uH
    reaching 5.6 A).  Such schedules are outside both the controllers'
    operating region (OC trips at 0.3 A) and the soft-saturation model's
    validity, so they are discarded with ``assume``.
    """
    stage = make_power_stage(1, make_coil(l_uh * UH),
                             load=LoadProfile.constant(6.0), v_out0=0.0)
    phase = stage.phases[0]
    t, dt = 0.0, 1 * NS
    for duration_ns, state in schedule:
        _apply(phase, state)
        for _ in range(int(duration_ns)):
            stage.step(t, dt)
            t += dt
            assume(abs(phase.current) <= phase.coil.i_sat)
            assert -phase.v_diode - 0.1 <= stage.v_out <= stage.v_in + phase.v_diode + 0.1


@settings(max_examples=60, deadline=None)
@given(st.lists(_SEGMENT, min_size=1, max_size=10))
def test_discontinuous_conduction_never_reverses(schedule):
    """With both switches off, coil current decays monotonically in
    magnitude and sticks at zero — the body-diode clamp can never pump
    current back up."""
    stage = make_power_stage(1, make_coil(2 * UH),
                             load=LoadProfile.constant(6.0), v_out0=3.3)
    phase = stage.phases[0]
    t, dt = 0.0, 1 * NS
    for duration_ns, state in schedule:
        _apply(phase, state)
        for _ in range(int(duration_ns)):
            stage.step(t, dt)
            t += dt
    # now freewheel: current magnitude must not grow
    _apply(phase, "-")
    prev = abs(phase.current)
    for _ in range(2000):
        stage.step(t, dt)
        t += dt
        cur = abs(phase.current)
        assert cur <= prev + 1e-9
        prev = cur
    assert phase.current == pytest.approx(0.0, abs=5e-3)


@settings(max_examples=40, deadline=None)
@given(st.permutations(["p", "n", "-", "p", "n"]))
def test_short_circuit_guard_is_order_independent(order):
    """Whatever switching order, commanding PMOS while NMOS conducts (or
    vice versa) raises — and legal orders never do."""
    stage = make_power_stage(1, make_coil(1 * UH))
    phase = stage.phases[0]
    for state in order:
        _apply(phase, state)  # _apply always breaks before making
        assert not (phase.pmos_on and phase.nmos_on)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.05, max_value=0.5),
       st.lists(st.floats(min_value=-1.0, max_value=1.0),
                min_size=4, max_size=40))
def test_comparator_hysteresis_bounds_edges(hyst, samples):
    """With hysteresis h, the number of output edges cannot exceed the
    number of times the input swings across the full band."""
    sim = Simulator(seed=0)
    value = {"x": 0.0}
    comp = Comparator(sim, "c", lambda: value["x"], threshold=0.0,
                      direction=ABOVE, delay=0.0, hysteresis=hyst)
    crossings = 0
    armed_low = True
    for i, x in enumerate(samples):
        value["x"] = x
        comp.sample(i * NS)
        if armed_low and x > 0.0:
            crossings += 1
            armed_low = False
        elif not armed_low and x < -hyst:
            crossings += 1
            armed_low = True
    sim.run_until(len(samples) * NS + 10 * NS)
    assert len(comp.output.edges()) <= crossings


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.1, max_value=5.0),
       st.floats(min_value=2.0, max_value=12.0))
def test_references_scale_consistently(i_scale, r_load):
    """BuckReferences validation holds under scaling of current levels."""
    refs = BuckReferences(i_max=0.3 * i_scale, i_0=0.005 * i_scale,
                          i_neg=-0.08 * i_scale)
    assert refs.i_neg < refs.i_0 < refs.i_max
