"""Unit tests for comparators and the sensor bank."""

import pytest

from repro.analog import (
    ABOVE,
    BELOW,
    BuckReferences,
    Comparator,
    LoadProfile,
    SensorBank,
    make_coil,
    make_power_stage,
)
from repro.sim import NS, UH

# the shared seeded ``sim`` fixture comes from tests/conftest.py

class _Ramp:
    """Analog value controllable from the test."""

    def __init__(self, value=0.0):
        self.value = value

    def __call__(self):
        return self.value


class TestComparator:
    def test_above_comparator_trips(self, sim):
        x = _Ramp(0.0)
        comp = Comparator(sim, "oc", x, threshold=1.0, direction=ABOVE,
                          delay=1 * NS)
        comp.sample(0.0)
        assert not comp.output.value
        x.value = 1.5
        comp.sample(10 * NS)
        sim.run_until(20 * NS)
        assert comp.output.value

    def test_below_comparator_trips(self, sim):
        x = _Ramp(5.0)
        comp = Comparator(sim, "uv", x, threshold=3.3, direction=BELOW,
                          delay=1 * NS)
        comp.sample(0.0)
        x.value = 3.0
        comp.sample(10 * NS)
        sim.run_until(20 * NS)
        assert comp.output.value

    def test_release_with_hysteresis(self, sim):
        x = _Ramp(2.0)
        comp = Comparator(sim, "oc", x, threshold=1.0, direction=ABOVE,
                          delay=0.0, hysteresis=0.2)
        comp.sample(0.0)
        sim.run_until(1 * NS)
        assert comp.output.value
        # Inside the hysteresis band: stays high.
        x.value = 0.9
        comp.sample(2 * NS)
        sim.run_until(3 * NS)
        assert comp.output.value
        # Below threshold - hysteresis: releases.
        x.value = 0.7
        comp.sample(4 * NS)
        sim.run_until(5 * NS)
        assert not comp.output.value

    def test_crossing_interpolation_reduces_quantisation(self, sim):
        # value crosses threshold 1.0 at 75% of the 10 ns step (t=7.5 ns);
        # with a 5 ns comparator delay the edge must land at 12.5 ns, not
        # at sample-time + delay = 15 ns.
        x = _Ramp(0.4)
        comp = Comparator(sim, "c", x, threshold=1.0, direction=ABOVE,
                          delay=5 * NS)
        comp.sample(0.0)
        x.value = 1.2
        comp.sample(10 * NS)
        sim.run_until(20 * NS)
        edges = comp.output.edges()
        assert len(edges) == 1
        assert edges[0] == pytest.approx(12.5 * NS, abs=0.01 * NS)

    def test_edge_never_scheduled_before_sample_time(self, sim):
        # crossing + delay landing before "now" clamps to the sample time
        x = _Ramp(0.0)
        comp = Comparator(sim, "c", x, threshold=0.5, direction=ABOVE,
                          delay=0.0)
        comp.sample(0.0)
        x.value = 100.0  # crossed almost immediately after t=0
        comp.sample(10 * NS)
        sim.run_until(20 * NS)
        assert comp.output.edges()[0] == pytest.approx(10 * NS, abs=0.01 * NS)

    def test_propagation_delay_added_to_crossing(self, sim):
        x = _Ramp(0.0)
        comp = Comparator(sim, "c", x, threshold=1.0, direction=ABOVE,
                          delay=5 * NS)
        comp.sample(0.0)
        x.value = 2.0
        comp.sample(10 * NS)
        sim.run_until(30 * NS)
        edges = comp.output.edges()
        # crossing at 5 ns + 5 ns delay = 10 ns
        assert edges[0] == pytest.approx(10 * NS, abs=0.01 * NS)

    def test_threshold_change_reevaluated_next_sample(self, sim):
        x = _Ramp(0.5)
        comp = Comparator(sim, "oc", x, threshold=1.0, direction=ABOVE,
                          delay=0.0)
        comp.sample(0.0)
        comp.threshold = 0.2  # OV-mode style re-referencing
        comp.sample(1 * NS)
        sim.run_until(2 * NS)
        assert comp.output.value

    def test_noise_produces_chatter_near_threshold(self, sim):
        x = _Ramp(1.0)
        comp = Comparator(sim, "noisy", x, threshold=1.0, direction=ABOVE,
                          delay=0.0, noise=0.05)
        for k in range(200):
            comp.sample(k * NS)
        sim.run_until(300 * NS)
        # A noisy comparator sitting on its threshold must glitch repeatedly.
        assert len(comp.output.edges()) > 4

    def test_invalid_direction_rejected(self, sim):
        with pytest.raises(ValueError):
            Comparator(sim, "c", _Ramp(), 1.0, direction="sideways")

    def test_negative_hysteresis_rejected(self, sim):
        with pytest.raises(ValueError):
            Comparator(sim, "c", _Ramp(), 1.0, hysteresis=-0.1)


class TestBuckReferences:
    def test_defaults_are_consistent(self):
        refs = BuckReferences()
        assert refs.v_min < refs.v_ref < refs.v_max
        assert refs.i_neg < refs.i_0 < refs.i_max

    def test_hl_implies_uv_enforced(self):
        with pytest.raises(ValueError):
            BuckReferences(v_min=3.4, v_ref=3.3)

    def test_current_order_enforced(self):
        with pytest.raises(ValueError):
            BuckReferences(i_neg=0.1, i_0=0.0)

    def test_ov_above_ref_enforced(self):
        with pytest.raises(ValueError):
            BuckReferences(v_ref=3.3, v_max=3.2)


class TestSensorBank:
    def _bank(self, sim, n=2, v_out0=0.0):
        stage = make_power_stage(n, make_coil(4.7 * UH),
                                 load=LoadProfile.constant(6.0),
                                 v_out0=v_out0)
        return stage, SensorBank(sim, stage, delay=1 * NS)

    def test_startup_conditions(self, sim):
        # discharged output: HL and UV must assert, OV must not
        stage, bank = self._bank(sim, v_out0=0.0)
        bank.sample_all(0.0)
        sim.run_until(5 * NS)
        assert bank.hl.output.value
        assert bank.uv.output.value
        assert not bank.ov.output.value

    def test_regulated_conditions(self, sim):
        stage, bank = self._bank(sim, v_out0=3.4)
        bank.sample_all(0.0)
        sim.run_until(5 * NS)
        assert not bank.hl.output.value
        assert not bank.uv.output.value
        assert not bank.ov.output.value

    def test_overvoltage_condition(self, sim):
        stage, bank = self._bank(sim, v_out0=3.7)
        bank.sample_all(0.0)
        sim.run_until(5 * NS)
        assert bank.ov.output.value

    def test_hl_implies_uv(self, sim):
        """Whenever HL is active UV must be too (V_min < V_ref)."""
        for v in (0.0, 1.0, 2.9, 3.1, 3.4):
            stage, bank = self._bank(sim, v_out0=v)
            bank.sample_all(sim.now)
            sim.run(5 * NS)
            if bank.hl.output.value:
                assert bank.uv.output.value

    def test_per_phase_oc(self, sim):
        stage, bank = self._bank(sim, n=2, v_out0=3.3)
        stage.phases[0].current = 0.35  # above I_max=0.30
        bank.sample_all(0.0)
        sim.run_until(5 * NS)
        assert bank.oc[0].output.value
        assert not bank.oc[1].output.value

    def test_zc_high_at_zero_current(self, sim):
        stage, bank = self._bank(sim, v_out0=3.3)
        bank.sample_all(0.0)
        sim.run_until(5 * NS)
        assert bank.zc[0].output.value  # i=0 < I_0 threshold

    def test_ov_mode_swaps_references(self, sim):
        stage, bank = self._bank(sim, n=2, v_out0=3.3)
        refs = bank.refs
        bank.set_ov_mode(0, True)
        assert bank.oc[0].threshold == refs.i_0
        assert bank.zc[0].threshold == refs.i_neg
        # other phase untouched
        assert bank.oc[1].threshold == refs.i_max
        bank.set_ov_mode(0, False)
        assert bank.oc[0].threshold == refs.i_max
        assert bank.zc[0].threshold == refs.i_0

    def test_ov_mode_idempotent(self, sim):
        stage, bank = self._bank(sim)
        bank.set_ov_mode(0, True)
        bank.set_ov_mode(0, True)
        assert bank.ov_mode(0)

    def test_ov_mode_oc_trips_on_small_positive_current(self, sim):
        stage, bank = self._bank(sim, v_out0=3.3)
        bank.set_ov_mode(0, True)
        stage.phases[0].current = 0.02  # > I_0 but << I_max
        bank.sample_all(0.0)
        sim.run_until(5 * NS)
        assert bank.oc[0].output.value

    def test_all_comparators_enumeration(self, sim):
        stage, bank = self._bank(sim, n=3)
        comps = bank.all_comparators()
        assert len(comps) == 3 + 2 * 3  # hl, uv, ov + per-phase oc, zc
