"""Integration tests: gate driver + solver + sensors closing the loop.

Setup comes from the shared ``analog_rig`` fixture in ``tests/conftest.py``.
"""

import pytest

from repro.analog import AnalogSolver, ShortCircuitError, make_coil, make_power_stage
from repro.sim import NS, UH, US


class TestGateDriver:
    def test_gate_delay_and_ack(self, analog_rig):
        rig = analog_rig()
        rig.gates.gp[0].set(True, 5 * NS)
        rig.sim.run_until(5.5 * NS)
        assert not rig.stage.phases[0].pmos_on
        rig.sim.run_until(7 * NS)
        assert rig.stage.phases[0].pmos_on
        assert rig.gates.gp_ack[0].value

    def test_ack_follows_turn_off(self, analog_rig):
        rig = analog_rig()
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gp[0].set(False, 10 * NS)
        rig.sim.run_until(12 * NS)
        assert not rig.stage.phases[0].pmos_on
        assert not rig.gates.gp_ack[0].value

    def test_overlapping_commands_raise_short_circuit(self, analog_rig):
        rig = analog_rig()
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gn[0].set(True, 1.5 * NS)
        with pytest.raises(ShortCircuitError):
            rig.sim.run_until(5 * NS)

    def test_break_before_make_through_acks_is_safe(self, analog_rig):
        rig = analog_rig()
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gp[0].set(False, 10 * NS)
        rig.gates.gn[0].set(True, 12 * NS)  # after gp_ack falls at 11 ns
        rig.sim.run_until(20 * NS)
        assert rig.stage.phases[0].nmos_on
        assert rig.gates.gn_ack[0].value


class TestClosedLoopOpenController:
    """Drive the gates by hand and watch the analog react through sensors."""

    def test_charging_cycle_raises_voltage_vs_baseline(self, analog_rig,
                                                       make_sim):
        rig = analog_rig(v_out0=3.0, l_uh=1.0)
        rig.sim.run_until(5 * NS)
        assert rig.sensors.uv.output.value
        # manual charging: PMOS on for 300 ns
        rig.gates.gp[0].set(True)
        rig.sim.run(300 * NS)
        rig.gates.gp[0].set(False)
        rig.sim.run(200 * NS)
        v_charged = rig.stage.v_out

        # baseline: identical setup, no charging at all
        baseline = analog_rig(v_out0=3.0, l_uh=1.0, on=make_sim())
        baseline.sim.run(505 * NS)
        assert v_charged > baseline.stage.v_out

    def test_oc_fires_during_charge(self, analog_rig):
        rig = analog_rig(v_out0=3.3, l_uh=1.0)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.sim.run_until(2 * US)
        # slew 1.7 A/us crosses I_max=0.30 A at ~178 ns; oc must have fired
        assert rig.sensors.oc[0].output.value
        rises = rig.sensors.oc[0].output.edges("rise")
        assert len(rises) >= 1
        assert rises[0] == pytest.approx(180 * NS, abs=20 * NS)

    def test_zc_detects_current_decay(self, analog_rig):
        rig = analog_rig(v_out0=3.3, l_uh=1.0)
        # charge then freewheel: current decays back to zero -> zc rises
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gp[0].set(False, 100 * NS)
        rig.sim.run_until(2 * US)
        assert rig.stage.phases[0].current == 0.0
        assert rig.sensors.zc[0].output.value

    def test_probes_record_waveforms(self, analog_rig):
        rig = analog_rig(v_out0=3.3)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.sim.run_until(100 * NS)
        assert len(rig.solver.v_probe.times) > 50
        assert rig.solver.i_probes[0].maximum > 0.0

    def test_peak_coil_current_measurement(self, analog_rig):
        rig = analog_rig(v_out0=3.3, l_uh=1.0)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gp[0].set(False, 101 * NS)
        rig.sim.run_until(1 * US)
        peak = rig.solver.peak_coil_current()
        # 1.7 A/us for ~100 ns -> ~0.17 A
        assert peak == pytest.approx(0.17, rel=0.15)

    def test_reset_measurements(self, analog_rig):
        rig = analog_rig(v_out0=3.3, l_uh=1.0)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gp[0].set(False, 101 * NS)
        rig.sim.run_until(500 * NS)
        rig.solver.reset_measurements()
        rig.sim.run_until(1 * US)
        # after reset, with the coil idle, peak is ~0
        assert rig.solver.peak_coil_current() < 0.02

    def test_untraced_mode_keeps_stats(self, analog_rig):
        rig = analog_rig(v_out0=3.3, l_uh=1.0, trace=False)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.sim.run_until(100 * NS)
        assert rig.solver.i_probes[0].maximum > 0.0
        assert rig.solver.i_probes[0].times == []

    def test_solver_rejects_double_start(self, analog_rig):
        rig = analog_rig()
        with pytest.raises(RuntimeError):
            rig.solver.start()

    def test_solver_rejects_bad_dt(self, sim):
        stage = make_power_stage(1, make_coil(1 * UH))
        with pytest.raises(ValueError):
            AnalogSolver(sim, stage, dt=0.0)


class TestMultiphaseInteraction:
    def test_two_phases_share_load(self, analog_rig):
        rig = analog_rig(n=2, v_out0=3.0, l_uh=2.25)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.gates.gp[1].set(True, 1 * NS)
        rig.sim.run_until(200 * NS)
        assert rig.stage.phases[0].current > 0
        assert rig.stage.phases[1].current > 0
        assert rig.stage.total_current() == pytest.approx(
            rig.stage.phases[0].current + rig.stage.phases[1].current)

    def test_per_phase_oc_independent(self, analog_rig):
        rig = analog_rig(n=2, v_out0=3.3, l_uh=1.0)
        rig.gates.gp[0].set(True, 1 * NS)
        rig.sim.run_until(300 * NS)
        assert rig.sensors.oc[0].output.value
        assert not rig.sensors.oc[1].output.value
