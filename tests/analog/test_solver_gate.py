"""Integration tests: gate driver + solver + sensors closing the loop."""

import pytest

from repro.analog import (
    AnalogSolver,
    GateDriverBank,
    LoadProfile,
    SensorBank,
    ShortCircuitError,
    make_coil,
    make_power_stage,
)
from repro.sim import NS, UH, US, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=3)


def _setup(sim, n=1, v_out0=0.0, l_uh=4.7, dt=1 * NS, trace=True):
    stage = make_power_stage(n, make_coil(l_uh * UH),
                             load=LoadProfile.constant(6.0), v_out0=v_out0)
    bank = SensorBank(sim, stage, delay=1 * NS, trace=trace)
    gates = GateDriverBank(sim, stage, t_gate=1 * NS, trace=trace)
    solver = AnalogSolver(sim, stage, bank, dt=dt, trace=trace)
    solver.start()
    return stage, bank, gates, solver


class TestGateDriver:
    def test_gate_delay_and_ack(self, sim):
        stage, bank, gates, solver = _setup(sim)
        gates.gp[0].set(True, 5 * NS)
        sim.run_until(5.5 * NS)
        assert not stage.phases[0].pmos_on
        sim.run_until(7 * NS)
        assert stage.phases[0].pmos_on
        assert gates.gp_ack[0].value

    def test_ack_follows_turn_off(self, sim):
        stage, bank, gates, solver = _setup(sim)
        gates.gp[0].set(True, 1 * NS)
        gates.gp[0].set(False, 10 * NS)
        sim.run_until(12 * NS)
        assert not stage.phases[0].pmos_on
        assert not gates.gp_ack[0].value

    def test_overlapping_commands_raise_short_circuit(self, sim):
        stage, bank, gates, solver = _setup(sim)
        gates.gp[0].set(True, 1 * NS)
        gates.gn[0].set(True, 1.5 * NS)
        with pytest.raises(ShortCircuitError):
            sim.run_until(5 * NS)

    def test_break_before_make_through_acks_is_safe(self, sim):
        stage, bank, gates, solver = _setup(sim)
        gates.gp[0].set(True, 1 * NS)
        gates.gp[0].set(False, 10 * NS)
        gates.gn[0].set(True, 12 * NS)  # after gp_ack falls at 11 ns
        sim.run_until(20 * NS)
        assert stage.phases[0].nmos_on
        assert gates.gn_ack[0].value


class TestClosedLoopOpenController:
    """Drive the gates by hand and watch the analog react through sensors."""

    def test_charging_cycle_raises_voltage_vs_baseline(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.0, l_uh=1.0)
        sim.run_until(5 * NS)
        assert bank.uv.output.value
        # manual charging: PMOS on for 300 ns
        gates.gp[0].set(True)
        sim.run(300 * NS)
        gates.gp[0].set(False)
        sim.run(200 * NS)
        v_charged = stage.v_out

        # baseline: identical setup, no charging at all
        sim2 = Simulator(seed=3)
        stage2, _, _, _ = _setup(sim2, v_out0=3.0, l_uh=1.0)
        sim2.run(505 * NS)
        assert v_charged > stage2.v_out

    def test_oc_fires_during_charge(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.3, l_uh=1.0)
        gates.gp[0].set(True, 1 * NS)
        sim.run_until(2 * US)
        # slew 1.7 A/us crosses I_max=0.30 A at ~178 ns; oc must have fired
        assert bank.oc[0].output.value
        rises = bank.oc[0].output.edges("rise")
        assert len(rises) >= 1
        assert rises[0] == pytest.approx(180 * NS, abs=20 * NS)

    def test_zc_detects_current_decay(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.3, l_uh=1.0)
        # charge then freewheel: current decays back to zero -> zc rises
        gates.gp[0].set(True, 1 * NS)
        gates.gp[0].set(False, 100 * NS)
        sim.run_until(2 * US)
        assert stage.phases[0].current == 0.0
        assert bank.zc[0].output.value

    def test_probes_record_waveforms(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.3)
        gates.gp[0].set(True, 1 * NS)
        sim.run_until(100 * NS)
        assert len(solver.v_probe.times) > 50
        assert solver.i_probes[0].maximum > 0.0

    def test_peak_coil_current_measurement(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.3, l_uh=1.0)
        gates.gp[0].set(True, 1 * NS)
        gates.gp[0].set(False, 101 * NS)
        sim.run_until(1 * US)
        peak = solver.peak_coil_current()
        # 1.7 A/us for ~100 ns -> ~0.17 A
        assert peak == pytest.approx(0.17, rel=0.15)

    def test_reset_measurements(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.3, l_uh=1.0)
        gates.gp[0].set(True, 1 * NS)
        gates.gp[0].set(False, 101 * NS)
        sim.run_until(500 * NS)
        solver.reset_measurements()
        sim.run_until(1 * US)
        # after reset, with the coil idle, peak is ~0
        assert solver.peak_coil_current() < 0.02

    def test_untraced_mode_keeps_stats(self, sim):
        stage, bank, gates, solver = _setup(sim, v_out0=3.3, l_uh=1.0,
                                            trace=False)
        gates.gp[0].set(True, 1 * NS)
        sim.run_until(100 * NS)
        assert solver.i_probes[0].maximum > 0.0
        assert solver.i_probes[0].times == []

    def test_solver_rejects_double_start(self, sim):
        stage, bank, gates, solver = _setup(sim)
        with pytest.raises(RuntimeError):
            solver.start()

    def test_solver_rejects_bad_dt(self, sim):
        stage = make_power_stage(1, make_coil(1 * UH))
        with pytest.raises(ValueError):
            AnalogSolver(sim, stage, dt=0.0)


class TestMultiphaseInteraction:
    def test_two_phases_share_load(self, sim):
        stage, bank, gates, solver = _setup(sim, n=2, v_out0=3.0, l_uh=2.25)
        gates.gp[0].set(True, 1 * NS)
        gates.gp[1].set(True, 1 * NS)
        sim.run_until(200 * NS)
        assert stage.phases[0].current > 0
        assert stage.phases[1].current > 0
        assert stage.total_current() == pytest.approx(
            stage.phases[0].current + stage.phases[1].current)

    def test_per_phase_oc_independent(self, sim):
        stage, bank, gates, solver = _setup(sim, n=2, v_out0=3.3, l_uh=1.0)
        gates.gp[0].set(True, 1 * NS)
        sim.run_until(300 * NS)
        assert bank.oc[0].output.value
        assert not bank.oc[1].output.value
